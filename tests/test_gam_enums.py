"""Tests for the GAM enumerations (paper Figure 4)."""

import pytest

from repro.gam.enums import (
    MAPPING_TYPES,
    CombineMethod,
    RelType,
    SourceContent,
    SourceStructure,
)


class TestSourceContent:
    def test_members_match_figure_4(self):
        assert {m.value for m in SourceContent} == {"Gene", "Protein", "Other"}

    def test_parse_label(self):
        assert SourceContent.parse("Gene") is SourceContent.GENE

    def test_parse_is_case_insensitive(self):
        assert SourceContent.parse("protein") is SourceContent.PROTEIN

    def test_parse_accepts_member(self):
        assert SourceContent.parse(SourceContent.OTHER) is SourceContent.OTHER

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError, match="content"):
            SourceContent.parse("Genome")


class TestSourceStructure:
    def test_members_match_figure_4(self):
        assert {m.value for m in SourceStructure} == {"Flat", "Network"}

    def test_parse_label(self):
        assert SourceStructure.parse("network") is SourceStructure.NETWORK

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            SourceStructure.parse("Tree")


class TestRelType:
    def test_members_match_figure_4(self):
        assert {m.value for m in RelType} == {
            "Fact", "Similarity", "Contains", "Is-a", "Composed", "Subsumed",
        }

    def test_parse_is_a_variants(self):
        assert RelType.parse("Is-a") is RelType.IS_A
        assert RelType.parse("is_a") is RelType.IS_A
        assert RelType.parse("IS_A") is RelType.IS_A

    def test_annotation_family(self):
        assert RelType.FACT.is_annotation
        assert RelType.SIMILARITY.is_annotation
        assert not RelType.IS_A.is_annotation

    def test_structural_family(self):
        assert RelType.CONTAINS.is_structural
        assert RelType.IS_A.is_structural
        assert not RelType.FACT.is_structural

    def test_derived_family(self):
        assert RelType.COMPOSED.is_derived
        assert RelType.SUBSUMED.is_derived
        assert not RelType.SIMILARITY.is_derived

    def test_families_partition_the_types(self):
        for rel_type in RelType:
            flags = (
                rel_type.is_annotation,
                rel_type.is_structural,
                rel_type.is_derived,
            )
            assert sum(flags) == 1

    def test_mapping_types_exclude_structural(self):
        assert RelType.CONTAINS not in MAPPING_TYPES
        assert RelType.IS_A not in MAPPING_TYPES
        assert RelType.FACT in MAPPING_TYPES
        assert RelType.SUBSUMED in MAPPING_TYPES

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            RelType.parse("Equals")


class TestCombineMethod:
    def test_parse_lowercase(self):
        assert CombineMethod.parse("and") is CombineMethod.AND
        assert CombineMethod.parse("or") is CombineMethod.OR

    def test_parse_member_passthrough(self):
        assert CombineMethod.parse(CombineMethod.OR) is CombineMethod.OR

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            CombineMethod.parse("xor")
