"""Shared fixtures: paper constants and a populated synthetic universe."""

from __future__ import annotations

import pytest

from repro.core.genmapper import GenMapper
from repro.datagen.emit import write_universe
from repro.datagen.universe import UniverseConfig, generate_universe

#: The LocusLink record of the paper's running example (Figure 1 /
#: Table 1): locus 353, APRT, with Hugo/Location/Enzyme/GO annotations.
LOCUS_353_RECORD = """\
>>353
OFFICIAL_SYMBOL: APRT
NAME: adenine phosphoribosyltransferase
CHR: 16
MAP: 16q24
ECNUM: 2.4.2.7
GO: GO:0009116|nucleoside metabolism
OMIM: 102600
UNIGENE: Hs.28914
ALIAS_SYMBOL: AMP
"""

#: A minimal GO OBO snippet containing the term of the running example.
GO_MINI_OBO = """\
format-version: 1.2

[Term]
id: GO:0008150
name: biological process
namespace: biological_process

[Term]
id: GO:0009117
name: nucleotide metabolism
namespace: biological_process
is_a: GO:0008150 ! biological process

[Term]
id: GO:0009116
name: nucleoside metabolism
namespace: biological_process
is_a: GO:0009117 ! nucleotide metabolism
"""

#: A UniGene cluster record pointing back at locus 353.
UNIGENE_MINI = """\
ID          Hs.28914
TITLE       adenine phosphoribosyltransferase
GENE        APRT
LOCUSLINK   353
CHROMOSOME  16
//
"""


@pytest.fixture()
def genmapper():
    """An empty in-memory GenMapper."""
    with GenMapper() as gm:
        yield gm


@pytest.fixture()
def paper_genmapper():
    """A GenMapper loaded with the paper's running example data."""
    with GenMapper() as gm:
        gm.integrate_text(LOCUS_353_RECORD, "LocusLink")
        gm.integrate_text(GO_MINI_OBO, "GO")
        gm.integrate_text(UNIGENE_MINI, "Unigene")
        yield gm


@pytest.fixture(scope="session")
def universe():
    """A small deterministic synthetic universe (shared, read-only)."""
    return generate_universe(UniverseConfig(seed=11, n_genes=60, n_go_terms=45))


@pytest.fixture(scope="session")
def universe_dir(universe, tmp_path_factory):
    """The universe written as native source files plus manifest."""
    directory = tmp_path_factory.mktemp("universe")
    write_universe(universe, directory)
    return directory


@pytest.fixture(scope="session")
def loaded_genmapper(universe_dir):
    """A GenMapper with the whole synthetic universe imported.

    Session-scoped for speed; tests must not mutate it.  Use the
    function-scoped ``genmapper`` fixture for write tests.
    """
    gm = GenMapper()
    gm.integrate_directory(universe_dir)
    yield gm
    gm.close()
