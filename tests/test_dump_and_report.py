"""Tests for the GAM dump/load format and the profiling report renderer."""

import json

import pytest

from repro.core.genmapper import GenMapper
from repro.gam.dump import dump_database, dump_records, load_database
from repro.gam.errors import GamSchemaError


class TestDumpRecords:
    def test_header_first(self, paper_genmapper):
        records = list(dump_records(paper_genmapper.repository))
        assert records[0]["kind"] == "header"
        assert records[0]["format"] == "gam-dump/1"

    def test_record_kinds_cover_all_tables(self, paper_genmapper):
        kinds = {r["kind"] for r in dump_records(paper_genmapper.repository)}
        assert kinds == {"header", "source", "object", "source_rel"}

    def test_associations_embedded_in_rels(self, paper_genmapper):
        records = list(dump_records(paper_genmapper.repository))
        rels = [r for r in records if r["kind"] == "source_rel"]
        total = sum(len(r["associations"]) for r in rels)
        assert total == paper_genmapper.db.counts()["object_rel"]


class TestRoundTrip:
    def test_dump_load_preserves_counts(self, paper_genmapper, tmp_path):
        path = tmp_path / "dump.jsonl"
        dump_database(paper_genmapper.repository, path)
        with GenMapper() as fresh:
            load_database(fresh.repository, path)
            assert fresh.db.counts() == paper_genmapper.db.counts()

    def test_dump_load_preserves_knowledge(self, paper_genmapper, tmp_path):
        path = tmp_path / "dump.jsonl"
        dump_database(paper_genmapper.repository, path)
        with GenMapper() as fresh:
            load_database(fresh.repository, path)
            original = paper_genmapper.map("LocusLink", "GO")
            restored = fresh.map("LocusLink", "GO")
            assert restored.pair_set() == original.pair_set()
            # Composition works identically on the restored database.
            assert fresh.map("Unigene", "GO").pair_set() == (
                paper_genmapper.map("Unigene", "GO").pair_set()
            )

    def test_dump_of_restored_db_is_equivalent(self, paper_genmapper, tmp_path):
        first = tmp_path / "first.jsonl"
        dump_database(paper_genmapper.repository, first)
        with GenMapper() as fresh:
            load_database(fresh.repository, first)
            second = tmp_path / "second.jsonl"
            dump_database(fresh.repository, second)
        canonical_first = sorted(first.read_text().splitlines())
        canonical_second = sorted(second.read_text().splitlines())
        assert canonical_first == canonical_second

    def test_load_is_idempotent(self, paper_genmapper, tmp_path):
        path = tmp_path / "dump.jsonl"
        dump_database(paper_genmapper.repository, path)
        with GenMapper() as fresh:
            load_database(fresh.repository, path)
            counts = fresh.db.counts()
            load_database(fresh.repository, path)
            assert fresh.db.counts() == counts

    def test_load_merges_into_populated_db(self, paper_genmapper, tmp_path):
        path = tmp_path / "dump.jsonl"
        dump_database(paper_genmapper.repository, path)
        with GenMapper() as other:
            from repro.eav.model import EavRow
            from repro.eav.store import EavDataset

            other.integrate_dataset(
                EavDataset("Extra", [EavRow("e1", "GO", "GO:0009116")])
            )
            load_database(other.repository, path)
            names = {source.name for source in other.sources()}
            assert "Extra" in names and "LocusLink" in names
            assert other.check_integrity().ok

    def test_unicode_survives(self, genmapper, tmp_path):
        from repro.eav.model import EavRow
        from repro.eav.store import EavDataset

        genmapper.integrate_dataset(
            EavDataset("U", [EavRow("gène-α", "Name", "näme", "näme")])
        )
        path = tmp_path / "u.jsonl"
        dump_database(genmapper.repository, path)
        with GenMapper() as fresh:
            load_database(fresh.repository, path)
            assert "gène-α" in fresh.accessions("U")


class TestLoadErrors:
    def test_missing_header_rejected(self, genmapper, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"kind": "source", "name": "X"}) + "\n")
        with pytest.raises(GamSchemaError, match="header"):
            load_database(genmapper.repository, path)

    def test_wrong_format_rejected(self, genmapper, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "format": "gam-dump/99"}) + "\n"
        )
        with pytest.raises(GamSchemaError, match="format"):
            load_database(genmapper.repository, path)

    def test_unknown_kind_rejected(self, genmapper, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "format": "gam-dump/1"}) + "\n"
            + json.dumps({"kind": "mystery"}) + "\n"
        )
        with pytest.raises(GamSchemaError, match="mystery"):
            load_database(genmapper.repository, path)


class TestProfilingReportDocument:
    @pytest.fixture(scope="class")
    def rendered(self):
        import tempfile

        from repro.analysis.profiling import FunctionalProfiler
        from repro.analysis.report import render_report
        from repro.datagen.emit import write_universe
        from repro.datagen.expression import generate_expression
        from repro.datagen.universe import UniverseConfig, generate_universe
        from repro.taxonomy.dag import Taxonomy

        universe = generate_universe(
            UniverseConfig(seed=77, n_genes=250, n_go_terms=80)
        )
        gm = GenMapper()
        with tempfile.TemporaryDirectory() as directory:
            write_universe(universe, directory)
            gm.integrate_directory(directory)
        study = generate_expression(universe, planted_odds=25.0)
        profiler = FunctionalProfiler(gm)
        report = profiler.run(study)
        annotation = profiler.gene_annotation()
        taxonomy = Taxonomy(universe.go.is_a_pairs())
        names = {t.accession: t.name for t in universe.go.terms}
        text = render_report(report, annotation, taxonomy, names, fdr=0.10)
        md = render_report(
            report, annotation, taxonomy, names, fdr=0.10, markdown=True
        )
        gm.close()
        return report, text, md

    def test_headline_numbers_present(self, rendered):
        report, text, __ = rendered
        assert str(report.n_probes) in text
        assert str(len(report.expressed_probes)) in text

    def test_sections_present(self, rendered):
        __, text, __md = rendered
        assert "Expression summary" in text
        assert "Enriched terms" in text
        assert "category" in text
        assert "Conserved vs changed" in text

    def test_term_names_displayed(self, rendered):
        report, text, __ = rendered
        significant = report.significant_terms(0.10)
        if significant:
            assert "(" in text  # at least one "accession (name)" rendering

    def test_markdown_variant(self, rendered):
        __, __t, md = rendered
        assert md.startswith("# ")
        assert "## Expression summary" in md
