"""Robustness and failure-injection tests.

Parsers are fuzzed with arbitrary text: they must either parse or raise
:class:`ParseError` — never any other exception.  The importer and
facade are exercised with hostile inputs (unicode accessions, enormous
values, empty data, staged round trips).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.genmapper import GenMapper
from repro.eav.model import EavRow
from repro.eav.store import EavDataset
from repro.gam.errors import GenMapperError, ParseError
from repro.parsers.base import get_parser, registered_parsers

fuzz_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=300
)


@pytest.mark.parametrize("source_name", registered_parsers())
class TestParserFuzzing:
    @given(text=fuzz_text)
    @settings(max_examples=30, deadline=None)
    def test_parse_never_raises_unexpected(self, source_name, text):
        parser = get_parser(source_name)
        try:
            parser.parse_text(text)
        except ParseError:
            pass  # the contract: malformed input -> ParseError

    def test_empty_input_yields_empty_dataset(self, source_name):
        parser = get_parser(source_name)
        try:
            dataset = parser.parse_text("")
        except ParseError:
            return
        assert len(dataset) == 0


class TestHostileImports:
    def test_unicode_accessions_round_trip(self, genmapper):
        dataset = EavDataset(
            "Unicode",
            [
                EavRow("gène-α", "Name", "ünïcode näme", "ünïcode näme"),
                EavRow("gène-α", "GO", "GO:0000001"),
                EavRow("基因", "GO", "GO:0000002"),
            ],
        )
        report = genmapper.integrate_dataset(dataset)
        assert report.new_objects == 2
        assert genmapper.accessions("Unicode") == {"gène-α", "基因"}
        view = genmapper.generate_view("Unicode", ["GO"], combine="OR")
        assert len(view) == 2

    def test_accessions_with_sql_metacharacters(self, genmapper):
        nasty = "x'; DROP TABLE object; --"
        dataset = EavDataset(
            "Nasty", [EavRow(nasty, "GO", 'GO:1"quoted"')]
        )
        genmapper.integrate_dataset(dataset)
        assert nasty in genmapper.accessions("Nasty")
        assert genmapper.db.counts()["object"] > 0  # table survived

    def test_very_long_values(self, genmapper):
        long_text = "x" * 100_000
        dataset = EavDataset(
            "Long", [EavRow("a", "Name", long_text, long_text)]
        )
        genmapper.integrate_dataset(dataset)
        obj = genmapper.repository.get_object("Long", "a")
        assert obj.text == long_text

    def test_empty_dataset_imports_cleanly(self, genmapper):
        report = genmapper.integrate_dataset(EavDataset("Empty"))
        assert report.new_objects == 0
        assert genmapper.repository.count_objects("Empty") == 0

    def test_interleaved_imports_keep_integrity(self, genmapper):
        for i in range(5):
            rows = [
                EavRow(f"o{i}_{j}", "Shared", f"s{j % 3}")
                for j in range(10)
            ]
            genmapper.integrate_dataset(EavDataset(f"Source{i}", rows))
        assert genmapper.check_integrity().ok
        assert len(genmapper.sources()) == 6  # 5 sources + Shared


class TestStagedWorkflow:
    def test_stage_then_import_equals_direct(self, universe_dir, tmp_path):
        direct = GenMapper()
        direct.integrate_directory(universe_dir)

        staged = GenMapper()
        staging_dir = tmp_path / "staging"
        staged.pipeline.stage_directory(universe_dir, staging_dir)
        staged.pipeline.import_staged_directory(staging_dir)

        assert staged.stats() == direct.stats()
        # Classification survives staging.
        assert (
            staged.source("LocusLink").content
            == direct.source("LocusLink").content
        )
        assert (
            staged.source("GO").structure == direct.source("GO").structure
        )
        direct.close()
        staged.close()

    def test_staged_manifest_references_eav_files(self, universe_dir, tmp_path):
        from repro.importer.pipeline import read_manifest

        gm = GenMapper()
        staging_dir = tmp_path / "staging"
        staged = gm.pipeline.stage_directory(universe_dir, staging_dir)
        assert all(path.suffix == ".eav" for path in staged)
        entries = read_manifest(staging_dir / "manifest.tsv")
        assert all(entry.file.endswith(".eav") for entry in entries)
        gm.close()

    def test_cli_parse_single_file(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import LOCUS_353_RECORD

        native = tmp_path / "ll.txt"
        native.write_text(LOCUS_353_RECORD)
        out = tmp_path / "ll.eav"
        code = main(["parse", str(native), "--source", "LocusLink",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        # The staged file imports equivalently.
        db = tmp_path / "gam.db"
        assert main(["--db", str(db), "import", str(out)]) == 0

    def test_cli_parse_directory(self, universe_dir, tmp_path, capsys):
        from repro.cli import main

        out_dir = tmp_path / "staged"
        code = main(["parse", str(universe_dir), "--out", str(out_dir)])
        assert code == 0
        assert "staged 11 sources" in capsys.readouterr().out


class TestFacadeConveniences:
    def test_match_and_materialize(self, paper_genmapper):
        mapping = paper_genmapper.match(
            "LocusLink", "Unigene", threshold=1.0, materialize=True
        )
        assert ("353", "Hs.28914") in mapping
        stored = paper_genmapper.map("LocusLink", "Unigene")
        assert not stored.is_empty()

    def test_diff_release(self, paper_genmapper):
        from repro.parsers.base import get_parser
        from tests.conftest import LOCUS_353_RECORD

        parser = get_parser("LocusLink")
        dataset = parser.parse_text(
            LOCUS_353_RECORD + ">>999\nOFFICIAL_SYMBOL: NEW\n"
        )
        diff = paper_genmapper.diff_release(dataset)
        assert diff.added_entities == {"999"}

    def test_delete_source_with_prune(self, paper_genmapper):
        report = paper_genmapper.delete_source("OMIM", prune=True)
        assert report.objects == 1
        assert paper_genmapper.check_integrity().ok

    def test_coverage(self, paper_genmapper):
        entries = paper_genmapper.coverage("LocusLink")
        assert any(entry.target == "GO" for entry in entries)

    def test_statistics(self, paper_genmapper):
        stats = paper_genmapper.statistics()
        assert stats.total_objects == paper_genmapper.db.counts()["object"]


class TestErrorSurface:
    def test_all_library_errors_share_base(self, genmapper):
        with pytest.raises(GenMapperError):
            genmapper.map("Nope", "AlsoNope")
        with pytest.raises(GenMapperError):
            genmapper.source("Nope")
        with pytest.raises(GenMapperError):
            genmapper.load_path("never-saved")
