"""Tests for derived relationships: Subsumed and Composed materialization."""

import pytest

from repro.derived.composed import derive_composed, materialize_mapping
from repro.derived.subsumed import (
    derive_subsumed,
    load_taxonomy,
    query_with_subsumption,
    rollup_mapping,
    subsumed_mapping,
)
from repro.gam.enums import RelType
from repro.gam.errors import UnknownMappingError
from repro.operators.mapping import Mapping
from repro.operators.simple import map_
from repro.taxonomy.dag import Taxonomy


class TestLoadTaxonomy:
    def test_loads_is_a_structure(self, paper_genmapper):
        taxonomy = load_taxonomy(paper_genmapper.repository, "GO")
        assert taxonomy.parents("GO:0009116") == {"GO:0009117"}
        assert taxonomy.roots() == {"GO:0008150"}

    def test_missing_structure_raises(self, paper_genmapper):
        with pytest.raises(UnknownMappingError, match="IS_A"):
            load_taxonomy(paper_genmapper.repository, "LocusLink")


class TestSubsumed:
    def test_subsumed_mapping_on_the_fly(self, paper_genmapper):
        mapping = subsumed_mapping(paper_genmapper.repository, "GO")
        assert ("GO:0008150", "GO:0009116") in mapping
        assert ("GO:0009117", "GO:0009116") in mapping
        assert mapping.rel_type is RelType.SUBSUMED

    def test_derive_subsumed_materializes(self, paper_genmapper):
        rel, inserted = derive_subsumed(paper_genmapper.repository, "GO")
        assert rel.type is RelType.SUBSUMED
        assert inserted == 3  # root->{0009117,0009116}, 0009117->0009116

    def test_derive_subsumed_idempotent(self, paper_genmapper):
        derive_subsumed(paper_genmapper.repository, "GO")
        __, second = derive_subsumed(paper_genmapper.repository, "GO")
        assert second == 0

    def test_derive_subsumed_round_trips_evidence(
        self, paper_genmapper, monkeypatch
    ):
        # Regression: the in-memory materialization path used to drop each
        # association's evidence, silently resetting it to the column
        # default.  Pinned to engine="memory": that is the path flowing
        # through the monkeypatched subsumed_mapping.
        repository = paper_genmapper.repository
        weighted = Mapping.build(
            "GO", "GO",
            [
                ("GO:0008150", "GO:0009116", 0.25),
                ("GO:0009117", "GO:0009116", 0.75),
            ],
            rel_type=RelType.SUBSUMED,
        )
        monkeypatch.setattr(
            "repro.derived.subsumed.subsumed_mapping",
            lambda repo, src: weighted,
        )
        rel, inserted = derive_subsumed(repository, "GO", engine="memory")
        assert inserted == 2
        stored = {
            (assoc.source_accession, assoc.target_accession): assoc.evidence
            for assoc in repository.associations_of(rel)
        }
        assert stored == {
            ("GO:0008150", "GO:0009116"): 0.25,
            ("GO:0009117", "GO:0009116"): 0.75,
        }

    def test_query_with_subsumption_finds_specific_annotations(
        self, paper_genmapper
    ):
        # Locus 353 is annotated with the *specific* term GO:0009116;
        # querying with the more general GO:0009117 must find it.
        loci = query_with_subsumption(
            paper_genmapper.repository, "LocusLink", "GO", "GO:0009117"
        )
        assert loci == {"353"}

    def test_query_with_direct_term(self, paper_genmapper):
        loci = query_with_subsumption(
            paper_genmapper.repository, "LocusLink", "GO", "GO:0009116"
        )
        assert loci == {"353"}

    def test_query_with_unrelated_term(self, paper_genmapper):
        paper_genmapper.integrate_text(
            "[Term]\nid: GO:0099999\nname: other\nnamespace: biological_process\n"
            "is_a: GO:0008150\n",
            "GO",
        )
        loci = query_with_subsumption(
            paper_genmapper.repository, "LocusLink", "GO", "GO:0099999"
        )
        assert loci == set()


class TestRollup:
    def test_rollup_adds_ancestor_annotations(self):
        taxonomy = Taxonomy([("specific", "general"), ("general", "root")])
        annotation = Mapping.build("Gene", "GO", [("g1", "specific")])
        rolled = rollup_mapping(annotation, taxonomy)
        assert rolled.pair_set() == {
            ("g1", "specific"), ("g1", "general"), ("g1", "root"),
        }

    def test_rollup_without_direct(self):
        taxonomy = Taxonomy([("specific", "general")])
        annotation = Mapping.build("Gene", "GO", [("g1", "specific")])
        rolled = rollup_mapping(annotation, taxonomy, include_direct=False)
        assert rolled.pair_set() == {("g1", "general")}

    def test_rollup_keeps_unknown_terms(self):
        taxonomy = Taxonomy([("a", "b")])
        annotation = Mapping.build("Gene", "GO", [("g1", "not-in-taxonomy")])
        rolled = rollup_mapping(annotation, taxonomy)
        assert rolled.pair_set() == {("g1", "not-in-taxonomy")}

    def test_rollup_preserves_evidence(self):
        taxonomy = Taxonomy([("a", "b")])
        annotation = Mapping.build("Gene", "GO", [("g1", "a", 0.5)])
        rolled = rollup_mapping(annotation, taxonomy)
        for assoc in rolled:
            assert assoc.evidence == pytest.approx(0.5)


class TestComposedMaterialization:
    def test_materialize_then_map_retrieves(self, paper_genmapper):
        repo = paper_genmapper.repository
        mapping = Mapping.build(
            "Unigene", "GO", [("Hs.28914", "GO:0009116", 0.9)]
        )
        rel, inserted = materialize_mapping(repo, mapping)
        assert rel.type is RelType.COMPOSED
        assert inserted == 1
        stored = map_(repo, "Unigene", "GO")
        assert stored.pair_set() == {("Hs.28914", "GO:0009116")}
        assert stored.rel_type is RelType.COMPOSED

    def test_derive_composed_materializes_long_path(self, paper_genmapper):
        repo = paper_genmapper.repository
        mapping = derive_composed(
            repo, ["Unigene", "LocusLink", "GO"], materialize=True
        )
        assert mapping.pair_set() == {("Hs.28914", "GO:0009116")}
        # A direct Map must now succeed without composing again.
        stored = map_(repo, "Unigene", "GO")
        assert stored.rel_type is RelType.COMPOSED

    def test_derive_composed_without_materialize(self, paper_genmapper):
        repo = paper_genmapper.repository
        derive_composed(repo, ["Unigene", "LocusLink", "GO"], materialize=False)
        with pytest.raises(UnknownMappingError):
            map_(repo, "Unigene", "GO")

    def test_two_leg_path_never_materialized(self, paper_genmapper):
        repo = paper_genmapper.repository
        mapping = derive_composed(
            repo, ["Unigene", "LocusLink"], materialize=True
        )
        assert mapping.rel_type is RelType.FACT
        rels = repo.find_source_rels(rel_type=RelType.COMPOSED)
        assert rels == []
