"""Tests for the exporters and the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.export.writers import (
    render_mapping,
    render_view,
    write_mapping,
    write_view,
)
from repro.gam.errors import ExportError
from repro.operators.mapping import Mapping
from repro.operators.views import AnnotationView
from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD


@pytest.fixture()
def view():
    return AnnotationView(
        ("LocusLink", "Hugo"), (("353", "APRT"), ("354", None))
    )


@pytest.fixture()
def mapping():
    return Mapping.build("A", "B", [("a", "b", 0.5)])


class TestViewExport:
    def test_tsv(self, view):
        assert render_view(view, "tsv").splitlines() == [
            "LocusLink\tHugo", "353\tAPRT", "354\t",
        ]

    def test_csv(self, view):
        assert render_view(view, "csv").splitlines() == [
            "LocusLink,Hugo", "353,APRT", "354,",
        ]

    def test_json(self, view):
        decoded = json.loads(render_view(view, "json"))
        assert decoded["rows"][1] == ["354", None]

    def test_html_escapes_and_structures(self):
        tricky = AnnotationView(("S<1>", "T"), (("a&b", None),))
        html_text = render_view(tricky, "html")
        assert "S&lt;1&gt;" in html_text
        assert "a&amp;b" in html_text
        assert html_text.count("<tr>") == 2

    def test_unknown_format_rejected(self, view):
        with pytest.raises(ExportError, match="unknown view format"):
            render_view(view, "xlsx")

    def test_write_creates_directories(self, view, tmp_path):
        path = write_view(view, tmp_path / "a" / "b" / "view.tsv")
        assert path.exists()


class TestMappingExport:
    def test_tsv_includes_evidence(self, mapping):
        lines = render_mapping(mapping, "tsv").splitlines()
        assert lines[0] == "A\tB\tevidence"
        assert lines[1] == "a\tb\t0.5"

    def test_json_includes_rel_type(self, mapping):
        decoded = json.loads(render_mapping(mapping, "json"))
        assert decoded["rel_type"] == "Fact"
        assert decoded["associations"][0]["evidence"] == 0.5

    def test_unknown_format_rejected(self, mapping):
        with pytest.raises(ExportError):
            render_mapping(mapping, "xml")

    def test_write_mapping(self, mapping, tmp_path):
        path = write_mapping(mapping, tmp_path / "m.tsv")
        assert path.read_text().startswith("A\tB")


class TestCli:
    @pytest.fixture()
    def db_path(self, tmp_path):
        """A database pre-loaded via the CLI import command."""
        db = tmp_path / "gam.db"
        ll = tmp_path / "ll.txt"
        ll.write_text(LOCUS_353_RECORD)
        go = tmp_path / "go.obo"
        go.write_text(GO_MINI_OBO)
        assert main(["--db", str(db), "import", str(ll),
                     "--source", "LocusLink"]) == 0
        assert main(["--db", str(db), "import", str(go), "--source", "GO"]) == 0
        return db

    def test_sources_lists_imports(self, db_path, capsys):
        assert main(["--db", str(db_path), "sources"]) == 0
        out = capsys.readouterr().out
        assert "LocusLink" in out
        assert "GO" in out

    def test_stats_reports_counts(self, db_path, capsys):
        assert main(["--db", str(db_path), "stats"]) == 0
        out = capsys.readouterr().out
        assert "objects" in out
        assert "associations" in out

    def test_query_renders_table(self, db_path, capsys):
        code = main(
            ["--db", str(db_path), "query",
             "ANNOTATE LocusLink WITH Hugo AND GO"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "APRT" in out
        assert "GO:0009116" in out

    def test_query_writes_file(self, db_path, tmp_path, capsys):
        out_file = tmp_path / "view.tsv"
        code = main(
            ["--db", str(db_path), "query", "ANNOTATE LocusLink WITH Hugo",
             "--out", str(out_file)]
        )
        assert code == 0
        assert out_file.read_text().startswith("LocusLink\tHugo")

    def test_map_command(self, db_path, capsys):
        assert main(["--db", str(db_path), "map", "LocusLink", "GO"]) == 0
        out = capsys.readouterr().out
        assert "353\tGO:0009116" in out

    def test_path_command(self, db_path, capsys):
        assert main(["--db", str(db_path), "path", "LocusLink", "GO"]) == 0
        out = capsys.readouterr().out
        assert "LocusLink -> GO" in out

    def test_object_command(self, db_path, capsys):
        assert main(["--db", str(db_path), "object", "LocusLink", "353"]) == 0
        out = capsys.readouterr().out
        assert "Hugo" in out
        assert "APRT" in out

    def test_subsume_command(self, db_path, capsys):
        assert main(["--db", str(db_path), "subsume", "GO"]) == 0
        out = capsys.readouterr().out
        assert "3 associations" in out

    def test_integrity_command(self, db_path, capsys):
        assert main(["--db", str(db_path), "integrity"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_error_paths_return_nonzero(self, db_path, capsys):
        assert main(["--db", str(db_path), "map", "LocusLink", "Nowhere"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_compose_command(self, db_path, tmp_path, capsys):
        ug = tmp_path / "ug.data"
        ug.write_text(
            "ID          Hs.28914\nLOCUSLINK   353\n//\n"
        )
        main(["--db", str(db_path), "import", str(ug), "--source", "Unigene"])
        code = main(
            ["--db", str(db_path), "compose", "Unigene", "LocusLink", "GO",
             "--materialize"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "materialized" in out

    def test_demo_command(self, tmp_path, capsys):
        code = main(["--db", str(tmp_path / "demo.db"), "demo",
                     "--genes", "20", "--go-terms", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "imported LocusLink" in out
