"""Tests for the query acceleration layer (repro.cache).

Covers the mechanical LRU (bounds, generation staleness, single-flight),
the MappingCache policy (keys, metrics, stats), GenMapper's read-through
integration with write invalidation on every write path, invalidation
across separate connection pools on one on-disk database, and the
environment switches (``REPRO_CACHE`` / ``REPRO_CACHE_SIZE``).
"""

from __future__ import annotations

import threading

import pytest

from repro.cache import (
    GenerationalLru,
    MappingCache,
    cache_enabled_by_env,
    cache_size_from_env,
    estimate_size,
    spec_digest,
)
from repro.core.genmapper import GenMapper
from repro.obs import MetricsRegistry
from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD, UNIGENE_MINI


class TestGenerationalLru:
    def test_miss_then_hit(self):
        lru = GenerationalLru(max_entries=4)
        value, hit = lru.get_or_load(("k",), 1, lambda: "loaded")
        assert (value, hit) == ("loaded", False)
        value, hit = lru.get_or_load(("k",), 1, lambda: "never")
        assert (value, hit) == ("loaded", True)
        stats = lru.stats()
        assert (stats.hits, stats.misses) == (1, 1)

    def test_stale_generation_reloads(self):
        lru = GenerationalLru(max_entries=4)
        lru.get_or_load(("k",), 1, lambda: "old")
        value, hit = lru.get_or_load(("k",), 2, lambda: "new")
        assert (value, hit) == ("new", False)
        assert lru.stats().invalidations == 1
        # The reloaded entry serves the new generation.
        assert lru.get_or_load(("k",), 2, lambda: "never")[1] is True

    def test_entry_bound_evicts_lru_order(self):
        lru = GenerationalLru(max_entries=2, max_bytes=None)
        lru.put(("a",), 1, generation=1)
        lru.put(("b",), 2, generation=1)
        lru.get(("a",), 1)  # refresh a's recency; b is now the LRU entry
        lru.put(("c",), 3, generation=1)
        assert lru.get(("b",), 1) is None
        assert lru.get(("a",), 1) == 1
        assert lru.get(("c",), 1) == 3
        assert lru.stats().evictions == 1

    def test_byte_bound_evicts(self):
        lru = GenerationalLru(
            max_entries=100, max_bytes=100, size_of=lambda v: 60
        )
        lru.put(("a",), "x", generation=1)
        lru.put(("b",), "y", generation=1)  # 120 bytes > 100: evicts a
        assert len(lru) == 1
        assert lru.get(("b",), 1) == "y"

    def test_byte_bound_keeps_at_least_one_entry(self):
        lru = GenerationalLru(max_entries=10, max_bytes=10, size_of=lambda v: 99)
        lru.put(("huge",), "x", generation=1)
        assert lru.get(("huge",), 1) == "x"

    def test_invalidate_and_clear(self):
        lru = GenerationalLru(max_entries=4)
        lru.put(("a",), 1, generation=1)
        lru.put(("b",), 2, generation=1)
        assert lru.invalidate(("a",)) is True
        assert lru.invalidate(("a",)) is False
        assert lru.clear() == 1
        assert len(lru) == 0
        assert lru.stats().bytes == 0

    def test_peek_has_no_counter_effects(self):
        lru = GenerationalLru(max_entries=4)
        assert lru.peek(("k",), 1) is False
        lru.put(("k",), "v", generation=1)
        assert lru.peek(("k",), 1) is True
        assert lru.peek(("k",), 2) is False
        stats = lru.stats()
        assert (stats.hits, stats.misses, stats.invalidations) == (0, 0, 0)

    def test_loader_exception_propagates_and_unblocks_key(self):
        lru = GenerationalLru(max_entries=4)

        def boom():
            raise RuntimeError("loader failed")

        with pytest.raises(RuntimeError):
            lru.get_or_load(("k",), 1, boom)
        # The flight was cleaned up: the key loads normally afterwards.
        assert lru.get_or_load(("k",), 1, lambda: "ok")[0] == "ok"

    def test_rejects_nonpositive_entry_bound(self):
        with pytest.raises(ValueError):
            GenerationalLru(max_entries=0)

    def test_single_flight_stampede_runs_loader_once(self):
        lru = GenerationalLru(max_entries=4)
        n_threads = 8
        started = threading.Barrier(n_threads)
        release = threading.Event()
        calls = []

        def slow_loader():
            calls.append(1)
            release.wait(5)
            return "value"

        results = []

        def worker():
            started.wait(5)
            results.append(lru.get_or_load(("k",), 1, slow_loader))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        # Give followers time to pile up on the flight, then release.
        while not calls:
            pass
        release.set()
        for thread in threads:
            thread.join(10)
        assert len(calls) == 1
        assert [value for value, _ in results] == ["value"] * n_threads
        # Exactly one miss (the leader); followers re-read the stored entry.
        assert lru.stats().misses == 1
        assert lru.stats().hits == n_threads - 1


class TestKeysAndEstimates:
    def test_key_builders(self):
        assert MappingCache.mapping_key("A", "B", "auto#product") == (
            "mapping", "A", "B", "auto#product"
        )
        assert MappingCache.composed_key(["A", "B", "C"], "min") == (
            "composed", "A", "C", "A->B->C#min"
        )
        assert MappingCache.taxonomy_key("GO") == ("taxonomy", "GO", "GO", "")
        assert MappingCache.view_key("A", "abc") == ("view", "A", "", "abc")

    def test_spec_digest_is_stable_and_distinguishing(self):
        assert spec_digest("a", (1, 2)) == spec_digest("a", (1, 2))
        assert spec_digest("a", (1, 2)) != spec_digest("a", (2, 1))
        assert len(spec_digest("x")) == 16

    def test_estimate_size_scales_with_payload(self, paper_genmapper):
        small = paper_genmapper.map("LocusLink", "Hugo")
        taxonomy = paper_genmapper.taxonomy("GO")
        view = paper_genmapper.generate_view("LocusLink", ["Hugo"], combine="OR")
        assert estimate_size(small) > 96
        assert estimate_size(taxonomy) > 96
        assert estimate_size(view) > 96
        assert estimate_size(object()) == 256


@pytest.fixture()
def cached_genmapper():
    """The paper's running example with the cache force-enabled, so these
    tests still exercise caching when the suite runs under
    ``REPRO_CACHE=off`` (the CI guard)."""
    with GenMapper(enable_cache=True) as gm:
        gm.integrate_text(LOCUS_353_RECORD, "LocusLink")
        gm.integrate_text(GO_MINI_OBO, "GO")
        gm.integrate_text(UNIGENE_MINI, "Unigene")
        yield gm


class TestGenMapperCaching:
    def test_map_is_cached_by_identity(self, cached_genmapper):
        first = cached_genmapper.map("LocusLink", "GO")
        second = cached_genmapper.map("LocusLink", "GO")
        assert first is second
        assert cached_genmapper.cache_stats()["hits"] >= 1

    def test_reimport_invalidates(self, cached_genmapper):
        before = cached_genmapper.map("LocusLink", "GO")
        cached_genmapper.integrate_text(LOCUS_353_RECORD, "LocusLink")
        after = cached_genmapper.map("LocusLink", "GO")
        assert after is not before
        assert after.pair_set() == before.pair_set()

    def test_association_write_invalidates(self, cached_genmapper):
        repo = cached_genmapper.repository
        before = cached_genmapper.map("LocusLink", "GO")
        assert ("353", "GO:0008150") not in before.pair_set()
        rel = repo.ensure_source_rel("LocusLink", "GO", "FACT")
        repo.add_associations(rel, [("353", "GO:0008150", 0.9)])
        after = cached_genmapper.map("LocusLink", "GO")
        assert ("353", "GO:0008150") in after.pair_set()

    def test_derive_subsumed_invalidates_taxonomy_consumers(
        self, cached_genmapper
    ):
        cached = cached_genmapper.subsumed("GO")
        cached_genmapper.derive_subsumed("GO")
        fresh = cached_genmapper.subsumed("GO")
        assert fresh is not cached
        assert fresh.pair_set() == cached.pair_set()

    def test_materializing_compose_invalidates(self, cached_genmapper):
        path = ["Unigene", "LocusLink", "GO"]
        cached = cached_genmapper.compose(path)
        assert cached_genmapper.compose(path) is cached
        cached_genmapper.compose(path, materialize=True)
        assert cached_genmapper.compose(path) is not cached

    def test_adhoc_combiner_is_never_cached(self, cached_genmapper):
        def sum_cap(left, right):
            return min(1.0, left + right)

        path = ["Unigene", "LocusLink", "GO"]
        first = cached_genmapper.compose(path, combiner=sum_cap)
        second = cached_genmapper.compose(path, combiner=sum_cap)
        assert first is not second

    def test_views_cache_and_key_on_combine(self, cached_genmapper):
        view_or = cached_genmapper.generate_view(
            "LocusLink", ["Hugo", "GO"], combine="OR"
        )
        assert (
            cached_genmapper.generate_view(
                "LocusLink", ["Hugo", "GO"], combine="OR"
            )
            is view_or
        )
        view_and = cached_genmapper.generate_view(
            "LocusLink", ["Hugo", "GO"], combine="AND"
        )
        assert view_and is not view_or

    def test_view_key_accepts_one_shot_iterator(self, cached_genmapper):
        view = cached_genmapper.generate_view(
            "LocusLink", ["GO"], source_objects=iter(["353"]), combine="OR"
        )
        again = cached_genmapper.generate_view(
            "LocusLink", ["GO"], source_objects=iter(["353"]), combine="OR"
        )
        assert view.rows and again is view

    def test_taxonomy_cached(self, cached_genmapper):
        assert cached_genmapper.taxonomy("GO") is cached_genmapper.taxonomy("GO")

    def test_clear_cache(self, cached_genmapper):
        cached_genmapper.map("LocusLink", "GO")
        assert cached_genmapper.clear_cache() >= 1
        assert cached_genmapper.cache_stats()["entries"] == 0

    def test_cache_stats_shape(self, cached_genmapper):
        stats = cached_genmapper.cache_stats()
        for field in (
            "hits", "misses", "evictions", "invalidations", "entries",
            "bytes", "hit_ratio", "max_entries", "max_bytes", "generation",
        ):
            assert field in stats

    def test_metrics_registry_mirrors_counters(self, cached_genmapper):
        registry = MetricsRegistry()
        cache = MappingCache(cached_genmapper.db, registry=registry)
        key = MappingCache.mapping_key("A", "B")
        cache.get_or_load(key, lambda: "v")
        cache.get_or_load(key, lambda: "v")
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["cache.miss"] == 1
        assert counters["cache.hit"] == 1
        assert snapshot["gauges"]["cache.entries"] == 1


class TestEnvironmentSwitches:
    def test_cache_enabled_by_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled_by_env(True) is True
        for value in ("off", "0", "false", "no", "OFF"):
            monkeypatch.setenv("REPRO_CACHE", value)
            assert cache_enabled_by_env(True) is False
        monkeypatch.setenv("REPRO_CACHE", "on")
        assert cache_enabled_by_env(False) is True

    def test_cache_size_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_SIZE", raising=False)
        assert cache_size_from_env() == 256
        monkeypatch.setenv("REPRO_CACHE_SIZE", "12")
        assert cache_size_from_env() == 12
        monkeypatch.setenv("REPRO_CACHE_SIZE", "garbage")
        assert cache_size_from_env() == 256

    def test_repro_cache_off_disables_but_queries_work(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        with GenMapper() as gm:
            assert gm.cache is None
            assert gm.cache_stats() is None
            gm.integrate_text(LOCUS_353_RECORD, "LocusLink")
            gm.integrate_text(GO_MINI_OBO, "GO")
            mapping = gm.map("LocusLink", "GO")
            assert ("353", "GO:0009116") in mapping.pair_set()
            assert gm.map("LocusLink", "GO") is not mapping

    def test_cache_size_zero_disables(self):
        with GenMapper(cache_size=0) as gm:
            assert gm.cache is None

    def test_explicit_enable_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "off")
        with GenMapper(enable_cache=True) as gm:
            assert gm.cache is not None


class TestCrossConnectionInvalidation:
    def test_second_pool_write_is_seen(self, tmp_path):
        """A writer on a *different* connection pool (same database file)
        must invalidate the reader's cache via ``PRAGMA data_version``."""
        path = tmp_path / "gam.db"
        with (
            GenMapper(path, enable_cache=True) as writer,
            GenMapper(path, enable_cache=True) as reader,
        ):
            writer.integrate_text(LOCUS_353_RECORD, "LocusLink")
            writer.integrate_text(GO_MINI_OBO, "GO")
            before = reader.map("LocusLink", "GO")
            assert reader.map("LocusLink", "GO") is before  # warm
            rel = writer.repository.ensure_source_rel("LocusLink", "GO", "FACT")
            writer.repository.add_associations(
                rel, [("353", "GO:0008150", 0.9)]
            )
            after = reader.map("LocusLink", "GO")
            assert after is not before
            assert ("353", "GO:0008150") in after.pair_set()

    def test_same_pool_sibling_connection_write_is_seen(self, tmp_path):
        """Writes through one pool connection invalidate entries loaded
        through another thread's connection of the same pool."""
        path = tmp_path / "gam.db"
        with GenMapper(path, pool_size=4, enable_cache=True) as gm:
            gm.integrate_text(LOCUS_353_RECORD, "LocusLink")
            gm.integrate_text(GO_MINI_OBO, "GO")
            before = gm.map("LocusLink", "GO")

            def write():
                rel = gm.repository.ensure_source_rel(
                    "LocusLink", "GO", "FACT"
                )
                gm.repository.add_associations(
                    rel, [("353", "GO:0008150", 0.9)]
                )

            thread = threading.Thread(target=write)
            thread.start()
            thread.join(10)
            after = gm.map("LocusLink", "GO")
            assert after is not before
            assert ("353", "GO:0008150") in after.pair_set()

    def test_sibling_write_invalidates_only_touched_sources(self, tmp_path):
        """Scoped invalidation across pool siblings: a write through one
        connection invalidates only the touched sources' entries in the
        shared cache — warm entries for disjoint source pairs survive
        because the generation vector is shared by the whole pool."""
        path = tmp_path / "gam.db"
        with GenMapper(path, pool_size=4, enable_cache=True) as gm:
            repo = gm.repository
            for name in ("W", "X", "Y", "Z"):
                repo.add_source(name, "Other")
                repo.add_objects(
                    name, [(f"{name.lower()}{i}", None, None) for i in range(3)]
                )
            wx = repo.ensure_source_rel("W", "X", "FACT")
            yz = repo.ensure_source_rel("Y", "Z", "FACT")
            repo.add_associations(wx, [("w0", "x0", 1.0)])
            repo.add_associations(yz, [("y0", "z0", 1.0)])
            touched_before = gm.map("W", "X")
            untouched_before = gm.map("Y", "Z")

            def write():
                repo.add_associations(wx, [("w1", "x1", 0.9)])

            thread = threading.Thread(target=write)
            thread.start()
            thread.join(10)
            # Touched pair reloads; the disjoint pair's entry is served
            # warm (identity-preserved) despite the sibling's commit
            # having moved PRAGMA data_version.
            assert gm.map("W", "X") is not touched_before
            assert gm.map("Y", "Z") is untouched_before
            assert gm.cache_stats()["scoped_invalidations"] >= 1


class TestComposeEngines:
    @pytest.fixture()
    def gm(self, paper_genmapper):
        return paper_genmapper

    def test_sql_and_memory_agree_product(self, gm):
        from repro.operators.compose import compose

        path = ["Unigene", "LocusLink", "GO"]
        sql = compose(gm.repository, path, engine="sql")
        memory = compose(gm.repository, path, engine="memory")
        assert sql.pair_set() == memory.pair_set()
        sql_ev = {
            (a.source_accession, a.target_accession): a.evidence for a in sql
        }
        mem_ev = {
            (a.source_accession, a.target_accession): a.evidence
            for a in memory
        }
        for pair, evidence in mem_ev.items():
            assert sql_ev[pair] == pytest.approx(evidence)

    def test_sql_and_memory_agree_min(self, gm):
        from repro.operators.compose import compose, min_evidence

        path = ["Unigene", "LocusLink", "GO"]
        sql = compose(gm.repository, path, min_evidence, engine="sql")
        memory = compose(gm.repository, path, min_evidence, engine="memory")
        assert sql.pair_set() == memory.pair_set()

    def test_sql_engine_rejects_adhoc_combiner(self, gm):
        from repro.operators.compose import compose

        with pytest.raises(ValueError, match="named combiner"):
            compose(
                gm.repository,
                ["Unigene", "LocusLink", "GO"],
                lambda a, b: a * b,
                engine="sql",
            )

    def test_two_source_path_returns_stored_mapping(self, gm):
        from repro.operators.compose import compose
        from repro.operators.simple import map_

        direct = map_(gm.repository, "LocusLink", "GO")
        composed = compose(gm.repository, ["LocusLink", "GO"])
        assert composed.pair_set() == direct.pair_set()
        # Satellite fix: the stored leg's evidence survives untouched (the
        # old fold built it and then discarded the stored rel_type).
        assert composed.rel_type == direct.rel_type
