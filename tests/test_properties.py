"""Property-based tests (hypothesis) for core data structures and
algorithms: mapping algebra, Compose, GenerateView vs a brute-force
reference, taxonomy closures, BH correction and EAV round trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.diffexpr import benjamini_hochberg
from repro.eav.model import EavRow
from repro.eav.store import EavDataset
from repro.gam.enums import CombineMethod
from repro.operators.compose import compose_pair, min_evidence
from repro.operators.generate_view import TargetSpec, generate_view
from repro.operators.mapping import Mapping
from repro.operators.set_ops import difference, intersection, union
from repro.taxonomy.dag import Taxonomy
from tests.test_generate_view import make_resolver, reference_generate_view

# -- strategies ---------------------------------------------------------------

accessions = st.text(
    alphabet="abcdefgh123", min_size=1, max_size=3
)

pairs = st.lists(
    st.tuples(accessions, accessions,
              st.floats(min_value=0.0, max_value=1.0)),
    max_size=25,
)


def mapping_from(pair_list, source="S", target="T"):
    return Mapping.build(source, target, pair_list)


@st.composite
def dag_edges(draw):
    """Child->parent edges guaranteed acyclic (parents have smaller ids)."""
    n = draw(st.integers(min_value=2, max_value=12))
    edges = []
    for child in range(1, n):
        n_parents = draw(st.integers(min_value=0, max_value=min(2, child)))
        parent_ids = draw(
            st.lists(
                st.integers(min_value=0, max_value=child - 1),
                min_size=n_parents,
                max_size=n_parents,
                unique=True,
            )
        )
        edges.extend((f"t{child}", f"t{parent}") for parent in parent_ids)
    return edges


# -- mapping algebra ------------------------------------------------------------


class TestMappingProperties:
    @given(pairs)
    def test_build_deduplicates(self, pair_list):
        mapping = mapping_from(pair_list)
        assert len(mapping) == len(mapping.pair_set())

    @given(pairs)
    def test_domain_range_consistent(self, pair_list):
        mapping = mapping_from(pair_list)
        assert mapping.domain() == {p[0] for p in mapping.pair_set()}
        assert mapping.range() == {p[1] for p in mapping.pair_set()}

    @given(pairs)
    def test_invert_is_involution(self, pair_list):
        mapping = mapping_from(pair_list)
        assert mapping.invert().invert().pair_set() == mapping.pair_set()

    @given(pairs, st.sets(accessions, max_size=5))
    def test_restrict_domain_is_subset(self, pair_list, objects):
        mapping = mapping_from(pair_list)
        restricted = mapping.restrict_domain(objects)
        assert restricted.pair_set() <= mapping.pair_set()
        assert restricted.domain() <= objects

    @given(pairs, st.sets(accessions, max_size=5))
    def test_restrict_domain_idempotent(self, pair_list, objects):
        mapping = mapping_from(pair_list)
        once = mapping.restrict_domain(objects)
        twice = once.restrict_domain(objects)
        assert once.pair_set() == twice.pair_set()


class TestSetOpProperties:
    @given(pairs, pairs)
    def test_union_commutative(self, left_pairs, right_pairs):
        left, right = mapping_from(left_pairs), mapping_from(right_pairs)
        assert union(left, right).pair_set() == union(right, left).pair_set()

    @given(pairs, pairs)
    def test_intersection_subset_of_union(self, left_pairs, right_pairs):
        left, right = mapping_from(left_pairs), mapping_from(right_pairs)
        assert intersection(left, right).pair_set() <= union(
            left, right
        ).pair_set()

    @given(pairs, pairs)
    def test_difference_partition(self, left_pairs, right_pairs):
        left, right = mapping_from(left_pairs), mapping_from(right_pairs)
        diff = difference(left, right).pair_set()
        inter = intersection(left, right).pair_set()
        assert diff | inter == left.pair_set()
        assert diff & inter == set()

    @given(pairs)
    def test_union_with_self_is_identity(self, pair_list):
        mapping = mapping_from(pair_list)
        assert union(mapping, mapping).pair_set() == mapping.pair_set()


class TestComposeProperties:
    @given(pairs, pairs, pairs)
    @settings(max_examples=40, deadline=None)
    def test_compose_associative(self, ab_pairs, bc_pairs, cd_pairs):
        ab = mapping_from(ab_pairs, "A", "B")
        bc = mapping_from(bc_pairs, "B", "C")
        cd = mapping_from(cd_pairs, "C", "D")
        left = compose_pair(compose_pair(ab, bc), cd)
        right = compose_pair(ab, compose_pair(bc, cd))
        assert left.pair_set() == right.pair_set()

    @given(pairs, pairs)
    def test_compose_domain_shrinks(self, ab_pairs, bc_pairs):
        ab = mapping_from(ab_pairs, "A", "B")
        bc = mapping_from(bc_pairs, "B", "C")
        composed = compose_pair(ab, bc)
        assert composed.domain() <= ab.domain()
        assert composed.range() <= bc.range()

    @given(pairs, pairs)
    def test_compose_matches_set_semantics(self, ab_pairs, bc_pairs):
        ab = mapping_from(ab_pairs, "A", "B")
        bc = mapping_from(bc_pairs, "B", "C")
        expected = {
            (a, c)
            for a, b in ab.pair_set()
            for b2, c in bc.pair_set()
            if b == b2
        }
        assert compose_pair(ab, bc).pair_set() == expected

    @given(pairs, pairs)
    def test_min_combiner_bounded_by_legs(self, ab_pairs, bc_pairs):
        ab = mapping_from(ab_pairs, "A", "B")
        bc = mapping_from(bc_pairs, "B", "C")
        composed = compose_pair(ab, bc, combiner=min_evidence)
        floor = min(ab.min_evidence(), bc.min_evidence())
        for assoc in composed:
            assert assoc.evidence >= floor - 1e-12

    @given(pairs, pairs)
    def test_product_evidence_never_exceeds_legs(self, ab_pairs, bc_pairs):
        ab = mapping_from(ab_pairs, "A", "B")
        bc = mapping_from(bc_pairs, "B", "C")
        composed = compose_pair(ab, bc)
        leg_max = {}
        for assoc in ab:
            key = assoc.source_accession
            leg_max[key] = max(leg_max.get(key, 0.0), assoc.evidence)
        for assoc in composed:
            assert assoc.evidence <= leg_max[assoc.source_accession] + 1e-12


class TestGenerateViewProperties:
    @given(
        pairs,
        pairs,
        st.sets(accessions, min_size=1, max_size=6),
        st.sampled_from(["AND", "OR"]),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_reference(
        self, hugo_pairs, go_pairs, objects, combine, negate_second
    ):
        world = {
            "Hugo": mapping_from(hugo_pairs, "S", "Hugo"),
            "GO": mapping_from(go_pairs, "S", "GO"),
        }
        specs = [
            TargetSpec.of("Hugo"),
            TargetSpec.of("GO", negated=negate_second),
        ]
        view = generate_view(
            make_resolver(world), "S", objects, specs, combine
        )
        expected = reference_generate_view(
            world, "S", objects, specs, CombineMethod.parse(combine)
        )
        assert set(view.rows) == expected

    @given(pairs, st.sets(accessions, min_size=1, max_size=6))
    def test_or_view_covers_all_objects(self, hugo_pairs, objects):
        world = {"Hugo": mapping_from(hugo_pairs, "S", "Hugo")}
        view = generate_view(
            make_resolver(world), "S", objects, [TargetSpec.of("Hugo")], "OR"
        )
        assert set(view.source_objects()) == objects

    @given(pairs, st.sets(accessions, min_size=1, max_size=6))
    def test_and_view_objects_are_annotated(self, hugo_pairs, objects):
        world = {"Hugo": mapping_from(hugo_pairs, "S", "Hugo")}
        view = generate_view(
            make_resolver(world), "S", objects, [TargetSpec.of("Hugo")], "AND"
        )
        annotated = world["Hugo"].domain()
        assert set(view.source_objects()) <= annotated & objects


class TestTaxonomyProperties:
    @given(dag_edges())
    @settings(max_examples=50, deadline=None)
    def test_subsumed_equals_descendant_sets(self, edges):
        taxonomy = Taxonomy(edges)
        pairs_set = set(taxonomy.subsumed_pairs())
        for term in taxonomy.terms:
            expected = {(term, d) for d in taxonomy.descendants(term)}
            assert {p for p in pairs_set if p[0] == term} == expected

    @given(dag_edges())
    @settings(max_examples=50, deadline=None)
    def test_ancestors_descendants_are_dual(self, edges):
        taxonomy = Taxonomy(edges)
        for term in taxonomy.terms:
            for ancestor in taxonomy.ancestors(term):
                assert term in taxonomy.descendants(ancestor)

    @given(dag_edges())
    @settings(max_examples=50, deadline=None)
    def test_depth_increases_along_edges(self, edges):
        taxonomy = Taxonomy(edges)
        for child, parent in edges:
            assert taxonomy.depth(child) > taxonomy.depth(parent)


class TestStatisticsProperties:
    @given(
        st.lists(
            st.floats(min_value=1e-12, max_value=1.0), min_size=1, max_size=60
        )
    )
    def test_bh_bounds_and_dominance(self, p_list):
        p = np.array(p_list)
        q = benjamini_hochberg(p)
        assert np.all(q >= p - 1e-12)
        assert np.all(q <= 1.0 + 1e-12)

    @given(
        st.lists(
            st.floats(min_value=1e-12, max_value=1.0), min_size=2, max_size=60
        )
    )
    def test_bh_preserves_p_value_order(self, p_list):
        p = np.array(p_list)
        q = benjamini_hochberg(p)
        order = np.argsort(p)
        assert np.all(np.diff(q[order]) >= -1e-12)


class TestEavProperties:
    eav_texts = st.text(
        alphabet=st.characters(
            blacklist_characters="\t\n\r", blacklist_categories=("Cs",)
        ),
        min_size=0,
        max_size=12,
    )

    @given(
        st.lists(
            st.tuples(accessions, accessions, accessions, eav_texts),
            max_size=15,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_file_round_trip(self, tmp_path_factory, rows):
        dataset = EavDataset(
            "PropSource",
            [
                EavRow(entity, target, value, text or None)
                for entity, target, value, text in rows
            ],
        )
        from repro.eav.io import read_eav, write_eav

        path = tmp_path_factory.mktemp("eav") / "prop.eav"
        write_eav(dataset, path)
        assert read_eav(path) == dataset


# -- reliability --------------------------------------------------------------


class TestReliabilityProperties:
    @given(
        rows=st.lists(
            st.tuples(accessions, accessions), min_size=1, max_size=12
        ),
        fault_at=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_import_is_atomic_per_source_under_faults(self, rows, fault_at):
        """A fault anywhere in an import leaves the GAM either fully
        imported or exactly as it was — never a half-imported source."""
        import sqlite3

        from repro.gam.database import GamDatabase
        from repro.gam.dump import canonical_snapshot
        from repro.gam.repository import GamRepository
        from repro.importer.importer import GamImporter
        from repro.obs import MetricsRegistry
        from repro.reliability import FaultInjector, FaultRule, RetryPolicy

        dataset = EavDataset(
            "PropSource",
            [EavRow(entity, "Hugo", value) for entity, value in rows],
        )

        def snapshot_after(inject: bool):
            db = GamDatabase()
            try:
                repository = GamRepository(db)
                empty = canonical_snapshot(repository)
                if inject:
                    db.retry_policy = RetryPolicy(max_attempts=1)
                    db.fault_injector = FaultInjector(
                        [FaultRule("ioerror", after=fault_at, times=None)],
                        registry=MetricsRegistry(),
                    )
                failed = False
                try:
                    GamImporter(repository).import_dataset(dataset)
                except sqlite3.OperationalError:
                    failed = True
                db.fault_injector = None
                db.retry_policy = None
                return canonical_snapshot(repository), empty, failed
            finally:
                db.close()

        clean, _, clean_failed = snapshot_after(inject=False)
        assert not clean_failed
        faulty, empty, failed = snapshot_after(inject=True)
        if failed:
            assert faulty == empty  # rolled back: no partial source
        else:
            assert faulty == clean  # fault missed the window: full import

    @given(
        max_attempts=st.integers(min_value=1, max_value=8),
        base_delay=st.floats(
            min_value=1e-4, max_value=0.05, allow_nan=False
        ),
        multiplier=st.floats(min_value=1.0, max_value=3.0, allow_nan=False),
        jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=80, deadline=None)
    def test_jittered_retry_never_exceeds_budgets(
        self, max_attempts, base_delay, multiplier, jitter, seed
    ):
        """However the jitter falls, a retry run never exceeds the attempt
        budget and never sleeps longer than the deterministic schedule."""
        import random
        import sqlite3

        from repro.reliability import RetryBudgetExceeded, RetryPolicy

        slept = []
        calls = []
        policy = RetryPolicy(
            max_attempts=max_attempts,
            base_delay=base_delay,
            max_delay=base_delay * 8,
            multiplier=multiplier,
            jitter=jitter,
            max_elapsed=None,
            sleep=slept.append,
            rng=random.Random(seed),
        )

        def always_busy():
            calls.append(1)
            raise sqlite3.OperationalError("database is locked")

        try:
            policy.call(always_busy)
            raise AssertionError("always-failing call cannot succeed")
        except RetryBudgetExceeded as exc:
            assert exc.attempts == max_attempts
        assert len(calls) == max_attempts
        assert len(slept) == max_attempts - 1
        for attempt, delay in enumerate(slept, start=1):
            assert 0.0 <= delay <= policy.backoff(attempt)
        assert sum(slept) <= sum(
            policy.backoff(n) for n in range(1, max_attempts)
        )

    @given(
        max_elapsed=st.floats(
            min_value=0.01, max_value=2.0, allow_nan=False
        ),
        base_delay=st.floats(
            min_value=1e-3, max_value=0.5, allow_nan=False
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_retry_respects_time_budget(self, max_elapsed, base_delay, seed):
        """Total time spent retrying (on a fake clock) never exceeds the
        configured ``max_elapsed`` budget."""
        import random
        import sqlite3

        from repro.reliability import RetryBudgetExceeded, RetryPolicy

        clock = {"now": 0.0}

        def sleeper(seconds):
            clock["now"] += seconds

        policy = RetryPolicy(
            max_attempts=1000,
            base_delay=base_delay,
            max_delay=base_delay * 4,
            jitter=0.5,
            max_elapsed=max_elapsed,
            clock=lambda: clock["now"],
            sleep=sleeper,
            rng=random.Random(seed),
        )
        try:
            policy.call(
                lambda: (_ for _ in ()).throw(
                    sqlite3.OperationalError("database is locked")
                )
            )
            raise AssertionError("always-failing call cannot succeed")
        except RetryBudgetExceeded:
            pass
        assert clock["now"] <= max_elapsed
