"""Tests for database statistics, mapping cardinality, and batch queries."""

import pytest

from repro.cli import main
from repro.gam.statistics import collect_statistics
from repro.operators.mapping import Mapping
from repro.query.batch import parse_batch, render_results, run_batch
from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD


class TestMappingCardinality:
    def test_one_to_one(self):
        mapping = Mapping.build("A", "B", [("a1", "b1"), ("a2", "b2")])
        assert mapping.cardinality() == "1:1"

    def test_one_to_n(self):
        mapping = Mapping.build("A", "B", [("a1", "b1"), ("a1", "b2")])
        assert mapping.cardinality() == "1:n"

    def test_n_to_one(self):
        mapping = Mapping.build("A", "B", [("a1", "b1"), ("a2", "b1")])
        assert mapping.cardinality() == "n:1"

    def test_n_to_m(self):
        mapping = Mapping.build(
            "A", "B", [("a1", "b1"), ("a1", "b2"), ("a2", "b1")]
        )
        assert mapping.cardinality() == "n:m"

    def test_empty_is_one_to_one(self):
        assert Mapping.build("A", "B", []).cardinality() == "1:1"


class TestDatabaseStatistics:
    @pytest.fixture()
    def stats(self, loaded_genmapper):
        return collect_statistics(loaded_genmapper.repository)

    def test_totals_match_db_counts(self, stats, loaded_genmapper):
        counts = loaded_genmapper.db.counts()
        assert stats.total_objects == counts["object"]
        assert stats.total_associations == counts["object_rel"]

    def test_per_source_objects(self, stats, loaded_genmapper):
        by_name = {s.name: s for s in stats.sources}
        assert by_name["LocusLink"].objects == (
            loaded_genmapper.repository.count_objects("LocusLink")
        )

    def test_rel_type_census(self, stats):
        assert stats.rel_type_census["Fact"] > 0
        assert stats.rel_type_census["Is-a"] >= 1
        assert stats.rel_type_census["Contains"] >= 3

    def test_hub_sources_ranked(self, stats):
        hubs = stats.hub_sources(k=3)
        assert len(hubs) == 3
        assert hubs[0].mappings >= hubs[1].mappings >= hubs[2].mappings
        assert hubs[0].name == "LocusLink"  # the universe's hub source

    def test_mapping_cardinality_census(self, stats, loaded_genmapper):
        census = stats.cardinality_census()
        assert sum(census.values()) == len(stats.mappings)
        # LocusLink -> GO is many-to-many (genes share terms, genes have
        # several terms).
        ll_go = next(
            m for m in stats.mappings
            if (m.source, m.target) == ("LocusLink", "GO")
        )
        assert ll_go.cardinality == "n:m"

    def test_sql_cardinality_matches_in_memory(self, stats, loaded_genmapper):
        for stat in stats.mappings:
            if stat.rel_type not in ("Fact", "Similarity"):
                continue
            mapping = loaded_genmapper.map(stat.source, stat.target)
            assert mapping.cardinality() == stat.cardinality, (
                stat.source, stat.target,
            )

    def test_render(self, stats):
        text = stats.render(max_rows=5)
        assert "sources" in text
        assert "relationship types:" in text
        assert "mapping cardinalities:" in text
        assert "more sources" in text


class TestBatchParsing:
    BATCH = """\
# a comment
# name: go_profiles
ANNOTATE LocusLink WITH Hugo AND GO

ANNOTATE LocusLink WITH NOT OMIM
"""

    def test_named_and_numbered_entries(self):
        entries = parse_batch(self.BATCH)
        assert [entry.name for entry in entries] == [
            "go_profiles", "query_002",
        ]

    def test_specs_parsed(self):
        entries = parse_batch(self.BATCH)
        assert entries[0].spec.source == "LocusLink"
        assert entries[1].spec.targets[0].negated

    def test_empty_batch(self):
        assert parse_batch("# only comments\n") == []


class TestBatchExecution:
    def test_runs_all_queries(self, paper_genmapper, tmp_path):
        entries = parse_batch(
            "# name: hugo\nANNOTATE LocusLink WITH Hugo\n"
            "# name: go\nANNOTATE LocusLink WITH GO\n"
        )
        results = run_batch(paper_genmapper, entries, output_dir=tmp_path)
        assert all(result.ok for result in results)
        assert (tmp_path / "hugo.tsv").exists()
        assert (tmp_path / "go.tsv").exists()

    def test_failures_captured_not_raised(self, paper_genmapper):
        entries = parse_batch("ANNOTATE LocusLink WITH Nowhere\n")
        results = run_batch(paper_genmapper, entries)
        assert len(results) == 1
        assert not results[0].ok
        assert "Nowhere" in results[0].error

    def test_stop_on_error(self, paper_genmapper):
        entries = parse_batch(
            "ANNOTATE LocusLink WITH Nowhere\n"
            "ANNOTATE LocusLink WITH Hugo\n"
        )
        results = run_batch(paper_genmapper, entries, stop_on_error=True)
        assert len(results) == 1

    def test_no_output_dir_keeps_results_in_memory(self, paper_genmapper):
        entries = parse_batch("ANNOTATE LocusLink WITH Hugo\n")
        results = run_batch(paper_genmapper, entries)
        assert results[0].rows == 1
        assert results[0].output is None

    def test_workers_preserve_order_and_results(
        self, paper_genmapper, tmp_path
    ):
        entries = parse_batch(
            "# name: hugo\nANNOTATE LocusLink WITH Hugo\n"
            "# name: bad\nANNOTATE LocusLink WITH Nowhere\n"
            "# name: go\nANNOTATE LocusLink WITH GO\n"
            "# name: both\nANNOTATE LocusLink WITH Hugo AND GO\n"
        )
        serial = run_batch(paper_genmapper, entries, output_dir=tmp_path)
        threaded = run_batch(
            paper_genmapper, entries, output_dir=tmp_path, workers=4
        )
        assert [(r.name, r.rows, r.ok) for r in threaded] == [
            (r.name, r.rows, r.ok) for r in serial
        ]

    def test_render_results(self, paper_genmapper):
        entries = parse_batch(
            "ANNOTATE LocusLink WITH Hugo\nANNOTATE LocusLink WITH Nowhere\n"
        )
        text = render_results(run_batch(paper_genmapper, entries))
        assert "ok    query_001" in text
        assert "FAIL  query_002" in text
        assert "1/2 queries succeeded" in text


class TestCliStatsAndBatch:
    @pytest.fixture()
    def db_path(self, tmp_path):
        db = tmp_path / "gam.db"
        ll = tmp_path / "ll.txt"
        ll.write_text(LOCUS_353_RECORD)
        go = tmp_path / "go.obo"
        go.write_text(GO_MINI_OBO)
        main(["--db", str(db), "import", str(ll), "--source", "LocusLink"])
        main(["--db", str(db), "import", str(go), "--source", "GO"])
        return db

    def test_stats_detailed(self, db_path, capsys):
        capsys.readouterr()
        assert main(["--db", str(db_path), "stats", "--detailed"]) == 0
        out = capsys.readouterr().out
        assert "relationship types:" in out
        assert "LocusLink" in out

    def test_batch_command(self, db_path, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("# name: hugo\nANNOTATE LocusLink WITH Hugo\n")
        out_dir = tmp_path / "results"
        capsys.readouterr()
        code = main(["--db", str(db_path), "batch", str(batch),
                     "--out", str(out_dir)])
        assert code == 0
        assert (out_dir / "hugo.tsv").exists()
        assert "1/1 queries succeeded" in capsys.readouterr().out

    def test_batch_failure_exit_code(self, db_path, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("ANNOTATE LocusLink WITH Nowhere\n")
        assert main(["--db", str(db_path), "batch", str(batch)]) == 1
