"""Tests for taxonomy classification, conserved/changed functions, and
annotation coverage statistics."""

import pytest

from repro.analysis.classification import (
    classify,
    conserved_and_changed,
    level_profile,
)
from repro.analysis.coverage import (
    coverage_matrix,
    render_coverage,
    source_coverage,
)
from repro.operators.mapping import Mapping
from repro.taxonomy.dag import Taxonomy


@pytest.fixture()
def taxonomy():
    r"""root -> {metabolism, signaling}; metabolism -> {purine, lipid}."""
    return Taxonomy(
        [
            ("metabolism", "root"),
            ("signaling", "root"),
            ("purine", "metabolism"),
            ("lipid", "metabolism"),
        ]
    )


@pytest.fixture()
def annotation():
    return Mapping.build(
        "Gene",
        "GO",
        [
            ("g1", "purine"),
            ("g2", "purine"),
            ("g3", "lipid"),
            ("g4", "signaling"),
        ],
    )


class TestClassify:
    def test_rollup_to_ancestors(self, annotation, taxonomy):
        classified = classify(annotation, taxonomy)
        assert classified["purine"].genes == {"g1", "g2"}
        assert classified["metabolism"].genes == {"g1", "g2", "g3"}
        assert classified["root"].genes == {"g1", "g2", "g3", "g4"}

    def test_depths_recorded(self, annotation, taxonomy):
        classified = classify(annotation, taxonomy)
        assert classified["root"].depth == 0
        assert classified["purine"].depth == 2

    def test_gene_restriction(self, annotation, taxonomy):
        classified = classify(annotation, taxonomy, genes={"g1", "g4"})
        assert classified["root"].genes == {"g1", "g4"}
        assert "lipid" not in classified

    def test_terms_without_genes_absent(self, taxonomy):
        annotation = Mapping.build("Gene", "GO", [("g1", "signaling")])
        classified = classify(annotation, taxonomy)
        assert "purine" not in classified


class TestLevelProfile:
    def test_level_one_summary(self, annotation, taxonomy):
        profile = level_profile(annotation, taxonomy, depth=1)
        assert profile == {"metabolism": 3, "signaling": 1}

    def test_leaf_level(self, annotation, taxonomy):
        profile = level_profile(annotation, taxonomy, depth=2)
        assert profile == {"purine": 2, "lipid": 1}

    def test_unknown_terms_skipped(self, taxonomy):
        annotation = Mapping.build("Gene", "GO", [("g1", "not-in-tax")])
        assert level_profile(annotation, taxonomy, depth=0) == {}


class TestConservedAndChanged:
    def test_changed_function_ranks_first(self, annotation, taxonomy):
        # g1/g2 (purine) changed; g3/g4 conserved.
        comparisons = conserved_and_changed(
            annotation, taxonomy,
            first_genes={"g3", "g4"},      # conserved
            second_genes={"g1", "g2"},     # differentially expressed
        )
        assert comparisons[0].term == "purine"
        assert comparisons[0].second_fraction == 1.0

    def test_conserved_function_ranks_last(self, annotation, taxonomy):
        comparisons = conserved_and_changed(
            annotation, taxonomy,
            first_genes={"g3", "g4"},
            second_genes={"g1", "g2"},
        )
        assert comparisons[-1].term in ("signaling", "lipid")
        assert comparisons[-1].second_fraction == 0.0

    def test_counts_per_term(self, annotation, taxonomy):
        comparisons = conserved_and_changed(
            annotation, taxonomy,
            first_genes={"g3"},
            second_genes={"g1"},
        )
        by_term = {c.term: c for c in comparisons}
        assert by_term["metabolism"].first_count == 1
        assert by_term["metabolism"].second_count == 1
        assert by_term["metabolism"].second_fraction == pytest.approx(0.5)

    def test_min_size_filters(self, annotation, taxonomy):
        comparisons = conserved_and_changed(
            annotation, taxonomy,
            first_genes={"g3"},
            second_genes={"g1"},
            min_size=2,
        )
        assert all(c.total >= 2 for c in comparisons)


class TestCoverage:
    def test_paper_fixture_coverage(self, paper_genmapper):
        entries = source_coverage(paper_genmapper.repository, "LocusLink")
        by_target = {entry.target: entry for entry in entries}
        # The single locus 353 is annotated with every target.
        assert by_target["GO"].coverage == 1.0
        assert by_target["GO"].associations == 1
        assert by_target["Hugo"].source_objects == 1

    def test_universe_coverage_tracks_generation(
        self, loaded_genmapper, universe
    ):
        entries = source_coverage(loaded_genmapper.repository, "LocusLink")
        by_target = {entry.target: entry for entry in entries}
        expected_unigene = sum(
            1 for gene in universe.genes if gene.unigene is not None
        ) / len(universe.genes)
        assert by_target["Unigene"].coverage == pytest.approx(expected_unigene)
        expected_omim = sum(
            1 for gene in universe.genes if gene.omim is not None
        ) / len(universe.genes)
        assert by_target["OMIM"].coverage == pytest.approx(expected_omim)

    def test_mean_annotations(self, loaded_genmapper, universe):
        entries = source_coverage(loaded_genmapper.repository, "LocusLink")
        go = next(entry for entry in entries if entry.target == "GO")
        expected = sum(len(g.go_terms) for g in universe.genes) / len(
            universe.genes
        )
        assert go.mean_annotations == pytest.approx(expected)

    def test_entries_sorted_by_coverage(self, loaded_genmapper):
        entries = source_coverage(loaded_genmapper.repository, "LocusLink")
        coverages = [entry.coverage for entry in entries]
        assert coverages == sorted(coverages, reverse=True)

    def test_matrix_covers_all_mappings(self, paper_genmapper):
        matrix = coverage_matrix(paper_genmapper.repository)
        assert ("LocusLink", "GO") in matrix
        assert ("Unigene", "LocusLink") in matrix

    def test_render(self, paper_genmapper):
        entries = source_coverage(paper_genmapper.repository, "LocusLink")
        text = render_coverage(entries)
        assert "GO" in text
        assert "100.0%" in text

    def test_render_empty(self):
        assert "no outgoing mappings" in render_coverage([])
