"""End-to-end integration tests over the full synthetic universe.

These tests exercise the complete Figure 2 flow — emit native files,
parse, import, derive, query — and check the results against the
universe's ground truth.
"""


from repro.gam.enums import RelType
from repro.operators.simple import map_
from repro.query.language import parse_query
from repro.query.session import run_query


class TestFullImport:
    def test_all_manifest_sources_imported(self, loaded_genmapper):
        names = {source.name for source in loaded_genmapper.sources()}
        assert {
            "LocusLink", "GO", "Unigene", "Enzyme", "OMIM", "Hugo",
            "NetAffx", "SwissProt", "InterPro", "Ensembl",
        } <= names

    def test_partitions_created(self, loaded_genmapper):
        names = {source.name for source in loaded_genmapper.sources()}
        assert {
            "GO.BiologicalProcess", "GO.MolecularFunction",
            "GO.CellularComponent",
        } <= names

    def test_integrity_holds_after_full_import(self, loaded_genmapper):
        assert loaded_genmapper.check_integrity().ok

    def test_stats_count_every_table(self, loaded_genmapper):
        stats = loaded_genmapper.stats()
        assert stats["sources"] >= 15
        assert stats["objects"] > 100
        assert stats["associations"] > 500


class TestMappingsMatchGroundTruth:
    def test_locuslink_go_exact(self, loaded_genmapper, universe):
        mapping = loaded_genmapper.map("LocusLink", "GO")
        assert mapping.pair_set() == universe.true_locus_to_go()

    def test_locuslink_unigene_exact(self, loaded_genmapper, universe):
        mapping = loaded_genmapper.map("LocusLink", "Unigene")
        assert mapping.pair_set() == universe.true_locus_to_unigene()

    def test_composed_probe_to_go_precision(self, loaded_genmapper, universe):
        # NetAffx -> GO exists as a direct Fact mapping; force the
        # composed route through LocusLink and compare with ground truth.
        composed = loaded_genmapper.compose(["NetAffx", "LocusLink", "GO"])
        truth = universe.true_probe_to_go()
        derived = composed.pair_set()
        assert derived <= truth  # composition introduces no false pairs
        published = {
            probe.probe_id
            for probe in universe.probes
            if probe.published_locus is not None
        }
        recovered = {pair for pair in truth if pair[0] in published}
        assert derived == recovered

    def test_longer_path_through_unigene(self, loaded_genmapper, universe):
        composed = loaded_genmapper.compose(
            ["NetAffx", "Unigene", "LocusLink", "GO"]
        )
        assert composed.pair_set() <= universe.true_probe_to_go()
        assert len(composed) > 0


class TestDerivedRelationships:
    def test_subsumed_matches_taxonomy_closure(self, loaded_genmapper, universe):
        from repro.taxonomy.dag import Taxonomy

        stored = loaded_genmapper.subsumed("GO")
        taxonomy = Taxonomy(universe.go.is_a_pairs())
        assert stored.pair_set() == set(taxonomy.subsumed_pairs())

    def test_materialized_composed_equals_on_the_fly(self, universe_dir):
        from repro.core.genmapper import GenMapper

        with GenMapper() as gm:
            gm.integrate_directory(universe_dir)
            on_the_fly = gm.compose(
                ["Unigene", "LocusLink", "GO"], materialize=False
            )
            gm.compose(["Unigene", "LocusLink", "GO"], materialize=True)
            stored = map_(gm.repository, "Unigene", "GO")
            assert stored.rel_type is RelType.COMPOSED
            assert stored.pair_set() == on_the_fly.pair_set()


class TestQueriesOverUniverse:
    def test_figure_3_style_view(self, loaded_genmapper, universe):
        genes = universe.genes[:5]
        view = loaded_genmapper.generate_view(
            "LocusLink",
            ["Hugo", "GO", "Location", "OMIM"],
            source_objects=[g.locus for g in genes],
            combine="OR",
        )
        assert view.columns == ("LocusLink", "Hugo", "GO", "Location", "OMIM")
        for gene in genes:
            profile = view.annotation_profile(gene.locus)
            assert profile["Hugo"] == [gene.symbol]
            assert profile["GO"] == sorted(gene.go_terms)
            assert profile["Location"] == [gene.location]
            expected_omim = [gene.omim] if gene.omim else []
            assert profile["OMIM"] == expected_omim

    def test_motivating_query_semantics(self, loaded_genmapper, universe):
        with_omim = [g for g in universe.genes if g.omim is not None]
        without_omim = [g for g in universe.genes if g.omim is None]
        assert with_omim and without_omim
        query = (
            "ANNOTATE LocusLink WITH GO AND NOT OMIM"
        )
        view = run_query(loaded_genmapper, parse_query(query))
        result_loci = set(view.source_objects())
        assert result_loci == {g.locus for g in without_omim}

    def test_restricted_location_query(self, loaded_genmapper, universe):
        gene = universe.genes[0]
        query = (
            f"ANNOTATE LocusLink WITH Location IN ({gene.location}) AND Hugo"
        )
        view = run_query(loaded_genmapper, parse_query(query))
        expected = {
            g.locus for g in universe.genes if g.location == gene.location
        }
        assert set(view.source_objects()) == expected

    def test_cross_source_protein_query(self, loaded_genmapper, universe):
        protein = universe.proteins[0]
        view = loaded_genmapper.generate_view(
            "SwissProt",
            ["InterPro", "Hugo"],
            source_objects=[protein.accession],
            combine="OR",
        )
        profile = view.annotation_profile(protein.accession)
        assert profile["InterPro"] == sorted(protein.interpro)
        assert profile["Hugo"] == [protein.gene_symbol]

    def test_enzyme_taxonomy_query(self, loaded_genmapper, universe):
        enzymes = {g.ec for g in universe.genes if g.ec}
        taxonomy = loaded_genmapper.taxonomy("Enzyme")
        # Every EC number's top-level class is present in the hierarchy.
        for ec in enzymes:
            top = ec.split(".")[0]
            assert top in taxonomy
            assert ec in taxonomy.descendants(top)


class TestReimportStability:
    def test_double_import_changes_nothing(self, universe_dir):
        from repro.core.genmapper import GenMapper

        with GenMapper() as gm:
            gm.integrate_directory(universe_dir)
            before = gm.stats()
            reports = gm.integrate_directory(universe_dir)
            after = gm.stats()
            assert before == after
            assert all(report.new_objects == 0 for report in reports)
            assert all(
                report.total_associations == 0 for report in reports
            )
