"""Property-based tests for the extension modules: cardinality, rollup,
classification, noise, matching and the dump format."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen.noise import degrade_evidence, drop, rewire
from repro.derived.subsumed import rollup_mapping
from repro.operators.mapping import Mapping
from repro.operators.matching import token_jaccard_matcher, tokens
from repro.taxonomy.dag import Taxonomy
from tests.test_properties import accessions, dag_edges, pairs


def mapping_from(pair_list, source="S", target="T"):
    return Mapping.build(source, target, pair_list)


class TestCardinalityProperties:
    @given(pairs)
    def test_cardinality_is_valid_class(self, pair_list):
        assert mapping_from(pair_list).cardinality() in (
            "1:1", "1:n", "n:1", "n:m",
        )

    @given(pairs)
    def test_inverse_mirrors_cardinality(self, pair_list):
        mapping = mapping_from(pair_list)
        mirror = {"1:1": "1:1", "1:n": "n:1", "n:1": "1:n", "n:m": "n:m"}
        assert mapping.invert().cardinality() == mirror[mapping.cardinality()]

    @given(pairs, st.sets(accessions, max_size=4))
    def test_restriction_never_widens_cardinality(self, pair_list, objects):
        order = {"1:1": 0, "1:n": 1, "n:1": 1, "n:m": 2}
        mapping = mapping_from(pair_list)
        restricted = mapping.restrict_domain(objects)
        assert order[restricted.cardinality()] <= order[mapping.cardinality()]


class TestRollupProperties:
    @given(dag_edges(), pairs)
    @settings(max_examples=40, deadline=None)
    def test_rollup_is_idempotent(self, edges, pair_list):
        taxonomy = Taxonomy(edges)
        # Restrict targets to taxonomy terms so rollup has work to do.
        terms = sorted(taxonomy.terms)
        if not terms:
            return
        annotation = Mapping.build(
            "G", "T",
            [(p[0], terms[hash(p[1]) % len(terms)]) for p in pair_list],
        )
        once = rollup_mapping(annotation, taxonomy)
        twice = rollup_mapping(once, taxonomy)
        assert once.pair_set() == twice.pair_set()

    @given(dag_edges(), pairs)
    @settings(max_examples=40, deadline=None)
    def test_rollup_superset_of_direct(self, edges, pair_list):
        taxonomy = Taxonomy(edges)
        annotation = mapping_from(pair_list, "G", "T")
        rolled = rollup_mapping(annotation, taxonomy)
        assert annotation.pair_set() <= rolled.pair_set()

    @given(dag_edges(), pairs)
    @settings(max_examples=40, deadline=None)
    def test_rollup_preserves_domain(self, edges, pair_list):
        taxonomy = Taxonomy(edges)
        annotation = mapping_from(pair_list, "G", "T")
        rolled = rollup_mapping(annotation, taxonomy)
        assert rolled.domain() == annotation.domain()


class TestNoiseProperties:
    rates = st.floats(min_value=0.0, max_value=1.0)

    @given(pairs, rates, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_drop_is_subset(self, pair_list, rate, seed):
        mapping = mapping_from(pair_list)
        dropped = drop(mapping, rate, np.random.default_rng(seed))
        assert dropped.pair_set() <= mapping.pair_set()

    @given(pairs, rates, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_degrade_keeps_pairs(self, pair_list, rate, seed):
        mapping = mapping_from(pair_list)
        degraded = degrade_evidence(mapping, rate, np.random.default_rng(seed))
        assert degraded.pair_set() == mapping.pair_set()

    @given(pairs, rates, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rewire_corruption_record_is_accurate(self, pair_list, rate, seed):
        mapping = mapping_from(pair_list)
        noisy, corrupted = rewire(mapping, rate, np.random.default_rng(seed))
        # Every recorded corruption is in the noisy mapping and absent
        # from the truth; every other noisy pair is a true pair.
        assert corrupted <= noisy.pair_set()
        assert not corrupted & mapping.pair_set()
        assert noisy.pair_set() - corrupted <= mapping.pair_set()


class TestMatcherProperties:
    texts = st.text(alphabet="abc xyz", min_size=0, max_size=20)

    @given(texts, texts)
    def test_jaccard_symmetric(self, left, right):
        assert token_jaccard_matcher(left, right) == (
            token_jaccard_matcher(right, left)
        )

    @given(texts)
    def test_jaccard_reflexive_when_tokens_exist(self, text):
        if tokens(text):
            assert token_jaccard_matcher(text, text) == 1.0

    @given(texts, texts)
    def test_jaccard_bounded(self, left, right):
        assert 0.0 <= token_jaccard_matcher(left, right) <= 1.0


class TestDumpProperties:
    @given(
        st.lists(
            st.tuples(accessions, accessions,
                      st.floats(min_value=0.0, max_value=1.0)),
            min_size=1,
            max_size=15,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_any_mapping(self, tmp_path_factory, pair_list):
        from repro.core.genmapper import GenMapper
        from repro.eav.model import EavRow
        from repro.eav.store import EavDataset
        from repro.gam.dump import dump_database, load_database

        rows = [EavRow(a, "Target", b, evidence=e) for a, b, e in pair_list]
        with GenMapper() as gm:
            gm.integrate_dataset(EavDataset("PropSource", rows))
            path = tmp_path_factory.mktemp("dump") / "d.jsonl"
            dump_database(gm.repository, path)
            original = gm.map("PropSource", "Target").pair_set()
        with GenMapper() as fresh:
            load_database(fresh.repository, path)
            assert fresh.map("PropSource", "Target").pair_set() == original


class TestSqlEngineProperties:
    specs = st.tuples(
        st.lists(
            st.tuples(accessions, accessions), min_size=0, max_size=12
        ),  # Hugo pairs
        st.lists(
            st.tuples(accessions, accessions), min_size=0, max_size=12
        ),  # GO pairs
        st.sampled_from(["AND", "OR"]),
        st.booleans(),  # negate GO?
    )

    @given(specs)
    @settings(max_examples=30, deadline=None)
    def test_sql_engine_matches_memory_engine(self, spec):
        from repro.core.genmapper import GenMapper
        from repro.eav.model import EavRow
        from repro.eav.store import EavDataset
        from repro.operators.generate_view import TargetSpec

        hugo_pairs, go_pairs, combine, negate_go = spec
        rows = [EavRow(a, "Hugo", b) for a, b in hugo_pairs]
        rows += [EavRow(a, "GO", b) for a, b in go_pairs]
        with GenMapper() as gm:
            gm.integrate_dataset(EavDataset("S", rows))
            if not rows:
                return
            targets = ["Hugo", TargetSpec.of("GO", negated=negate_go)]
            try:
                memory = gm.generate_view(
                    "S", targets, combine=combine, engine="memory"
                )
                sql = gm.generate_view(
                    "S", targets, combine=combine, engine="sql"
                )
            except Exception as exc:
                from repro.gam.errors import GenMapperError

                assert isinstance(exc, GenMapperError)
                return
            assert set(sql.rows) == set(memory.rows)
