"""Tests for the observability subsystem: spans, metrics, middleware."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    get_tracer,
    route_template,
    set_tracer,
    traced,
)
from repro.obs.metrics import Histogram, _label_key


@pytest.fixture()
def tracer():
    """An enabled tracer feeding an isolated registry."""
    return Tracer(enabled=True, registry=MetricsRegistry())


class TestSpanNesting:
    def test_children_nest_under_active_span(self, tracer):
        with tracer.span("parent") as parent:
            with tracer.span("child.a"):
                pass
            with tracer.span("child.b") as child_b:
                with tracer.span("grandchild"):
                    pass
        roots = tracer.finished
        assert [root.name for root in roots] == ["parent"]
        assert [child.name for child in parent.children] == ["child.a", "child.b"]
        assert [child.name for child in child_b.children] == ["grandchild"]

    def test_walk_is_preorder_with_depths(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        (root,) = tracer.finished
        assert [(d, s.name) for d, s in root.walk()] == [(0, "a"), (1, "b"), (2, "c")]

    def test_sequential_roots_do_not_nest(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.finished] == ["first", "second"]

    def test_durations_are_monotonic(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                sum(range(1000))
        assert outer.duration >= inner.duration >= 0.0

    def test_tags_from_call_and_tag_method(self, tracer):
        with tracer.span("op", source="GO") as span:
            span.tag(rows=42)
        assert span.tags == {"source": "GO", "rows": 42}

    def test_threads_build_independent_trees(self, tracer):
        def work(name):
            with tracer.span(name):
                with tracer.span(f"{name}.child"):
                    pass

        threads = [threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)]
        with tracer.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        roots = {root.name for root in tracer.finished}
        # Threads start fresh contexts, so their spans are roots, not
        # children of "main".
        assert roots == {"main", "t0", "t1", "t2", "t3"}
        main = next(r for r in tracer.finished if r.name == "main")
        assert main.children == []

    def test_max_finished_caps_retention(self):
        tracer = Tracer(enabled=True, max_finished=3, registry=MetricsRegistry())
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert [root.name for root in tracer.finished] == ["s7", "s8", "s9"]


class TestSpanExceptions:
    def test_exception_marks_error_and_reraises(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                raise ValueError("boom")
        (root,) = tracer.finished
        assert root.status == "error"
        assert root.error == "ValueError: boom"
        assert root.duration > 0.0

    def test_parent_survives_child_exception(self, tracer):
        with tracer.span("parent") as parent:
            with pytest.raises(KeyError):
                with tracer.span("child"):
                    raise KeyError("gone")
            with tracer.span("sibling"):
                pass
        assert parent.status == "ok"
        assert [c.name for c in parent.children] == ["child", "sibling"]
        assert parent.children[0].status == "error"


class TestDisabledTracer:
    def test_disabled_span_records_nothing(self):
        tracer = Tracer(enabled=False, registry=MetricsRegistry())
        with tracer.span("ignored", key="value") as span:
            span.tag(more="tags")
        assert tracer.finished == []

    def test_traced_decorator_passthrough_when_disabled(self):
        tracer = Tracer(enabled=False, registry=MetricsRegistry())

        @traced("custom.name", tracer=tracer)
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert tracer.finished == []

    def test_traced_decorator_records_when_enabled(self, tracer):
        @traced("custom.name", tracer=tracer, kind="test")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        (root,) = tracer.finished
        assert root.name == "custom.name"
        assert root.tags == {"kind": "test"}

    def test_traced_default_name_from_function(self, tracer):
        @traced(tracer=tracer)
        def my_function():
            return None

        my_function()
        (root,) = tracer.finished
        assert root.name.endswith("my_function")

    def test_set_tracer_swaps_process_default(self):
        replacement = Tracer(enabled=True, registry=MetricsRegistry())
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestSpanMetricsFeedback:
    def test_finished_spans_observe_into_registry(self, tracer):
        with tracer.span("stage.one"):
            with tracer.span("stage.two"):
                pass
        timings = tracer.registry.stage_timings()
        assert set(timings) == {"stage.one", "stage.two"}
        assert timings["stage.one"]["count"] == 1

    def test_export_jsonl_roundtrip(self, tracer, tmp_path):
        with tracer.span("root", source="GO"):
            with tracer.span("leaf"):
                pass
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(path) == 2
        records = [json.loads(line) for line in path.read_text().splitlines()]
        by_name = {record["name"]: record for record in records}
        assert by_name["root"]["parent_id"] is None
        assert by_name["leaf"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["root"]["trace_id"] == by_name["leaf"]["trace_id"]
        assert by_name["root"]["tags"] == {"source": "GO"}

    def test_render_tree_lists_all_spans(self, tracer):
        with tracer.span("outer", n=3):
            with tracer.span("inner"):
                pass
        rendered = tracer.render_tree()
        assert "outer" in rendered and "inner" in rendered and "n=3" in rendered
        assert tracer.render_tree([]) == "(no spans recorded)"


class TestHistogram:
    def test_percentiles_from_uniform_values(self):
        histogram = Histogram(buckets=(1.0, 2.0, 3.0, 4.0, 5.0))
        for value in range(1, 101):  # 0.05, 0.10, ... 5.0
            histogram.observe(value / 20)
        # Exact percentiles of the sample: p50 = 2.5, p95 = 4.75.
        assert histogram.percentile(0.50) == pytest.approx(2.5, abs=0.25)
        assert histogram.percentile(0.95) == pytest.approx(4.75, abs=0.25)
        assert histogram.percentile(0.99) <= 5.0

    def test_overflow_bucket_capped_by_observed_max(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(50.0)
        histogram.observe(60.0)
        assert histogram.percentile(0.99) <= 60.0
        summary = histogram.summary()
        assert summary["max"] == 60.0
        assert summary["count"] == 2

    def test_summary_of_empty_histogram(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["p95"] is None

    def test_summary_statistics(self):
        histogram = Histogram(buckets=(10.0,))
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(6.0)
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_invalid_buckets_and_quantiles_raise(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram().percentile(0.0)


class TestMetricsRegistry:
    def test_counters_are_get_or_create(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.snapshot()["counters"]["hits"] == 3.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("hits").inc(-1)

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        registry.counter("req", route="/a").inc()
        registry.counter("req", route="/b").inc(5)
        counters = registry.snapshot()["counters"]
        assert counters["req{route=/a}"] == 1.0
        assert counters["req{route=/b}"] == 5.0

    def test_label_key_is_order_insensitive(self):
        assert _label_key("m", {"b": "2", "a": "1"}) == "m{a=1,b=2}"

    def test_gauge_up_and_down(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("in_flight")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert registry.snapshot()["gauges"]["in_flight"] == 1.0
        gauge.set(7.0)
        assert registry.snapshot()["gauges"]["in_flight"] == 7.0

    def test_snapshot_is_isolated_from_registry(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.1)
        snapshot = registry.snapshot()
        # Mutating the snapshot must not touch the registry...
        snapshot["counters"]["c"] = 999.0
        snapshot["histograms"]["h"]["count"] = 999
        assert registry.snapshot()["counters"]["c"] == 1.0
        assert registry.snapshot()["histograms"]["h"]["count"] == 1
        # ...and later registry writes must not appear in the old snapshot.
        registry.counter("c").inc(10)
        assert snapshot["counters"]["c"] == 999.0

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_stage_timings_strips_prefix(self):
        registry = MetricsRegistry()
        registry.histogram("span.query.run").observe(0.2)
        registry.histogram("other").observe(0.2)
        timings = registry.stage_timings()
        assert list(timings) == ["query.run"]

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended")

        def hammer():
            for __ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for __ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestRouteTemplate:
    @pytest.mark.parametrize(
        ("path", "template"),
        [
            ("/", "/"),
            ("/sources", "/sources"),
            ("/sources/GO", "/sources/{name}"),
            ("/sources/GO/objects", "/sources/{name}/objects"),
            ("/objects/LocusLink/353", "/objects/{source}/{accession}"),
            ("/map", "/map"),
            ("/paths", "/paths"),
            ("/stats", "/stats"),
            ("/metrics", "/metrics"),
            ("/health", "/health"),
            ("/query", "/query"),
            ("/query/explain", "/query/explain"),
            ("/favicon.ico", "/{unknown}"),
            ("/sources/a/b/c/d", "/{unknown}"),
        ],
    )
    def test_templates(self, path, template):
        assert route_template("GET", path) == template


class TestDisabledPathOverhead:
    def test_event_helpers_stay_under_a_microsecond_without_a_scope(self):
        """With no wide-event scope open, the annotation helpers must cost
        roughly one ContextVar read — well under a microsecond per call."""
        import time

        from repro.obs import annotate_event, current_event, incr_event, record_sql

        assert current_event() is None

        def per_call(fn, *args, iterations=20_000):
            best = float("inf")
            for __ in range(5):
                start = time.perf_counter()
                for __ in range(iterations):
                    fn(*args)
                best = min(best, time.perf_counter() - start)
            return best / iterations

        assert per_call(incr_event, "retries") < 1e-6
        assert per_call(annotate_event) < 1e-6
        assert per_call(record_sql, "SELECT 1", 0) < 1e-6


class TestInstrumentedPaths:
    def test_traced_integration_and_view_cover_all_stages(self, universe_dir):
        """A traced demo-universe run shows parse→import→compose→view."""
        from repro.core.genmapper import GenMapper

        replacement = Tracer(enabled=True, registry=MetricsRegistry())
        previous = set_tracer(replacement)
        try:
            with GenMapper() as gm:
                gm.integrate_directory(universe_dir)
                gm.generate_view("NetAffx", targets=["OMIM"])
        finally:
            set_tracer(previous)
        names = {
            span.name
            for root in replacement.finished
            for __, span in root.walk()
        }
        assert {
            "pipeline.integrate_directory",
            "pipeline.integrate_file",
            "pipeline.parse",
            "pipeline.import",
            "operator.generate_view",
            "operator.compose",
            "pathfinder.shortest_path",
        } <= names
        timings = replacement.registry.stage_timings()
        assert timings["pipeline.parse"]["count"] > 0

    def test_import_counters_recorded(self, universe_dir):
        from repro.core.genmapper import GenMapper
        from repro.obs import get_registry

        before = (
            get_registry()
            .snapshot()["counters"]
            .get("pipeline_objects_imported_total", 0.0)
        )
        with GenMapper() as gm:
            gm.integrate_directory(universe_dir)
        after = get_registry().snapshot()["counters"][
            "pipeline_objects_imported_total"
        ]
        assert after > before
