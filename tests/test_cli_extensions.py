"""Tests for the extended CLI commands: coverage, match, diff,
delete-source (explain is covered in test_query_plan)."""

import pytest

from repro.cli import main
from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD, UNIGENE_MINI


@pytest.fixture()
def db_path(tmp_path):
    db = tmp_path / "gam.db"
    for name, content, source in (
        ("ll.txt", LOCUS_353_RECORD, "LocusLink"),
        ("go.obo", GO_MINI_OBO, "GO"),
        ("ug.data", UNIGENE_MINI, "Unigene"),
    ):
        path = tmp_path / name
        path.write_text(content)
        assert main(["--db", str(db), "import", str(path),
                     "--source", source]) == 0
    return db


class TestCoverageCommand:
    def test_reports_targets(self, db_path, capsys):
        assert main(["--db", str(db_path), "coverage", "LocusLink"]) == 0
        out = capsys.readouterr().out
        assert "GO" in out
        assert "100.0%" in out

    def test_unknown_source_errors(self, db_path, capsys):
        assert main(["--db", str(db_path), "coverage", "Nope"]) == 1
        assert "error:" in capsys.readouterr().err


class TestMatchCommand:
    def test_match_reports_mapping(self, db_path, capsys):
        code = main(["--db", str(db_path), "match", "LocusLink", "Unigene",
                     "--threshold", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "LocusLink" in out and "Unigene" in out

    def test_match_materializes(self, db_path, capsys):
        code = main(["--db", str(db_path), "match", "LocusLink", "Unigene",
                     "--threshold", "1.0", "--materialize"])
        assert code == 0
        assert "materialized" in capsys.readouterr().out


class TestDiffCommand:
    def test_diff_detects_new_locus(self, db_path, tmp_path, capsys):
        new_release = tmp_path / "ll_new.txt"
        new_release.write_text(
            LOCUS_353_RECORD + ">>999\nOFFICIAL_SYMBOL: NEW1\n"
        )
        code = main(["--db", str(db_path), "diff", str(new_release),
                     "--source", "LocusLink", "--release", "2004-01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "+1 entities" in out
        assert "999" in out

    def test_diff_identical_release(self, db_path, tmp_path, capsys):
        same = tmp_path / "ll_same.txt"
        same.write_text(LOCUS_353_RECORD)
        code = main(["--db", str(db_path), "diff", str(same),
                     "--source", "LocusLink"])
        assert code == 0
        assert "no changes" in capsys.readouterr().out


class TestDeleteSourceCommand:
    def test_delete_reports_counts(self, db_path, capsys):
        code = main(["--db", str(db_path), "delete-source", "OMIM"])
        assert code == 0
        out = capsys.readouterr().out
        assert "deleted OMIM" in out

    def test_delete_with_prune(self, db_path, capsys):
        code = main(["--db", str(db_path), "delete-source", "LocusLink",
                     "--prune"])
        assert code == 0
        assert "pruned" in capsys.readouterr().out

    def test_deleted_source_gone(self, db_path, capsys):
        main(["--db", str(db_path), "delete-source", "OMIM"])
        capsys.readouterr()
        assert main(["--db", str(db_path), "sources"]) == 0
        assert "OMIM" not in capsys.readouterr().out


class TestDumpLoadCommands:
    def test_dump_then_load(self, db_path, tmp_path, capsys):
        dump_file = tmp_path / "dump.jsonl"
        assert main(["--db", str(db_path), "dump", str(dump_file)]) == 0
        assert "dumped" in capsys.readouterr().out
        other_db = tmp_path / "other.db"
        assert main(["--db", str(other_db), "load", str(dump_file)]) == 0
        out = capsys.readouterr().out
        assert "loaded" in out
        # The restored database answers the same query.
        assert main(["--db", str(other_db), "map", "LocusLink", "GO"]) == 0
        assert "353\tGO:0009116" in capsys.readouterr().out
