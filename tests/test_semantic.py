"""Tests for semantic similarity over taxonomies (repro.taxonomy.semantic)."""

import math

import pytest

from repro.operators.mapping import Mapping
from repro.taxonomy.dag import Taxonomy
from repro.taxonomy.semantic import SemanticIndex


@pytest.fixture()
def taxonomy():
    r"""            root
                  /      \
             metabolism  signaling
              /     \
          purine   lipid
    """
    return Taxonomy(
        [
            ("metabolism", "root"),
            ("signaling", "root"),
            ("purine", "metabolism"),
            ("lipid", "metabolism"),
        ]
    )


@pytest.fixture()
def annotation():
    """8 genes: 2x purine, 2x lipid, 4x signaling."""
    pairs = (
        [("g1", "purine"), ("g2", "purine")]
        + [("g3", "lipid"), ("g4", "lipid")]
        + [(f"g{i}", "signaling") for i in range(5, 9)]
    )
    return Mapping.build("Gene", "GO", pairs)


@pytest.fixture()
def index(taxonomy, annotation):
    return SemanticIndex(taxonomy, annotation)


class TestInformationContent:
    def test_corpus_size(self, index):
        assert index.corpus_size == 8

    def test_rollup_counts(self, index):
        assert index.annotation_count("purine") == 2
        assert index.annotation_count("metabolism") == 4
        assert index.annotation_count("root") == 8

    def test_root_carries_no_information(self, index):
        assert index.information_content("root") == 0.0

    def test_specific_terms_more_informative(self, index):
        assert index.information_content("purine") > index.information_content(
            "metabolism"
        )

    def test_exact_values(self, index):
        assert index.information_content("purine") == pytest.approx(
            -math.log2(2 / 8)
        )
        assert index.information_content("metabolism") == pytest.approx(
            -math.log2(4 / 8)
        )

    def test_unannotated_term_zero(self, index):
        assert index.information_content("never-seen") == 0.0


class TestTermSimilarity:
    def test_mica_of_siblings(self, index):
        assert index.most_informative_common_ancestor(
            "purine", "lipid"
        ) == "metabolism"

    def test_mica_includes_self(self, index):
        assert index.most_informative_common_ancestor(
            "purine", "purine"
        ) == "purine"

    def test_mica_across_branches_is_root(self, index):
        assert index.most_informative_common_ancestor(
            "purine", "signaling"
        ) == "root"

    def test_unknown_term_has_no_mica(self, index):
        assert index.most_informative_common_ancestor("purine", "zzz") is None

    def test_resnik_siblings_share_parent_ic(self, index):
        assert index.resnik("purine", "lipid") == pytest.approx(
            index.information_content("metabolism")
        )

    def test_resnik_across_branches_zero(self, index):
        # Their only common ancestor is the root, which has IC 0.
        assert index.resnik("purine", "signaling") == 0.0

    def test_lin_identity_is_one(self, index):
        assert index.lin("purine", "purine") == pytest.approx(1.0)

    def test_lin_bounded(self, index):
        for t1 in ("purine", "lipid", "signaling", "metabolism"):
            for t2 in ("purine", "lipid", "signaling", "metabolism"):
                assert 0.0 <= index.lin(t1, t2) <= 1.0

    def test_lin_symmetric(self, index):
        assert index.lin("purine", "lipid") == pytest.approx(
            index.lin("lipid", "purine")
        )


class TestGeneSimilarity:
    def test_same_term_genes_score_one(self, index):
        assert index.gene_similarity("g1", "g2") == pytest.approx(1.0)

    def test_sibling_term_genes_score_between(self, index):
        score = index.gene_similarity("g1", "g3")  # purine vs lipid
        assert 0.0 < score < 1.0

    def test_cross_branch_genes_score_zero(self, index):
        assert index.gene_similarity("g1", "g5") == 0.0

    def test_symmetric(self, index):
        assert index.gene_similarity("g1", "g3") == pytest.approx(
            index.gene_similarity("g3", "g1")
        )

    def test_unannotated_gene_zero(self, index):
        assert index.gene_similarity("g1", "ghost") == 0.0

    def test_most_similar_genes_ranking(self, index):
        ranking = index.most_similar_genes("g1", k=3)
        assert ranking[0] == ("g2", pytest.approx(1.0))
        names = [name for name, __ in ranking]
        assert "g3" in names or "g4" in names

    def test_most_similar_respects_candidates(self, index):
        ranking = index.most_similar_genes("g1", candidates=["g5", "g6"], k=5)
        assert {name for name, __ in ranking} == {"g5", "g6"}


class TestOverUniverse:
    def test_index_builds_over_generated_go(self, loaded_genmapper):
        taxonomy = loaded_genmapper.taxonomy("GO")
        annotation = loaded_genmapper.map("LocusLink", "GO")
        index = SemanticIndex(taxonomy, annotation)
        assert index.corpus_size == len(annotation.domain())
        some_term = next(iter(annotation.range()))
        assert index.information_content(some_term) > 0.0

    def test_genes_sharing_terms_are_similar(self, loaded_genmapper, universe):
        taxonomy = loaded_genmapper.taxonomy("GO")
        annotation = loaded_genmapper.map("LocusLink", "GO")
        index = SemanticIndex(taxonomy, annotation)
        by_term: dict[str, list[str]] = {}
        for gene in universe.genes:
            for term in gene.go_terms:
                by_term.setdefault(term, []).append(gene.locus)
        shared = next(genes for genes in by_term.values() if len(genes) >= 2)
        assert index.gene_similarity(shared[0], shared[1]) > 0.0
