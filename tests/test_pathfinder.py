"""Tests for the source graph and mapping-path search (Section 5.1)."""

import pytest

from repro.gam.enums import RelType
from repro.gam.errors import PathNotFoundError, QuerySpecError
from repro.pathfinder.graph import build_source_graph, connectivity_summary
from repro.pathfinder.saved import PathRegistry
from repro.pathfinder.search import (
    k_shortest_paths,
    path_cost,
    shortest_path,
    shortest_path_via,
    validate_path,
)


@pytest.fixture()
def graph(loaded_genmapper):
    return build_source_graph(loaded_genmapper.repository)


class TestGraphConstruction:
    def test_every_source_is_a_node(self, loaded_genmapper, graph):
        names = {source.name for source in loaded_genmapper.sources()}
        assert set(graph.nodes) == names

    def test_edges_carry_rel_type_and_size(self, graph):
        data = graph.get_edge_data("LocusLink", "GO")
        assert data is not None
        for attrs in data.values():
            assert attrs["rel_type"] is RelType.FACT
            assert attrs["size"] > 0

    def test_structural_rels_are_not_edges(self, graph):
        # Contains relationships (GO -> partitions) are not mapping edges.
        assert not graph.has_edge("GO", "GO.BiologicalProcess")

    def test_connectivity_summary_keys(self, graph):
        summary = connectivity_summary(graph)
        assert summary["sources"] == graph.number_of_nodes()
        assert summary["connected_components"] >= 1
        assert summary["largest_component"] >= 2


class TestShortestPath:
    def test_direct_mapping_is_one_hop(self, graph):
        assert shortest_path(graph, "LocusLink", "GO") == ("LocusLink", "GO")

    def test_paper_example_unigene_to_go(self, paper_genmapper):
        graph = build_source_graph(paper_genmapper.repository)
        path = shortest_path(graph, "Unigene", "GO")
        assert path == ("Unigene", "LocusLink", "GO")

    def test_same_source_is_trivial_path(self, graph):
        assert shortest_path(graph, "GO", "GO") == ("GO",)

    def test_unknown_source_raises(self, graph):
        with pytest.raises(PathNotFoundError):
            shortest_path(graph, "Nope", "GO")

    def test_disconnected_target_raises(self, graph):
        # Partition sources are only linked by Contains (not a mapping).
        with pytest.raises(PathNotFoundError):
            shortest_path(graph, "LocusLink", "GO.BiologicalProcess")


class TestViaAndAlternatives:
    def test_via_forces_intermediate(self, graph):
        path = shortest_path_via(graph, "NetAffx", "GO", via="Unigene")
        assert "Unigene" in path
        assert path[0] == "NetAffx"
        assert path[-1] == "GO"

    def test_via_intermediate_appears_once(self, graph):
        path = shortest_path_via(graph, "NetAffx", "GO", via="LocusLink")
        assert path.count("LocusLink") == 1

    def test_k_shortest_returns_cheapest_first(self, graph):
        paths = k_shortest_paths(graph, "NetAffx", "GO", k=3)
        assert len(paths) >= 2
        costs = [path_cost(graph, path) for path in paths]
        assert costs == sorted(costs)

    def test_k_shortest_paths_are_distinct(self, graph):
        paths = k_shortest_paths(graph, "NetAffx", "GO", k=4)
        assert len(set(paths)) == len(paths)


class TestPathCostAndValidation:
    def test_fact_edges_cost_one(self, graph):
        assert path_cost(graph, ("LocusLink", "GO")) == pytest.approx(1.0)

    def test_validate_accepts_stored_hops(self, graph):
        assert validate_path(graph, ["NetAffx", "LocusLink", "GO"]) == (
            "NetAffx", "LocusLink", "GO",
        )

    def test_validate_rejects_missing_hop(self, graph):
        with pytest.raises(PathNotFoundError):
            validate_path(graph, ["NetAffx", "OMIM", "GO"])

    def test_validate_rejects_single_source(self, graph):
        with pytest.raises(PathNotFoundError):
            validate_path(graph, ["NetAffx"])


class TestSavedPaths:
    @pytest.fixture()
    def registry(self, paper_genmapper):
        return PathRegistry(paper_genmapper.db)

    def test_save_and_load(self, registry):
        registry.save("to-go", ("Unigene", "LocusLink", "GO"))
        assert registry.load("to-go") == ("Unigene", "LocusLink", "GO")

    def test_save_overwrites(self, registry):
        registry.save("p", ("A", "B"))
        registry.save("p", ("A", "C"))
        assert registry.load("p") == ("A", "C")

    def test_names_listed_sorted(self, registry):
        registry.save("zeta", ("A", "B"))
        registry.save("alpha", ("A", "B"))
        assert registry.names() == ["alpha", "zeta"]

    def test_delete(self, registry):
        registry.save("p", ("A", "B"))
        assert registry.delete("p") is True
        assert registry.delete("p") is False
        assert registry.names() == []

    def test_load_unknown_raises(self, registry):
        with pytest.raises(QuerySpecError, match="saved path"):
            registry.load("nope")

    def test_short_path_rejected(self, registry):
        with pytest.raises(QuerySpecError, match="two sources"):
            registry.save("p", ("A",))

    def test_validating_save_rejects_invalid(self, paper_genmapper, registry):
        graph = build_source_graph(paper_genmapper.repository)
        with pytest.raises(PathNotFoundError):
            registry.save("bad", ("Unigene", "GO"), graph=graph)

    def test_persists_across_registry_instances(self, paper_genmapper):
        PathRegistry(paper_genmapper.db).save("keep", ("A", "B"))
        assert PathRegistry(paper_genmapper.db).load("keep") == ("A", "B")
