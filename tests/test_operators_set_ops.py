"""Tests for the mapping set algebra (union / intersection / difference)."""

import pytest

from repro.gam.enums import RelType
from repro.operators.mapping import Mapping
from repro.operators.set_ops import difference, intersection, union


@pytest.fixture()
def curated():
    return Mapping.build(
        "A", "B", [("a1", "b1", 1.0), ("a2", "b2", 1.0)], RelType.FACT
    )


@pytest.fixture()
def computed():
    return Mapping.build(
        "A", "B", [("a1", "b1", 0.6), ("a3", "b3", 0.7)], RelType.SIMILARITY
    )


class TestUnion:
    def test_contains_all_pairs(self, curated, computed):
        merged = union(curated, computed)
        assert merged.pair_set() == {("a1", "b1"), ("a2", "b2"), ("a3", "b3")}

    def test_takes_maximum_evidence(self, curated, computed):
        merged = union(curated, computed)
        evidence = {
            (a.source_accession, a.target_accession): a.evidence for a in merged
        }
        assert evidence[("a1", "b1")] == pytest.approx(1.0)
        assert evidence[("a3", "b3")] == pytest.approx(0.7)

    def test_mixed_types_marked_composed(self, curated, computed):
        assert union(curated, computed).rel_type is RelType.COMPOSED

    def test_same_types_preserved(self, curated):
        assert union(curated, curated).rel_type is RelType.FACT

    def test_is_commutative(self, curated, computed):
        assert union(curated, computed).pair_set() == union(
            computed, curated
        ).pair_set()


class TestIntersection:
    def test_keeps_shared_pairs_only(self, curated, computed):
        consensus = intersection(curated, computed)
        assert consensus.pair_set() == {("a1", "b1")}

    def test_takes_minimum_evidence(self, curated, computed):
        consensus = intersection(curated, computed)
        assert consensus.associations[0].evidence == pytest.approx(0.6)

    def test_empty_when_disjoint(self, curated):
        other = Mapping.build("A", "B", [("x", "y")])
        assert intersection(curated, other).is_empty()


class TestDifference:
    def test_removes_right_pairs(self, curated, computed):
        remaining = difference(curated, computed)
        assert remaining.pair_set() == {("a2", "b2")}

    def test_keeps_left_type(self, curated, computed):
        assert difference(curated, computed).rel_type is RelType.FACT

    def test_difference_with_self_is_empty(self, curated):
        assert difference(curated, curated).is_empty()


class TestEndpointChecks:
    def test_mismatched_endpoints_rejected(self, curated):
        other = Mapping.build("A", "C", [("a1", "c1")])
        for operation in (union, intersection, difference):
            with pytest.raises(ValueError, match="different sources"):
                operation(curated, other)
