"""Concurrent web smoke test — the regression net for the pooled storage
layer: a threaded server over an on-disk WAL database must serve
overlapping read requests correctly from many client threads."""

import json
import threading
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.genmapper import GenMapper
from repro.web.app import create_app
from repro.web.server import ThreadingWSGIServer, make_threading_server

N_CLIENT_THREADS = 6
REQUESTS_PER_THREAD = 4


@pytest.fixture(scope="module")
def disk_genmapper(tmp_path_factory, universe_dir):
    """The synthetic universe on disk (WAL), shared by the whole module."""
    path = tmp_path_factory.mktemp("webconc") / "gam.db"
    gm = GenMapper(path, pool_size=4)
    gm.integrate_directory(universe_dir)
    yield gm
    gm.close()


@pytest.fixture()
def server(disk_genmapper):
    app = create_app(disk_genmapper)
    with make_threading_server("127.0.0.1", 0, app, quiet=True) as srv:
        assert isinstance(srv, ThreadingWSGIServer)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{srv.server_address[1]}"
        srv.shutdown()
        thread.join(5)


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def _post(base, path, body):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def test_overlapping_query_and_map_requests(server):
    """N threads firing mixed /query + /map + /sources requests: every
    response is a 200 and repeated queries return identical row counts."""
    base = server
    __, reference_map = _get(base, "/map?source=LocusLink&target=GO")
    __, reference_query = _post(
        base, "/query", {"query": "ANNOTATE LocusLink WITH Hugo AND GO"}
    )
    assert reference_query["row_count"] > 0
    assert len(reference_map["associations"]) > 0

    def client(worker_id):
        outcomes = []
        for i in range(REQUESTS_PER_THREAD):
            if (worker_id + i) % 3 == 0:
                status, payload = _get(base, "/map?source=LocusLink&target=GO")
                outcomes.append(
                    (status, ("map", len(payload["associations"])))
                )
            elif (worker_id + i) % 3 == 1:
                status, payload = _post(
                    base,
                    "/query",
                    {"query": "ANNOTATE LocusLink WITH Hugo AND GO"},
                )
                outcomes.append((status, ("query", payload["row_count"])))
            else:
                status, payload = _get(base, "/sources")
                outcomes.append(
                    (status, ("sources", len(payload["sources"])))
                )
        return outcomes

    with ThreadPoolExecutor(max_workers=N_CLIENT_THREADS) as executor:
        all_outcomes = [
            outcome
            for future in [
                executor.submit(client, n) for n in range(N_CLIENT_THREADS)
            ]
            for outcome in future.result()
        ]

    assert len(all_outcomes) == N_CLIENT_THREADS * REQUESTS_PER_THREAD
    assert {status for status, _ in all_outcomes} == {200}
    # Consistent results across all threads: every map saw the same
    # association count, every query the same row count.
    map_counts = {v for s, (kind, v) in all_outcomes if kind == "map"}
    query_counts = {v for s, (kind, v) in all_outcomes if kind == "query"}
    assert map_counts == {len(reference_map["associations"])}
    assert query_counts == {reference_query["row_count"]}


def test_cold_cache_stampede_loads_once(tmp_path, universe_dir):
    """Concurrent identical /map requests against a cold cache must run
    the underlying database load exactly once (single-flight) and return
    identical payloads.  Builds its own cache-enabled server so the test
    also holds under the CI ``REPRO_CACHE=off`` guard run."""
    gm = GenMapper(tmp_path / "gam.db", pool_size=4, enable_cache=True)
    gm.integrate_directory(universe_dir)
    calls = []
    original = gm._map_uncached

    def counting(*args, **kwargs):
        calls.append(1)
        return original(*args, **kwargs)

    gm._map_uncached = counting
    app = create_app(gm)
    try:
        with make_threading_server("127.0.0.1", 0, app, quiet=True) as srv:
            thread = threading.Thread(target=srv.serve_forever, daemon=True)
            thread.start()
            base = f"http://127.0.0.1:{srv.server_address[1]}"
            try:
                with ThreadPoolExecutor(
                    max_workers=N_CLIENT_THREADS
                ) as executor:
                    results = list(
                        executor.map(
                            lambda _: _get(
                                base, "/map?source=NetAffx&target=GO"
                            ),
                            range(N_CLIENT_THREADS),
                        )
                    )
            finally:
                srv.shutdown()
                thread.join(5)
        stats = gm.cache_stats()
    finally:
        gm.close()
    assert {status for status, __ in results} == {200}
    counts = {len(payload["associations"]) for __, payload in results}
    assert len(counts) == 1
    assert len(calls) == 1
    assert stats["hits"] >= N_CLIENT_THREADS - 1


def test_health_under_concurrent_load(server):
    base = server

    def probe(_):
        status, payload = _get(base, "/health")
        return status, payload["status"]

    with ThreadPoolExecutor(max_workers=4) as executor:
        results = list(executor.map(probe, range(12)))
    assert results == [(200, "ok")] * 12
