"""Tests for the Parse-then-Import orchestration pipeline."""

import pytest

from repro.eav.io import write_eav
from repro.eav.model import EavRow
from repro.eav.store import EavDataset
from repro.gam.database import GamDatabase
from repro.gam.errors import ImportError_, ParseError
from repro.gam.repository import GamRepository
from repro.importer.pipeline import (
    IntegrationPipeline,
    ManifestEntry,
    read_manifest,
    write_manifest,
)
from repro.parsers.generic_tsv import GenericTsvParser
from tests.conftest import LOCUS_353_RECORD


@pytest.fixture()
def pipeline():
    db = GamDatabase()
    yield IntegrationPipeline(GamRepository(db))
    db.close()


class TestIntegrateFile:
    def test_parses_and_imports_by_source_name(self, pipeline, tmp_path):
        path = tmp_path / "ll.txt"
        path.write_text(LOCUS_353_RECORD)
        report = pipeline.integrate_file(path, source_name="LocusLink",
                                         release="r1")
        assert report.source.name == "LocusLink"
        assert report.source.release == "r1"
        assert report.new_objects == 1

    def test_explicit_parser_instance(self, pipeline, tmp_path):
        path = tmp_path / "vendor.tsv"
        path.write_text("id\tGO\np1\tGO:1\n")
        parser = GenericTsvParser("VendorX", content="Gene")
        report = pipeline.integrate_file(path, parser=parser)
        assert report.source.name == "VendorX"

    def test_needs_source_name_or_parser(self, pipeline, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("")
        with pytest.raises(ImportError_, match="source_name or a parser"):
            pipeline.integrate_file(path)

    def test_integrate_eav_file(self, pipeline, tmp_path):
        dataset = EavDataset("Staged", [EavRow("1", "Hugo", "A")])
        path = tmp_path / "staged.eav"
        write_eav(dataset, path)
        report = pipeline.integrate_eav_file(path)
        assert report.source.name == "Staged"


class TestManifest:
    def test_round_trip(self, tmp_path):
        entries = [
            ManifestEntry("ll.txt", "LocusLink", "2003-10"),
            ManifestEntry("go.obo", "GO", None),
        ]
        path = tmp_path / "manifest.tsv"
        write_manifest(path, entries)
        assert read_manifest(path) == entries

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ImportError_, match="manifest"):
            read_manifest(tmp_path / "nope.tsv")

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "manifest.tsv"
        path.write_text("onlyonefield\n")
        with pytest.raises(ParseError):
            read_manifest(path)

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "manifest.tsv"
        path.write_text("# comment\nll.txt\tLocusLink\t\n")
        entries = read_manifest(path)
        assert entries == [ManifestEntry("ll.txt", "LocusLink", None)]


class TestIntegrateDirectory:
    def test_imports_all_listed_sources(self, pipeline, tmp_path):
        (tmp_path / "ll.txt").write_text(LOCUS_353_RECORD)
        (tmp_path / "hugo.tsv").write_text("symbol\tlocuslink\nAPRT\t353\n")
        write_manifest(
            tmp_path / "manifest.tsv",
            [
                ManifestEntry("ll.txt", "LocusLink", "r1"),
                ManifestEntry("hugo.tsv", "Hugo", "r1"),
            ],
        )
        reports = pipeline.integrate_directory(tmp_path)
        assert [report.source.name for report in reports] == ["LocusLink", "Hugo"]

    def test_missing_file_rejected(self, pipeline, tmp_path):
        write_manifest(
            tmp_path / "manifest.tsv", [ManifestEntry("ghost.txt", "LocusLink")]
        )
        with pytest.raises(ImportError_, match="missing file"):
            pipeline.integrate_directory(tmp_path)
