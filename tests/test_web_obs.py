"""Tests for the web observability surface: /metrics, /health, request IDs,
middleware accounting, and explain stage timings."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import MetricsRegistry, Tracer, set_tracer
from repro.web.app import create_app


def call(app, method, path, query="", body=None, headers=None):
    """Invoke a WSGI app directly; returns (status, headers, decoded json)."""
    raw = json.dumps(body).encode() if body is not None else b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    if headers:
        environ.update(headers)
    captured = {}

    def start_response(status, response_headers, exc_info=None):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    chunks = app(environ, start_response)
    payload = json.loads(b"".join(chunks).decode("utf-8"))
    return captured["status"], captured["headers"], payload


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def app(paper_genmapper, registry):
    """App with an isolated registry and a disabled (isolated) tracer."""
    return create_app(
        paper_genmapper,
        registry=registry,
        tracer=Tracer(enabled=False, registry=registry),
    )


class TestHealthEndpoint:
    def test_health_reports_ok_and_sources(self, app):
        status, headers, payload = call(app, "GET", "/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["sources"] > 0
        assert payload["request_id"] == headers["X-Request-ID"]


class TestMetricsEndpoint:
    def test_metrics_empty_before_traffic(self, paper_genmapper):
        registry = MetricsRegistry()
        app = create_app(
            paper_genmapper,
            registry=registry,
            tracer=Tracer(enabled=False, registry=registry),
        )
        __, __, payload = call(app, "GET", "/metrics")
        # The /metrics request itself is only accounted after it responds.
        assert payload["counters"] == {}

    def test_metrics_reflect_live_traffic(self, app):
        call(app, "GET", "/sources")
        call(app, "GET", "/sources")
        call(app, "GET", "/sources/GO")
        call(app, "GET", "/nope")
        __, __, payload = call(app, "GET", "/metrics")
        counters = payload["counters"]
        assert counters["http_requests_total{method=GET,route=/sources,status=200}"] == 2.0
        assert counters["http_requests_total{method=GET,route=/sources/{name},status=200}"] == 1.0
        assert counters["http_requests_total{method=GET,route=/{unknown},status=404}"] == 1.0
        histograms = payload["histograms"]
        assert histograms["http_request_seconds{route=/sources}"]["count"] == 2
        assert histograms["http_request_seconds{route=/sources}"]["p95"] is not None

    def test_error_statuses_are_counted(self, app, registry):
        call(app, "GET", "/sources/NoSuchSource")
        counters = registry.snapshot()["counters"]
        assert (
            counters["http_requests_total{method=GET,route=/sources/{name},status=400}"]
            == 1.0
        )

    def test_in_flight_gauge_returns_to_zero(self, app, registry):
        call(app, "GET", "/sources")
        assert registry.snapshot()["gauges"]["http_requests_in_flight"] == 0.0


class TestRequestIds:
    def test_every_response_carries_a_request_id(self, app):
        __, first_headers, __ = call(app, "GET", "/stats")
        __, second_headers, __ = call(app, "GET", "/stats")
        assert first_headers["X-Request-ID"]
        assert second_headers["X-Request-ID"]
        assert first_headers["X-Request-ID"] != second_headers["X-Request-ID"]

    def test_incoming_request_id_propagates(self, app):
        __, headers, __ = call(
            app, "GET", "/stats", headers={"HTTP_X_REQUEST_ID": "trace-me-42"}
        )
        assert headers["X-Request-ID"] == "trace-me-42"

    def test_request_id_present_on_errors_too(self, app):
        status, headers, __ = call(app, "GET", "/no/such/thing")
        assert status == 404
        assert headers["X-Request-ID"]


class TestExplainStageTimings:
    BODY = {"query": "ANNOTATE LocusLink WITH GO"}

    def test_no_timings_without_tracing(self, app):
        status, __, payload = call(app, "POST", "/query/explain", body=self.BODY)
        assert status == 200
        assert "observed_stage_timings" not in payload

    def test_timings_present_when_trace_active(self, paper_genmapper):
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, registry=registry)
        app = create_app(paper_genmapper, registry=registry, tracer=tracer)
        previous = set_tracer(tracer)
        try:
            call(app, "POST", "/query", body=self.BODY)
            status, __, payload = call(
                app, "POST", "/query/explain", body=self.BODY
            )
        finally:
            set_tracer(previous)
        assert status == 200
        timings = payload["observed_stage_timings"]
        assert timings["query.run"]["count"] == 1
        assert timings["operator.generate_view"]["count"] == 1
        assert timings["http.request"]["count"] >= 1
        assert timings["query.run"]["p95"] is not None

    def test_traced_request_records_span_tree(self, paper_genmapper):
        registry = MetricsRegistry()
        tracer = Tracer(enabled=True, registry=registry)
        app = create_app(paper_genmapper, registry=registry, tracer=tracer)
        previous = set_tracer(tracer)
        try:
            call(app, "POST", "/query", body=self.BODY)
        finally:
            set_tracer(previous)
        (root,) = [r for r in tracer.finished if r.name == "http.request"]
        assert root.tags["route"] == "/query"
        assert root.tags["status"] == "200"
        child_names = {span.name for __, span in root.walk()}
        assert "query.run" in child_names
