"""Tests for the repository layer: CRUD plus duplicate elimination."""

import pytest

from repro.gam.database import GamDatabase
from repro.gam.enums import RelType, SourceContent, SourceStructure
from repro.gam.errors import (
    GamIntegrityError,
    UnknownMappingError,
    UnknownObjectError,
    UnknownSourceError,
)
from repro.gam.repository import GamRepository


@pytest.fixture()
def repo():
    db = GamDatabase()
    yield GamRepository(db)
    db.close()


@pytest.fixture()
def two_sources(repo):
    """LocusLink and GO with a few objects each."""
    locuslink = repo.add_source("LocusLink", SourceContent.GENE)
    go = repo.add_source("GO", SourceContent.OTHER, SourceStructure.NETWORK)
    repo.add_objects(locuslink, [("353", "APRT"), ("354", "GP1BB")])
    repo.add_objects(go, [("GO:0009116", "nucleoside metabolism"), ("GO:0007155",)])
    return locuslink, go


class TestSources:
    def test_add_and_get_by_name(self, repo):
        created = repo.add_source("LocusLink", "Gene", "Flat")
        fetched = repo.get_source("LocusLink")
        assert fetched == created

    def test_get_by_id(self, repo):
        created = repo.add_source("GO")
        assert repo.get_source(created.source_id) == created

    def test_unknown_source_raises(self, repo):
        with pytest.raises(UnknownSourceError):
            repo.get_source("Nope")

    def test_duplicate_name_returns_existing(self, repo):
        first = repo.add_source("GO", release="r1")
        second = repo.add_source("GO", release="r1")
        assert first.source_id == second.source_id

    def test_new_release_updates_audit_info(self, repo):
        first = repo.add_source("GO", release="r1", imported_at="2003-01-01")
        second = repo.add_source("GO", release="r2", imported_at="2003-06-01")
        assert second.source_id == first.source_id
        assert second.release == "r2"
        assert repo.get_source("GO").release == "r2"

    def test_target_stub_upgraded_to_network(self, repo):
        # A source first seen as an annotation target is Flat; its own
        # import may reveal Network structure.
        repo.add_source("GO")  # stub, Flat by default
        upgraded = repo.add_source("GO", structure="Network", release="r1")
        assert upgraded.structure is SourceStructure.NETWORK

    def test_network_never_downgraded(self, repo):
        repo.add_source("GO", structure="Network")
        again = repo.add_source("GO", structure="Flat")
        assert again.structure is SourceStructure.NETWORK

    def test_list_sources_ordered_by_id(self, repo):
        repo.add_source("B")
        repo.add_source("A")
        assert [s.name for s in repo.list_sources()] == ["B", "A"]


class TestObjects:
    def test_add_objects_returns_inserted_count(self, repo):
        src = repo.add_source("LL")
        assert repo.add_objects(src, [("1",), ("2",)]) == 2

    def test_duplicate_accessions_skipped(self, repo):
        src = repo.add_source("LL")
        repo.add_objects(src, [("1", "one")])
        assert repo.add_objects(src, [("1", "one again"), ("2",)]) == 1
        assert repo.count_objects(src) == 2

    def test_reimport_fills_missing_text(self, repo):
        src = repo.add_source("LL")
        repo.add_objects(src, [("1",)])
        repo.add_objects(src, [("1", "one")])
        assert repo.get_object(src, "1").text == "one"

    def test_reimport_does_not_erase_text(self, repo):
        src = repo.add_source("LL")
        repo.add_objects(src, [("1", "one")])
        repo.add_objects(src, [("1",)])
        assert repo.get_object(src, "1").text == "one"

    def test_get_object_with_number(self, repo):
        src = repo.add_source("Scores")
        repo.add_objects(src, [("s1", None, 0.75)])
        assert repo.get_object(src, "s1").number == pytest.approx(0.75)

    def test_unknown_object_raises(self, repo):
        repo.add_source("LL")
        with pytest.raises(UnknownObjectError):
            repo.get_object("LL", "999")

    def test_find_object_returns_none(self, repo):
        repo.add_source("LL")
        assert repo.find_object("LL", "999") is None

    def test_objects_of_sorted_by_accession(self, repo):
        src = repo.add_source("LL")
        repo.add_objects(src, [("b",), ("a",), ("c",)])
        assert [o.accession for o in repo.objects_of(src)] == ["a", "b", "c"]

    def test_objects_of_respects_limit(self, repo):
        src = repo.add_source("LL")
        repo.add_objects(src, [(str(i),) for i in range(10)])
        assert len(repo.objects_of(src, limit=3)) == 3

    def test_accession_lookup_table(self, repo, two_sources):
        locuslink, __ = two_sources
        table = repo.accession_to_id(locuslink)
        assert set(table) == {"353", "354"}


class TestSourceRels:
    def test_ensure_is_get_or_create(self, repo, two_sources):
        locuslink, go = two_sources
        first = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        second = repo.ensure_source_rel(locuslink, go, "Fact")
        assert first.src_rel_id == second.src_rel_id

    def test_different_types_are_distinct_rels(self, repo, two_sources):
        locuslink, go = two_sources
        fact = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        similarity = repo.ensure_source_rel(locuslink, go, RelType.SIMILARITY)
        assert fact.src_rel_id != similarity.src_rel_id

    def test_find_by_type(self, repo, two_sources):
        locuslink, go = two_sources
        repo.ensure_source_rel(locuslink, go, RelType.FACT)
        repo.ensure_source_rel(go, go, RelType.IS_A)
        facts = repo.find_source_rels(rel_type=RelType.FACT)
        assert len(facts) == 1
        assert facts[0].source1_id == locuslink.source_id

    def test_mappings_between_ignores_direction_by_default(
        self, repo, two_sources
    ):
        locuslink, go = two_sources
        repo.ensure_source_rel(go, locuslink, RelType.FACT)
        assert repo.mappings_between(locuslink, go)
        assert not repo.mappings_between(locuslink, go, directed=True)

    def test_structural_rels_are_not_mappings(self, repo, two_sources):
        __, go = two_sources
        repo.ensure_source_rel(go, go, RelType.IS_A)
        assert repo.all_mappings() == []


class TestAssociations:
    def test_add_and_count(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        inserted = repo.add_associations(
            rel, [("353", "GO:0009116"), ("354", "GO:0007155")]
        )
        assert inserted == 2
        assert repo.count_associations(rel) == 2

    def test_duplicate_pairs_skipped(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        repo.add_associations(rel, [("353", "GO:0009116")])
        assert repo.add_associations(rel, [("353", "GO:0009116")]) == 0

    def test_strict_rejects_unknown_accession(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        with pytest.raises(GamIntegrityError, match="999"):
            repo.add_associations(rel, [("999", "GO:0009116")])

    def test_lenient_skips_unknown_accession(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        inserted = repo.add_associations(
            rel,
            [("999", "GO:0009116"), ("353", "GO:0009116")],
            strict=False,
        )
        assert inserted == 1

    def test_evidence_stored(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.SIMILARITY)
        repo.add_associations(rel, [("353", "GO:0009116", 0.8)])
        associations = repo.associations_of(rel)
        assert associations[0].evidence == pytest.approx(0.8)

    def test_associations_materialize_accessions(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        repo.add_associations(rel, [("353", "GO:0009116")])
        assoc = repo.associations_of(rel)[0]
        assert assoc.source_accession == "353"
        assert assoc.target_accession == "GO:0009116"

    def test_intra_source_associations(self, repo, two_sources):
        __, go = two_sources
        rel = repo.ensure_source_rel(go, go, RelType.IS_A)
        assert repo.add_associations(rel, [("GO:0009116", "GO:0007155")]) == 1


class TestFetchMapping:
    def test_orients_stored_direction(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        repo.add_associations(rel, [("353", "GO:0009116")])
        __, associations = repo.fetch_mapping_associations(locuslink, go)
        assert associations[0].source_accession == "353"

    def test_orients_reverse_direction(self, repo, two_sources):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        repo.add_associations(rel, [("353", "GO:0009116")])
        __, associations = repo.fetch_mapping_associations(go, locuslink)
        assert associations[0].source_accession == "GO:0009116"
        assert associations[0].target_accession == "353"

    def test_missing_mapping_raises(self, repo, two_sources):
        locuslink, go = two_sources
        with pytest.raises(UnknownMappingError):
            repo.fetch_mapping_associations(locuslink, go)

    def test_prefers_imported_over_derived(self, repo, two_sources):
        locuslink, go = two_sources
        composed = repo.ensure_source_rel(locuslink, go, RelType.COMPOSED)
        repo.add_associations(composed, [("353", "GO:0007155")])
        fact = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        repo.add_associations(fact, [("353", "GO:0009116")])
        rel, associations = repo.fetch_mapping_associations(locuslink, go)
        assert rel.type is RelType.FACT
        assert associations[0].target_accession == "GO:0009116"


class TestObjectInfo:
    def test_annotations_of_object_collects_both_directions(
        self, repo, two_sources
    ):
        locuslink, go = two_sources
        rel = repo.ensure_source_rel(locuslink, go, RelType.FACT)
        repo.add_associations(rel, [("353", "GO:0009116")])
        info_ll = repo.annotations_of_object(locuslink, "353")
        info_go = repo.annotations_of_object(go, "GO:0009116")
        assert [(p, a.target_accession) for p, __, a in info_ll] == [
            ("GO", "GO:0009116")
        ]
        assert [(p, a.target_accession) for p, __, a in info_go] == [
            ("LocusLink", "353")
        ]
