"""Tests for attribute matching (Similarity mapping computation)."""

import pytest

from repro.gam.enums import RelType
from repro.gam.records import GamObject
from repro.operators.matching import (
    MatchConfig,
    evaluate_matching,
    exact_matcher,
    match_attributes,
    match_objects,
    normalize,
    normalized_matcher,
    token_jaccard_matcher,
    tokens,
)


def obj(accession, text=None, object_id=0, source_id=0):
    return GamObject(
        object_id=object_id, source_id=source_id, accession=accession, text=text
    )


class TestMatchers:
    def test_exact(self):
        assert exact_matcher("abc", "abc") == 1.0
        assert exact_matcher("abc", "Abc") == 0.0

    def test_normalize(self):
        assert normalize("Adenine-Phosphoribosyl_Transferase!") == (
            "adenine phosphoribosyl transferase"
        )

    def test_normalized_matcher(self):
        assert normalized_matcher("Gene-X kinase", "gene x KINASE") == 1.0
        assert normalized_matcher("gene x", "gene y") == 0.0

    def test_tokens(self):
        assert tokens("purine metabolism, purine") == {"purine", "metabolism"}

    def test_jaccard_values(self):
        assert token_jaccard_matcher("a b c", "a b c") == 1.0
        assert token_jaccard_matcher("a b", "b c") == pytest.approx(1 / 3)
        assert token_jaccard_matcher("a", "b") == 0.0

    def test_jaccard_empty_strings(self):
        assert token_jaccard_matcher("", "anything") == 0.0


class TestMatchObjects:
    def test_exact_name_match(self):
        left = [obj("L1", "purine kinase")]
        right = [obj("R1", "purine kinase"), obj("R2", "lipid kinase")]
        mapping = match_objects("A", "B", left, right)
        assert mapping.pair_set() == {("L1", "R1")}
        assert mapping.rel_type is RelType.SIMILARITY

    def test_evidence_is_score(self):
        left = [obj("L1", "purine kinase activity")]
        right = [obj("R1", "purine kinase")]
        mapping = match_objects(
            "A", "B", left, right, MatchConfig(threshold=0.5)
        )
        assert mapping.associations[0].evidence == pytest.approx(2 / 3)

    def test_threshold_filters(self):
        left = [obj("L1", "purine kinase")]
        right = [obj("R1", "purine phosphatase")]
        strict = match_objects("A", "B", left, right,
                               MatchConfig(threshold=0.9))
        loose = match_objects("A", "B", left, right,
                              MatchConfig(threshold=0.3))
        assert strict.is_empty()
        assert not loose.is_empty()

    def test_top_k_keeps_best(self):
        left = [obj("L1", "purine kinase")]
        right = [
            obj("R1", "purine kinase"),          # score 1.0
            obj("R2", "purine kinase activity"),  # score 2/3
        ]
        top1 = match_objects("A", "B", left, right,
                             MatchConfig(threshold=0.5, top_k=1))
        assert top1.pair_set() == {("L1", "R1")}
        top2 = match_objects("A", "B", left, right,
                             MatchConfig(threshold=0.5, top_k=2))
        assert len(top2) == 2

    def test_top_k_zero_keeps_all(self):
        left = [obj("L1", "x y")]
        right = [obj(f"R{i}", "x y") for i in range(5)]
        mapping = match_objects("A", "B", left, right,
                                MatchConfig(top_k=0))
        assert len(mapping) == 5

    def test_objects_without_text_skipped(self):
        left = [obj("L1", None)]
        right = [obj("R1", "anything")]
        assert match_objects("A", "B", left, right).is_empty()

    def test_accession_attribute(self):
        left = [obj("shared-id", "name a")]
        right = [obj("shared-id", "completely different")]
        mapping = match_objects(
            "A", "B", left, right,
            MatchConfig(matcher=exact_matcher, attribute="accession"),
        )
        assert mapping.pair_set() == {("shared-id", "shared-id")}

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError, match="attribute"):
            match_objects(
                "A", "B", [obj("L1", "x")], [obj("R1", "x")],
                MatchConfig(attribute="number"),
            )

    def test_blocking_equals_exhaustive(self):
        """The token-index optimization must not change the result."""
        names = ["purine kinase", "lipid transport", "purine transport",
                 "heme oxidation", "kinase regulator"]
        left = [obj(f"L{i}", name) for i, name in enumerate(names)]
        right = [obj(f"R{i}", name) for i, name in enumerate(reversed(names))]
        blocked = match_objects("A", "B", left, right,
                                MatchConfig(threshold=0.4, top_k=0))
        exhaustive_pairs = set()
        for lhs in left:
            for rhs in right:
                if token_jaccard_matcher(lhs.text, rhs.text) >= 0.4:
                    exhaustive_pairs.add((lhs.accession, rhs.accession))
        assert blocked.pair_set() == exhaustive_pairs


class TestMatchAttributes:
    def test_matches_stored_sources(self, paper_genmapper):
        # LocusLink 353 and UniGene Hs.28914 share the exact name
        # "adenine phosphoribosyltransferase".
        mapping = match_attributes(
            paper_genmapper.repository, "LocusLink", "Unigene",
            MatchConfig(matcher=normalized_matcher, threshold=1.0),
        )
        assert ("353", "Hs.28914") in mapping

    def test_result_materializable(self, paper_genmapper):
        from repro.derived.composed import materialize_mapping
        from repro.operators.simple import map_

        mapping = match_attributes(
            paper_genmapper.repository, "LocusLink", "Unigene",
            MatchConfig(matcher=normalized_matcher, threshold=1.0),
        )
        materialize_mapping(
            paper_genmapper.repository, mapping, RelType.SIMILARITY
        )
        stored = map_(paper_genmapper.repository, "LocusLink", "Unigene")
        assert ("353", "Hs.28914") in stored


class TestEvaluation:
    def test_perfect_match(self):
        from repro.operators.mapping import Mapping

        mapping = Mapping.build("A", "B", [("a", "b")])
        scores = evaluate_matching(mapping, [("a", "b")])
        assert scores == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_partial_match(self):
        from repro.operators.mapping import Mapping

        mapping = Mapping.build("A", "B", [("a", "b"), ("a", "c")])
        scores = evaluate_matching(mapping, [("a", "b"), ("x", "y")])
        assert scores["precision"] == pytest.approx(0.5)
        assert scores["recall"] == pytest.approx(0.5)

    def test_empty_mapping(self):
        from repro.operators.mapping import Mapping

        scores = evaluate_matching(Mapping.build("A", "B", []), [("a", "b")])
        assert scores["f1"] == 0.0
