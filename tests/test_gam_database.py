"""Tests for GamDatabase connection management."""

import pytest

from repro.gam.database import GamDatabase
from repro.gam.errors import GamSchemaError


class TestGamDatabase:
    def test_in_memory_database_gets_schema(self):
        with GamDatabase() as db:
            assert db.counts() == {
                "source": 0,
                "object": 0,
                "source_rel": 0,
                "object_rel": 0,
            }

    def test_file_database_persists(self, tmp_path):
        path = tmp_path / "gam.db"
        with GamDatabase(path) as db:
            db.execute(
                "INSERT INTO source (name, content, structure)"
                " VALUES ('GO', 'Other', 'Network')"
            )
            db.commit()
        with GamDatabase(path, create=False) as db:
            assert db.counts()["source"] == 1

    def test_create_false_requires_existing_schema(self, tmp_path):
        path = tmp_path / "empty.db"
        path.touch()
        with pytest.raises(GamSchemaError):
            GamDatabase(path, create=False)

    def test_transaction_commits_on_success(self):
        with GamDatabase() as db:
            with db.transaction():
                db.execute(
                    "INSERT INTO source (name, content, structure)"
                    " VALUES ('A', 'Gene', 'Flat')"
                )
            assert db.counts()["source"] == 1

    def test_transaction_rolls_back_on_error(self):
        with GamDatabase() as db:
            with pytest.raises(RuntimeError):
                with db.transaction():
                    db.execute(
                        "INSERT INTO source (name, content, structure)"
                        " VALUES ('A', 'Gene', 'Flat')"
                    )
                    raise RuntimeError("boom")
            assert db.counts()["source"] == 0

    def test_rows_are_name_addressable(self):
        with GamDatabase() as db:
            db.execute(
                "INSERT INTO source (name, content, structure)"
                " VALUES ('A', 'Gene', 'Flat')"
            )
            row = db.execute("SELECT * FROM source").fetchone()
            assert row["name"] == "A"
            assert row["content"] == "Gene"

    def test_executemany_inserts_all_rows(self):
        with GamDatabase() as db:
            db.executemany(
                "INSERT INTO source (name, content, structure) VALUES (?, ?, ?)",
                [("A", "Gene", "Flat"), ("B", "Other", "Network")],
            )
            assert db.counts()["source"] == 2

    def test_counts_track_every_table(self):
        with GamDatabase() as db:
            db.execute(
                "INSERT INTO source (name, content, structure)"
                " VALUES ('A', 'Gene', 'Flat')"
            )
            db.execute("INSERT INTO object (source_id, accession) VALUES (1, 'x')")
            db.execute(
                "INSERT INTO source_rel (source1_id, source2_id, type)"
                " VALUES (1, 1, 'Is-a')"
            )
            counts = db.counts()
            assert counts["source"] == 1
            assert counts["object"] == 1
            assert counts["source_rel"] == 1
            assert counts["object_rel"] == 0
