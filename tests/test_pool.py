"""Tests for the pooled storage layer: per-thread connections, WAL mode,
the serialized writer path, and savepoint-based nested transactions."""

import sqlite3
import threading

import pytest

from repro.gam.database import GamDatabase
from repro.gam.pool import ConnectionPool, PoolClosedError, is_memory_path
from repro.obs import MetricsRegistry


def _insert_source(db, name):
    db.execute(
        "INSERT INTO source (name, content, structure) VALUES (?, 'Gene', 'Flat')",
        (name,),
    )


class TestConnectionPool:
    def test_memory_pool_shares_one_connection(self):
        with ConnectionPool(":memory:") as pool:
            first = pool.acquire()
            seen = []
            thread = threading.Thread(target=lambda: seen.append(pool.acquire()))
            thread.start()
            thread.join()
            assert seen[0] is first
            assert pool.size == 1

    def test_disk_pool_hands_each_thread_its_own_connection(self, tmp_path):
        with ConnectionPool(str(tmp_path / "pool.db"), max_size=4) as pool:
            main_conn = pool.acquire()
            assert pool.acquire() is main_conn  # sticky within a thread
            seen = []
            barrier = threading.Barrier(4)

            def worker():
                conn = pool.acquire()
                barrier.wait()  # hold the lease while the others acquire
                seen.append(id(conn))

            threads = [threading.Thread(target=worker) for _ in range(3)]
            for t in threads:
                t.start()
            barrier.wait()
            for t in threads:
                t.join()
            assert len(set(seen)) == 3
            assert id(main_conn) not in seen

    def test_max_size_bounds_connections_and_degrades_to_sharing(self, tmp_path):
        registry = MetricsRegistry()
        pool = ConnectionPool(
            str(tmp_path / "bounded.db"),
            max_size=2,
            registry=registry,
            share_after=0.01,
        )
        try:
            barrier = threading.Barrier(4)
            conns = []

            def worker():
                conn = pool.acquire()
                barrier.wait()
                conns.append(id(conn))

            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert pool.size <= 2
            assert len(set(conns)) <= 2
            snapshot = registry.snapshot()
            assert snapshot["counters"]["db.pool.checkouts"] == 4
            assert snapshot["counters"]["db.pool.shared_grants"] >= 2
            assert snapshot["counters"]["db.pool.waits"] >= 2
        finally:
            pool.close()

    def test_dead_thread_leases_are_reclaimed(self, tmp_path):
        pool = ConnectionPool(str(tmp_path / "reclaim.db"), max_size=1)
        try:
            leased = []
            thread = threading.Thread(target=lambda: leased.append(pool.acquire()))
            thread.start()
            thread.join()
            # The single connection was leased by the dead thread; a new
            # thread must reclaim it rather than opening a second one.
            reused = []
            thread = threading.Thread(target=lambda: reused.append(pool.acquire()))
            thread.start()
            thread.join()
            assert reused[0] is leased[0]
            assert pool.size == 1
        finally:
            pool.close()

    def test_release_returns_lease_to_idle(self, tmp_path):
        pool = ConnectionPool(str(tmp_path / "release.db"), max_size=1)
        try:
            results = {}

            def first():
                results["first"] = pool.acquire()
                pool.release()

            def second():
                results["second"] = pool.acquire()

            for name in (first, second):
                thread = threading.Thread(target=name)
                thread.start()
                thread.join()
            assert results["first"] is results["second"]
        finally:
            pool.close()

    def test_checkout_metrics(self, tmp_path):
        registry = MetricsRegistry()
        with ConnectionPool(str(tmp_path / "m.db"), registry=registry) as pool:
            pool.acquire()
            pool.acquire()  # cached: not a checkout
            snapshot = registry.snapshot()
            assert snapshot["counters"]["db.pool.checkouts"] == 1
            assert snapshot["counters"]["db.pool.connections_created"] == 1
            assert snapshot["gauges"]["db.pool.connections"] == 1

    def test_closed_pool_raises(self, tmp_path):
        pool = ConnectionPool(str(tmp_path / "closed.db"))
        pool.acquire()
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.acquire()

    def test_is_memory_path(self):
        assert is_memory_path(":memory:")
        assert is_memory_path("file:whatever?mode=memory&cache=shared")
        assert not is_memory_path("/tmp/gam.db")


class TestWalMode:
    def test_on_disk_database_uses_wal(self, tmp_path):
        with GamDatabase(tmp_path / "wal.db") as db:
            row = db.execute_read("PRAGMA journal_mode").fetchone()
            assert row[0] == "wal"

    def test_memory_database_keeps_memory_journal(self):
        with GamDatabase() as db:
            row = db.execute_read("PRAGMA journal_mode").fetchone()
            assert row[0] == "memory"

    def test_readers_see_committed_writes_across_connections(self, tmp_path):
        path = tmp_path / "visible.db"
        with GamDatabase(path) as db:
            _insert_source(db, "A")
            # A completely independent connection must see the write
            # (autocommit) without the writer having to close first.
            other = sqlite3.connect(path)
            try:
                count = other.execute("SELECT count(*) FROM source").fetchone()[0]
                assert count == 1
            finally:
                other.close()


class TestTransactions:
    def test_nested_transaction_commits_with_outer(self):
        with GamDatabase() as db:
            with db.transaction():
                _insert_source(db, "A")
                with db.transaction():
                    _insert_source(db, "B")
            assert db.counts()["source"] == 2

    def test_nested_failure_rolls_back_only_its_savepoint(self):
        with GamDatabase() as db:
            with db.transaction():
                _insert_source(db, "A")
                with pytest.raises(RuntimeError):
                    with db.transaction():
                        _insert_source(db, "B")
                        raise RuntimeError("inner boom")
                _insert_source(db, "C")
            names = {
                row["name"]
                for row in db.execute_read("SELECT name FROM source").fetchall()
            }
            assert names == {"A", "C"}

    def test_nested_success_does_not_commit_outer_early(self, tmp_path):
        path = tmp_path / "savepoint.db"
        with GamDatabase(path) as db:
            other = sqlite3.connect(path)
            try:
                with db.transaction():
                    _insert_source(db, "A")
                    with db.transaction():
                        _insert_source(db, "B")
                    # The inner block released its savepoint; nothing may
                    # be visible to an independent reader yet.
                    count = other.execute(
                        "SELECT count(*) FROM source"
                    ).fetchone()[0]
                    assert count == 0
                count = other.execute("SELECT count(*) FROM source").fetchone()[0]
                assert count == 2
            finally:
                other.close()

    def test_outer_failure_discards_nested_work(self):
        with GamDatabase() as db:
            with pytest.raises(RuntimeError):
                with db.transaction():
                    _insert_source(db, "A")
                    with db.transaction():
                        _insert_source(db, "B")
                    raise RuntimeError("outer boom")
            assert db.counts()["source"] == 0

    def test_concurrent_transactions_serialize(self, tmp_path):
        db = GamDatabase(tmp_path / "writers.db", pool_size=4)
        try:
            errors = []

            def writer(prefix):
                try:
                    for i in range(25):
                        with db.transaction():
                            _insert_source(db, f"{prefix}-{i}")
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=writer, args=(f"w{n}",)) for n in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert db.counts()["source"] == 100
        finally:
            db.close()

    def test_transaction_does_not_sweep_up_other_threads_work(self, tmp_path):
        """Regression for the seed bug: one thread's commit must never
        publish another thread's half-done transaction."""
        db = GamDatabase(tmp_path / "isolated.db", pool_size=2)
        try:
            in_txn = threading.Event()
            release = threading.Event()
            outcome = {}

            def slow_writer():
                try:
                    with db.transaction():
                        _insert_source(db, "slow")
                        in_txn.set()
                        release.wait(0.5)
                        raise RuntimeError("slow writer aborts")
                except RuntimeError:
                    outcome["aborted"] = True

            def fast_writer():
                in_txn.wait(5)
                with db.transaction():
                    _insert_source(db, "fast")
                release.set()

            threads = [
                threading.Thread(target=slow_writer),
                threading.Thread(target=fast_writer),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert outcome.get("aborted")
            names = {
                row["name"]
                for row in db.execute_read("SELECT name FROM source").fetchall()
            }
            assert names == {"fast"}
        finally:
            db.close()

    def test_concurrent_reads_while_writer_active(self, tmp_path):
        """WAL: readers on other connections proceed during a write txn."""
        db = GamDatabase(tmp_path / "readers.db", pool_size=4)
        try:
            _insert_source(db, "seedling")
            counts = []

            def reader():
                counts.append(
                    db.execute_read("SELECT count(*) FROM source").fetchone()[0]
                )

            in_txn = threading.Event()
            done = threading.Event()

            def writer():
                with db.transaction():
                    _insert_source(db, "pending")
                    in_txn.set()
                    done.wait(5)

            wt = threading.Thread(target=writer)
            wt.start()
            in_txn.wait(5)
            rt = threading.Thread(target=reader)
            rt.start()
            rt.join(5)
            done.set()
            wt.join(5)
            # The reader ran to completion mid-write and saw only the
            # committed snapshot.
            assert counts == [1]
        finally:
            db.close()


class TestLeaseSanitization:
    """Regressions: a lease returned with an open transaction must never
    reach the next thread dirty (abandoned ``BEGIN`` without rollback)."""

    def test_explicit_release_rolls_back_open_transaction(self, tmp_path):
        registry = MetricsRegistry()
        pool = ConnectionPool(
            str(tmp_path / "dirty.db"), max_size=1, registry=registry
        )
        try:
            results = {}

            def abandoner():
                connection = pool.acquire()
                connection.execute("CREATE TABLE IF NOT EXISTS t (x)")
                connection.commit()
                connection.execute("BEGIN")
                connection.execute("INSERT INTO t VALUES (1)")
                # Release mid-transaction without rollback or commit.
                pool.release()
                results["still_open"] = connection.in_transaction

            def successor():
                connection = pool.acquire()
                results["connection"] = connection
                results["in_txn"] = connection.in_transaction
                results["rows"] = connection.execute(
                    "SELECT count(*) FROM t"
                ).fetchone()[0]

            for target in (abandoner, successor):
                thread = threading.Thread(target=target)
                thread.start()
                thread.join()
            assert results["still_open"] is False  # sanitized at release
            assert results["in_txn"] is False
            assert results["rows"] == 0  # the abandoned insert is gone
            counters = registry.snapshot()["counters"]
            assert counters["db.pool.dirty_releases"] == 1
        finally:
            pool.close()

    def test_dead_thread_dirty_lease_sanitized_on_reclaim(self, tmp_path):
        registry = MetricsRegistry()
        pool = ConnectionPool(
            str(tmp_path / "dead.db"), max_size=1, registry=registry
        )
        try:

            def dier():
                connection = pool.acquire()
                connection.execute("CREATE TABLE IF NOT EXISTS t (x)")
                connection.commit()
                connection.execute("BEGIN")
                connection.execute("INSERT INTO t VALUES (1)")
                # Thread dies holding the lease mid-transaction.

            thread = threading.Thread(target=dier)
            thread.start()
            thread.join()
            results = {}

            def successor():
                connection = pool.acquire()
                results["in_txn"] = connection.in_transaction
                results["rows"] = connection.execute(
                    "SELECT count(*) FROM t"
                ).fetchone()[0]

            thread = threading.Thread(target=successor)
            thread.start()
            thread.join()
            assert results["in_txn"] is False
            assert results["rows"] == 0
            assert registry.snapshot()["counters"]["db.pool.dirty_releases"] == 1
        finally:
            pool.close()

    def test_unusable_lease_is_discarded_not_pooled(self, tmp_path):
        registry = MetricsRegistry()
        pool = ConnectionPool(
            str(tmp_path / "broken.db"), max_size=2, registry=registry
        )
        try:
            results = {}

            def breaker():
                connection = pool.acquire()
                connection.close()  # now unusable: sanitize must discard it
                pool.release()

            thread = threading.Thread(target=breaker)
            thread.start()
            thread.join()
            assert registry.snapshot()["counters"]["db.pool.discarded"] == 1
            assert pool.size == 0

            def successor():
                connection = pool.acquire()
                results["ok"] = connection.execute("SELECT 1").fetchone()[0]

            thread = threading.Thread(target=successor)
            thread.start()
            thread.join()
            assert results["ok"] == 1  # a fresh connection replaced it
        finally:
            pool.close()

    def test_connect_guard_runs_for_each_new_connection(self, tmp_path):
        calls = []
        pool = ConnectionPool(
            str(tmp_path / "guard.db"),
            max_size=4,
            connect_guard=lambda: calls.append(1),
        )
        try:
            seen = []

            def worker():
                seen.append(pool.acquire())

            threads = [threading.Thread(target=worker) for _ in range(3)]
            for thread in threads:
                thread.start()
                thread.join()
            assert len(calls) == len(set(map(id, seen)))
        finally:
            pool.close()

    def test_connect_guard_failure_propagates(self, tmp_path):
        def guard():
            raise sqlite3.OperationalError("unable to open database file")

        pool = ConnectionPool(str(tmp_path / "g2.db"), connect_guard=guard)
        try:
            with pytest.raises(sqlite3.OperationalError):
                pool.acquire()
            assert pool.size == 0  # nothing half-created is pooled
        finally:
            pool.close()
