"""Tests for the Section 5.2 analysis layer: expression statistics,
enrichment, and the full profiling pipeline."""

import numpy as np
import pytest

from repro.analysis.diffexpr import (
    benjamini_hochberg,
    detect_differential,
    detect_expressed,
)
from repro.analysis.enrichment import enrich, significant
from repro.analysis.profiling import FunctionalProfiler
from repro.datagen.expression import ExpressionStudy, generate_expression
from repro.operators.mapping import Mapping
from repro.taxonomy.dag import Taxonomy


def make_study(values, probe_ids=None, n_human=3, n_chimp=3):
    values = np.asarray(values, dtype=float)
    probe_ids = probe_ids or [f"p{i}" for i in range(values.shape[0])]
    return ExpressionStudy(
        probe_ids=tuple(probe_ids),
        species=tuple(["human"] * n_human + ["chimp"] * n_chimp),
        values=values,
        expressed_probes=frozenset(),
        differential_probes=frozenset(),
        differential_loci=frozenset(),
        planted_terms=frozenset(),
    )


class TestBenjaminiHochberg:
    def test_empty_input(self):
        assert benjamini_hochberg(np.array([])).size == 0

    def test_single_p_value_unchanged(self):
        assert benjamini_hochberg(np.array([0.03]))[0] == pytest.approx(0.03)

    def test_known_example(self):
        p = np.array([0.01, 0.04, 0.03, 0.005])
        q = benjamini_hochberg(p)
        # Sorted p: .005, .01, .03, .04 -> q: .02, .02, .04, .04.
        assert q[np.argsort(p)] == pytest.approx([0.02, 0.02, 0.04, 0.04])

    def test_monotone_in_sorted_order(self):
        rng = np.random.default_rng(3)
        p = rng.uniform(size=50)
        q = benjamini_hochberg(p)
        order = np.argsort(p)
        assert np.all(np.diff(q[order]) >= -1e-12)

    def test_q_values_bounded(self):
        rng = np.random.default_rng(4)
        q = benjamini_hochberg(rng.uniform(size=100))
        assert np.all(q >= 0.0) and np.all(q <= 1.0)

    def test_q_at_least_p(self):
        rng = np.random.default_rng(5)
        p = rng.uniform(size=30)
        q = benjamini_hochberg(p)
        assert np.all(q >= p - 1e-12)


class TestDetectExpressed:
    def test_threshold_separates_signal_from_background(self):
        study = make_study([[8.0] * 6, [4.0] * 6])
        assert detect_expressed(study, threshold=6.0) == {"p0"}

    def test_all_below_threshold(self):
        study = make_study([[1.0] * 6])
        assert detect_expressed(study) == set()


class TestDetectDifferential:
    def test_finds_planted_shift(self):
        flat = [8.0, 8.1, 7.9, 8.0, 8.1, 7.9]
        shifted = [8.0, 8.1, 7.9, 11.0, 11.1, 10.9]
        study = make_study([flat, shifted])
        results = detect_differential(study, expressed={"p0", "p1"}, fdr=0.05)
        assert [r.probe_id for r in results] == ["p1"]
        assert results[0].direction == "up"

    def test_down_direction(self):
        shifted = [8.0, 8.1, 7.9, 5.0, 5.1, 4.9]
        study = make_study([shifted])
        results = detect_differential(study, expressed={"p0"}, fdr=0.05)
        assert results[0].direction == "down"

    def test_only_expressed_probes_tested(self):
        shifted = [8.0, 8.1, 7.9, 11.0, 11.1, 10.9]
        study = make_study([shifted])
        assert detect_differential(study, expressed=set(), fdr=0.5) == []

    def test_requires_two_samples_per_species(self):
        study = make_study([[8.0, 9.0]], n_human=1, n_chimp=1)
        with pytest.raises(ValueError, match="two samples"):
            detect_differential(study, expressed={"p0"})

    def test_results_sorted_by_q(self):
        strong = [8.0, 8.0, 8.0, 12.0, 12.0, 12.0]
        weak = [8.0, 8.3, 7.7, 9.2, 9.4, 8.6]
        study = make_study([weak, strong])
        results = detect_differential(
            study, expressed={"p0", "p1"}, fdr=1.0
        )
        assert results[0].probe_id == "p1"


class TestEnrichment:
    @pytest.fixture()
    def annotation(self):
        # 10 genes; term T1 annotates g0..g3, T2 annotates g4..g9.
        pairs = [(f"g{i}", "T1") for i in range(4)]
        pairs += [(f"g{i}", "T2") for i in range(4, 10)]
        return Mapping.build("Gene", "GO", pairs)

    def test_enriched_term_detected(self, annotation):
        results = enrich(annotation, study_objects={"g0", "g1", "g2"})
        by_term = {r.term: r for r in results}
        assert by_term["T1"].p_value < by_term["T2"].p_value
        assert by_term["T1"].study_count == 3

    def test_population_defaults_to_domain(self, annotation):
        results = enrich(annotation, study_objects={"g0"})
        assert results[0].population_size == 10

    def test_explicit_population_intersected(self, annotation):
        results = enrich(
            annotation,
            study_objects={"g0"},
            population_objects={f"g{i}" for i in range(5)} | {"not-annotated"},
        )
        assert results[0].population_size == 5

    def test_min_term_size_filters(self, annotation):
        small = Mapping.build("Gene", "GO", [("g0", "T3")])
        merged = Mapping.build(
            "Gene", "GO",
            [(a.source_accession, a.target_accession) for a in annotation]
            + [("g0", "T3")],
        )
        results = enrich(merged, study_objects={"g0"}, min_term_size=2)
        assert all(r.term != "T3" for r in results)
        del small

    def test_rollup_tests_ancestor_terms(self, annotation):
        taxonomy = Taxonomy([("T1", "ROOT"), ("T2", "ROOT")])
        results = enrich(
            annotation, study_objects={"g0", "g1"}, taxonomy=taxonomy
        )
        assert any(r.term == "ROOT" for r in results)

    def test_fold_enrichment(self, annotation):
        results = enrich(annotation, study_objects={"g0", "g1"})
        t1 = next(r for r in results if r.term == "T1")
        # Expected = 4 * 2 / 10 = 0.8; observed 2 -> fold 2.5.
        assert t1.fold_enrichment == pytest.approx(2.5)

    def test_empty_annotation_gives_no_results(self):
        empty = Mapping.build("Gene", "GO", [])
        assert enrich(empty, study_objects={"g0"}) == []

    def test_significant_filters_by_q(self, annotation):
        results = enrich(annotation, study_objects={"g0", "g1", "g2", "g3"})
        assert all(r.q_value <= 0.05 for r in significant(results, 0.05))


class TestProfilingPipeline:
    @pytest.fixture(scope="class")
    def profiled(self, request):
        # Build a private, larger universe for a reliable planted signal.
        import tempfile

        from repro.core.genmapper import GenMapper
        from repro.datagen.emit import write_universe
        from repro.datagen.universe import UniverseConfig, generate_universe

        universe = generate_universe(
            UniverseConfig(seed=23, n_genes=250, n_go_terms=90)
        )
        gm = GenMapper()
        with tempfile.TemporaryDirectory() as directory:
            write_universe(universe, directory)
            gm.integrate_directory(directory)
        study = generate_expression(universe)
        report = FunctionalProfiler(gm).run(study)
        request.addfinalizer(gm.close)
        return universe, study, report

    def test_headline_proportions(self, profiled):
        __, study, report = profiled
        # Roughly half the probes expressed, an eighth of those differential
        # (the paper's 40k -> 20k -> 2.5k shape).
        expressed_fraction = len(report.expressed_probes) / report.n_probes
        assert 0.35 <= expressed_fraction <= 0.65
        differential_fraction = (
            len(report.differential) / len(report.expressed_probes)
        )
        assert 0.05 <= differential_fraction <= 0.25

    def test_differential_probes_recovered(self, profiled):
        __, study, report = profiled
        found = report.differential_probes
        truth = study.differential_probes
        overlap = len(found & truth)
        assert overlap / max(len(truth), 1) >= 0.7
        assert overlap / max(len(found), 1) >= 0.7

    def test_study_genes_translated_to_unigene(self, profiled):
        universe, __, report = profiled
        clusters = {g.unigene for g in universe.genes if g.unigene}
        assert report.study_genes <= clusters
        assert report.population_genes <= clusters

    def test_enrichment_recovers_planted_signal(self, profiled):
        universe, study, report = profiled
        taxonomy = Taxonomy(universe.go.is_a_pairs())
        planted_and_ancestors = set(study.planted_terms)
        for term in study.planted_terms:
            if term in taxonomy:
                planted_and_ancestors |= taxonomy.ancestors(term)
        hits = {r.term for r in report.significant_terms(fdr=0.10)}
        assert hits & planted_and_ancestors

    def test_summary_mentions_counts(self, profiled):
        __, __s, report = profiled
        summary = report.summary()
        assert "probes measured" in summary
        assert "expressed" in summary
