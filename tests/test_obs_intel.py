"""Tests for the query intelligence plane: wide events, the slow-query
log, Prometheus/OpenMetrics exposition with exemplars, SLO burn rates and
the sampling profiler — plus their web surface."""

from __future__ import annotations

import io
import json
import re
import threading
import time

import pytest

from repro.obs import (
    OPENMETRICS_CONTENT_TYPE,
    TEXT_CONTENT_TYPE,
    ExpositionError,
    MetricsRegistry,
    SamplingProfiler,
    SloTracker,
    SlowQueryLog,
    Tracer,
    WideEventLog,
    add_stage,
    annotate_event,
    current_event,
    event_scope,
    incr_event,
    profile_for,
    record_sql,
    render_openmetrics,
    render_text,
    validate_openmetrics,
)
from repro.obs.events import MAX_SQL_STATEMENTS, EventState
from repro.obs.slowlog import redact_statement, threshold_from_env
from repro.web.app import create_app


# -- wide events ---------------------------------------------------------------


class TestWideEventRoundTrip:
    def test_scope_emits_one_schema_complete_jsonl_record(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = WideEventLog(path, registry=MetricsRegistry())
        with event_scope(
            "import", log=log, source="GO", file="go.obo"
        ) as state:
            incr_event("cache_hits")
            incr_event("retries", 2)
            add_stage("parse", 0.25)
            record_sql("INSERT INTO objects VALUES (?, ?)", 2)
            annotate_event(release="2026-08")
        log.close()

        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "import"
        assert re.fullmatch(r"[0-9a-f]{16}", record["trace_id"])
        assert record["trace_id"] == state.fields["trace_id"]
        assert record["duration_ms"] >= 0
        assert record["source"] == "GO"
        assert record["file"] == "go.obo"
        assert record["release"] == "2026-08"
        assert record["cache_hits"] == 1
        assert record["retries"] == 2
        assert record["sql_count"] == 1
        assert record["sql_statements"] == 1
        assert record["stages_ms"] == {"parse": 250.0}

    def test_scope_records_error_and_reraises(self, tmp_path):
        log = WideEventLog(tmp_path / "e.jsonl", registry=MetricsRegistry())
        with pytest.raises(ValueError, match="boom"):
            with event_scope("import", log=log):
                raise ValueError("boom")
        log.close()
        record = json.loads((tmp_path / "e.jsonl").read_text())
        assert record["error"] == "ValueError: boom"

    def test_helpers_are_noops_outside_a_scope(self):
        assert current_event() is None
        annotate_event(rows=3)
        incr_event("cache_hits")
        add_stage("parse", 0.1)
        record_sql("SELECT 1", 0)
        assert current_event() is None

    def test_sql_retention_is_capped_but_counting_continues(self):
        with event_scope("import", emit=False) as state:
            for i in range(MAX_SQL_STATEMENTS + 10):
                record_sql(f"SELECT {i}", 0)
        assert len(state.sql) == MAX_SQL_STATEMENTS
        assert state.counts["sql_count"] == MAX_SQL_STATEMENTS + 10

    def test_nested_scopes_restore_the_outer_event(self):
        with event_scope("import", emit=False) as outer:
            with event_scope("derivation", emit=False) as inner:
                assert current_event() is inner
            assert current_event() is outer


class TestWideEventLogBackpressure:
    def test_full_queue_drops_and_counts_instead_of_blocking(self, tmp_path):
        registry = MetricsRegistry()
        log = WideEventLog(
            tmp_path / "e.jsonl", max_queue=2, registry=registry, start=False
        )
        assert log.emit({"n": 1}) is True
        assert log.emit({"n": 2}) is True
        assert log.emit({"n": 3}) is False  # queue full, writer not started
        stats = log.stats()
        assert stats["emitted"] == 2
        assert stats["dropped"] == 1
        counters = registry.snapshot()["counters"]
        assert counters["obs.events.emitted"] == 2.0
        assert counters["obs.events.dropped"] == 1.0
        log.start()
        log.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "e.jsonl").read_text().splitlines()
        ]
        assert [r["n"] for r in records] == [1, 2]

    def test_emit_after_close_is_refused(self, tmp_path):
        log = WideEventLog(tmp_path / "e.jsonl", registry=MetricsRegistry())
        log.close()
        assert log.emit({"n": 1}) is False


# -- slow-query log ------------------------------------------------------------


class TestSlowQueryLog:
    def test_ring_buffer_evicts_oldest_beyond_capacity(self):
        log = SlowQueryLog(
            threshold_ms=0.0, capacity=3, registry=MetricsRegistry()
        )
        for n in range(5):
            log.record({"n": n})
        assert [e["n"] for e in log.entries()] == [4, 3, 2]
        assert [e["n"] for e in log.entries(limit=2)] == [4, 3]
        stats = log.stats()
        assert stats["captured_total"] == 5
        assert stats["retained"] == 3
        assert stats["capacity"] == 3

    def test_threshold_gates_capture(self):
        disabled = SlowQueryLog(registry=MetricsRegistry())
        assert not disabled.enabled
        assert not disabled.should_capture(10.0)
        log = SlowQueryLog(threshold_ms=100.0, registry=MetricsRegistry())
        assert log.enabled
        assert not log.should_capture(0.05)
        assert log.should_capture(0.1)
        assert log.should_capture(2.0)

    def test_redaction_keeps_statement_text_only(self):
        entry = redact_statement(
            "SELECT *\n   FROM objects\n   WHERE accession = ?", 1
        )
        assert entry == {
            "sql": "SELECT * FROM objects WHERE accession = ?",
            "bound_params": 1,
        }

    def test_capture_from_event_includes_plan_stages_and_redacted_sql(self):
        log = SlowQueryLog(threshold_ms=1.0, registry=MetricsRegistry())
        state = EventState(
            "http_request",
            {"trace_id": "abc123", "route": "/query", "method": "POST",
             "status": 200, "spec_digest": "feed"},
        )
        state.stages["query.run"] = 0.04
        state.counts["sql_count"] = 2
        state.sql.append(("SELECT 1   WHERE x = ?", 1))
        state.slow_capture = lambda: {"plan": ["Map", "Compose"]}
        entry = log.capture_from_event(state, duration_s=0.05)
        assert entry["trace_id"] == "abc123"
        assert entry["duration_ms"] == 50.0
        assert entry["stages_ms"] == {"query.run": 40.0}
        assert entry["sql"] == [{"sql": "SELECT 1 WHERE x = ?", "bound_params": 1}]
        assert entry["sql_count"] == 2
        assert entry["plan"] == {"plan": ["Map", "Compose"]}
        assert entry["spec_digest"] == "feed"
        assert log.entries()[0] is entry

    def test_failing_plan_thunk_never_fails_the_capture(self):
        log = SlowQueryLog(threshold_ms=1.0, registry=MetricsRegistry())
        state = EventState("http_request", {"trace_id": "t"})

        def explode():
            raise RuntimeError("planner crashed")

        state.slow_capture = explode
        entry = log.capture_from_event(state, duration_s=0.01)
        assert entry["plan"] == {"error": "RuntimeError: planner crashed"}

    def test_threshold_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_MS", raising=False)
        assert threshold_from_env() is None
        monkeypatch.setenv("REPRO_SLOW_MS", "250")
        assert threshold_from_env() == 250.0
        monkeypatch.setenv("REPRO_SLOW_MS", "not-a-number")
        assert threshold_from_env() is None
        monkeypatch.setenv("REPRO_SLOW_MS", "-5")
        assert threshold_from_env() is None


# -- exposition ----------------------------------------------------------------


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("http_requests_total", method="GET", route="/query").inc(3)
    registry.counter("obs.events.dropped").inc()
    registry.gauge("http_requests_in_flight").set(1)
    histogram = registry.histogram(
        "http_request_seconds", buckets=(0.1, 1.0), route="/query"
    )
    histogram.observe(0.05, exemplar="abc123")
    histogram.observe(2.5)
    return registry


class TestExposition:
    def test_text_format_keeps_sample_name_equal_to_family(self):
        text = render_text(populated_registry())
        assert "# TYPE http_requests_total counter" in text
        assert 'http_requests_total{method="GET",route="/query"} 3' in text
        # dotted registry names are sanitised to the Prometheus charset
        assert "obs_events_dropped 1" in text
        assert "# EOF" not in text
        assert "# {" not in text  # exemplars are OpenMetrics-only

    def test_openmetrics_counters_drop_then_readd_total_suffix(self):
        text = render_openmetrics(populated_registry())
        assert "# TYPE http_requests counter" in text
        assert 'http_requests_total{method="GET",route="/query"} 3' in text
        assert text.endswith("# EOF\n")

    def test_openmetrics_exemplar_links_bucket_to_trace_id(self):
        text = render_openmetrics(populated_registry())
        exemplar_lines = [line for line in text.splitlines() if " # {" in line]
        assert len(exemplar_lines) == 1
        assert re.fullmatch(
            r'http_request_seconds_bucket\{le="0\.1",route="/query"\} 1'
            r' # \{trace_id="abc123"\} 0\.05 \d+(\.\d+)?',
            exemplar_lines[0],
        )

    def test_rendered_openmetrics_passes_strict_validation(self):
        stats = validate_openmetrics(render_openmetrics(populated_registry()))
        assert stats["families"] >= 4
        assert stats["exemplars"] == 1

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_text(populated_registry())
        buckets = re.findall(
            r'http_request_seconds_bucket\{le="([^"]+)",route="/query"\} (\d+)',
            text,
        )
        assert buckets == [("0.1", "1"), ("1", "1"), ("+Inf", "2")]
        assert 'http_request_seconds_count{route="/query"} 2' in text

    @pytest.mark.parametrize(
        "text, message",
        [
            ("# TYPE a counter\na_total 1\n", "EOF"),
            ("orphan 1\n# EOF\n", "no declared family"),
            ("# TYPE a counter\na_total x\n# EOF\n", "non-numeric"),
            (
                "# TYPE a counter\na_total 1\na_total 1\n# EOF\n",
                "duplicate sample",
            ),
            (
                "# TYPE a histogram\n"
                'a_bucket{le="1"} 5\na_bucket{le="+Inf"} 3\n'
                "a_sum 1.0\na_count 3\n# EOF\n",
                "not cumulative",
            ),
            (
                "# TYPE a histogram\n"
                'a_bucket{le="1"} 1\n'
                "a_sum 1.0\na_count 1\n# EOF\n",
                "\\+Inf",
            ),
            ("# TYPE a gauge\na 1 # {x=\"y\"} 1\n# EOF\n", "exemplar"),
        ],
    )
    def test_validator_rejects_malformed_exposition(self, text, message):
        with pytest.raises(ExpositionError, match=message):
            validate_openmetrics(text)


# -- SLO tracking --------------------------------------------------------------


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestSloTracker:
    def tracker(self, clock, **overrides):
        defaults = dict(
            availability_target=0.999,
            latency_threshold_ms=100.0,
            latency_target=0.99,
            clock=clock,
            registry=MetricsRegistry(),
        )
        defaults.update(overrides)
        return SloTracker(**defaults)

    def test_burn_rate_is_miss_rate_over_budget(self):
        clock = FakeClock()
        tracker = self.tracker(clock)
        for __ in range(99):
            tracker.record(ok=True, duration_s=0.01)
        tracker.record(ok=False, duration_s=0.01)
        window = tracker.snapshot(publish=False)["windows"]["5m"]
        assert window["requests"] == 100
        assert window["errors"] == 1
        assert window["availability"] == 0.99
        # miss rate 0.01 against a 0.001 budget: burning 10x too fast.
        assert window["availability_burn_rate"] == 10.0
        assert not window["availability_ok"]

    def test_latency_objective_counts_slow_requests(self):
        clock = FakeClock()
        tracker = self.tracker(clock)
        for __ in range(98):
            tracker.record(ok=True, duration_s=0.05)
        tracker.record(ok=True, duration_s=0.25)  # slow
        tracker.record(ok=True, duration_s=0.25)  # slow
        window = tracker.snapshot(publish=False)["windows"]["5m"]
        assert window["slow"] == 2
        assert window["latency_attainment"] == 0.98
        assert window["latency_burn_rate"] == 2.0
        assert not window["latency_ok"]

    def test_no_traffic_means_no_burn(self):
        tracker = self.tracker(FakeClock())
        window = tracker.snapshot(publish=False)["windows"]["1h"]
        assert window["requests"] == 0
        assert window["availability"] == 1.0
        assert window["availability_burn_rate"] == 0.0
        assert window["availability_ok"]

    def test_errors_roll_out_of_the_small_window_first(self):
        clock = FakeClock()
        tracker = self.tracker(clock)
        tracker.record(ok=False, duration_s=0.01)
        clock.advance(400)  # past the 5m window, inside the 1h window
        tracker.record(ok=True, duration_s=0.01)
        windows = tracker.snapshot(publish=False)["windows"]
        assert windows["5m"]["requests"] == 1
        assert windows["5m"]["errors"] == 0
        assert windows["5m"]["availability_burn_rate"] == 0.0
        assert windows["1h"]["requests"] == 2
        assert windows["1h"]["errors"] == 1

    def test_slots_recycle_after_a_full_ring(self):
        clock = FakeClock()
        tracker = self.tracker(clock)
        tracker.record(ok=False, duration_s=0.01)
        clock.advance(3600)  # same ring slot, one full rotation later
        tracker.record(ok=True, duration_s=0.01)
        windows = tracker.snapshot(publish=False)["windows"]
        assert windows["1h"]["requests"] == 1
        assert windows["1h"]["errors"] == 0

    def test_snapshot_publishes_burn_rate_gauges(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracker = self.tracker(clock, registry=registry)
        for __ in range(9):
            tracker.record(ok=True, duration_s=0.01)
        tracker.record(ok=False, duration_s=0.5)
        tracker.snapshot(publish=True)
        gauges = registry.snapshot()["gauges"]
        assert gauges["slo.burn_rate{objective=availability,window=5m}"] == 100.0
        assert gauges["slo.burn_rate{objective=latency,window=5m}"] == 10.0
        assert gauges["slo.availability{window=5m}"] == 0.9
        assert gauges["slo.latency_attainment{window=5m}"] == 0.9

    def test_snapshot_can_publish_into_an_override_registry(self):
        scraped = MetricsRegistry()
        tracker = self.tracker(FakeClock())
        tracker.record(ok=True, duration_s=0.01)
        tracker.snapshot(publish=True, registry=scraped)
        assert "slo.availability{window=5m}" in scraped.snapshot()["gauges"]
        assert tracker.registry.snapshot()["gauges"] == {}


# -- sampling profiler ---------------------------------------------------------


def _spin_until(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(range(500))


class TestSamplingProfiler:
    def test_sample_once_records_root_first_stacks(self):
        profiler = SamplingProfiler(hz=100)
        taken = profiler.sample_once()
        assert taken >= 1  # at least this thread
        folded = profiler.folded()
        assert folded.endswith("\n")
        for line in folded.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert all(":" in frame for frame in stack.split(";"))
        # this test function is on the sampled main-thread stack,
        # leaf-ward of the runner frames (root-first ordering).
        assert "test_sample_once_records_root_first_stacks" in folded

    def test_profile_for_catches_a_busy_thread(self):
        stop = threading.Event()
        worker = threading.Thread(target=_spin_until, args=(stop,), daemon=True)
        worker.start()
        try:
            profiler = profile_for(0.3, hz=200)
        finally:
            stop.set()
            worker.join(timeout=5)
        assert profiler.samples > 0
        assert not profiler.running
        assert "_spin_until" in profiler.folded()
        stats = profiler.stats()
        assert stats["hz"] == 200
        assert stats["distinct_stacks"] >= 1

    def test_reset_clears_counts(self):
        profiler = SamplingProfiler(hz=100)
        profiler.sample_once()
        profiler.reset()
        assert profiler.folded() == ""
        assert profiler.stats()["samples"] == 0

    def test_hz_is_clamped(self, monkeypatch):
        assert SamplingProfiler(hz=100000).hz == 1000.0
        assert SamplingProfiler(hz=0.001).hz == 1.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "250")
        assert SamplingProfiler().hz == 250.0
        monkeypatch.setenv("REPRO_PROFILE_HZ", "junk")
        assert SamplingProfiler().hz == 100.0


# -- the web surface -----------------------------------------------------------


def call_raw(app, method, path, query="", body=None, headers=None):
    """Invoke a WSGI app; returns (status, headers, raw body bytes)."""
    raw = json.dumps(body).encode() if body is not None else b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    if headers:
        environ.update(headers)
    captured = {}

    def start_response(status, response_headers, exc_info=None):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    chunks = app(environ, start_response)
    return captured["status"], captured["headers"], b"".join(chunks)


def call(app, method, path, query="", body=None, headers=None):
    status, response_headers, raw = call_raw(
        app, method, path, query=query, body=body, headers=headers
    )
    return status, response_headers, json.loads(raw.decode("utf-8"))


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def intel_app(paper_genmapper, registry, tmp_path):
    """App with every intelligence-plane collaborator explicit and
    isolated: wide events to a temp file, capture-everything slow log,
    fake-clocked SLO tracker."""
    event_log = WideEventLog(tmp_path / "events.jsonl", registry=registry)
    slow_log = SlowQueryLog(threshold_ms=0.0, registry=registry)
    slo = SloTracker(registry=registry)
    app = create_app(
        paper_genmapper,
        registry=registry,
        tracer=Tracer(enabled=False, registry=registry),
        event_log=event_log,
        slow_log=slow_log,
        slo=slo,
    )
    yield app, event_log, slow_log, slo, tmp_path / "events.jsonl"
    event_log.close()


class TestMetricsNegotiation:
    def test_default_stays_json_with_new_blocks(self, intel_app):
        app = intel_app[0]
        call(app, "GET", "/sources")
        __, headers, payload = call(app, "GET", "/metrics")
        assert headers["Content-Type"].startswith("application/json")
        assert "counters" in payload
        assert payload["slo"]["objectives"]["availability_target"] == 0.999
        assert payload["events"]["dropped"] == 0
        assert payload["slowlog"]["capacity"] > 0

    def test_format_prometheus_serves_text_004(self, intel_app):
        app = intel_app[0]
        call(app, "GET", "/sources")
        status, headers, body = call_raw(
            app, "GET", "/metrics", query="format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"] == TEXT_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "# TYPE http_requests_total counter" in text
        assert "slo_burn_rate" in text
        assert "# EOF" not in text

    def test_accept_header_negotiates_openmetrics(self, intel_app):
        app = intel_app[0]
        call(app, "GET", "/sources")
        status, headers, body = call_raw(
            app,
            "GET",
            "/metrics",
            headers={"HTTP_ACCEPT": "application/openmetrics-text"},
        )
        assert status == 200
        assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
        stats = validate_openmetrics(body.decode("utf-8"))
        assert stats["samples"] > 0

    def test_unknown_format_is_400_with_request_id(self, intel_app):
        app = intel_app[0]
        status, headers, payload = call(
            app, "GET", "/metrics", query="format=xml"
        )
        assert status == 400
        assert "unknown metrics format" in payload["error"]
        assert payload["request_id"] == headers["X-Request-ID"]


class TestSloEndpoint:
    def test_slo_reports_windows_and_burn(self, intel_app):
        app, __, __, __, __ = intel_app
        call(app, "GET", "/sources")
        status, __, payload = call(app, "GET", "/slo")
        assert status == 200
        assert set(payload["windows"]) == {"5m", "1h"}
        window = payload["windows"]["5m"]
        assert window["requests"] >= 1
        assert window["availability_burn_rate"] == 0.0

    def test_slo_snapshot_publishes_into_scraped_registry(
        self, intel_app, registry
    ):
        app = intel_app[0]
        call(app, "GET", "/slo")
        __, __, body = call_raw(
            app, "GET", "/metrics", query="format=openmetrics"
        )
        assert "slo_burn_rate" in body.decode("utf-8")

    def test_slo_disabled_is_404(self, paper_genmapper, registry):
        app = create_app(
            paper_genmapper,
            registry=registry,
            tracer=Tracer(enabled=False, registry=registry),
            event_log=None,
            slow_log=None,
            slo=None,
        )
        status, headers, payload = call(app, "GET", "/slo")
        assert status == 404
        assert payload["request_id"] == headers["X-Request-ID"]

    def test_burn_rate_rises_on_server_errors(
        self, paper_genmapper, registry, monkeypatch
    ):
        slo = SloTracker(registry=registry)
        app = create_app(
            paper_genmapper,
            registry=registry,
            tracer=Tracer(enabled=False, registry=registry),
            event_log=None,
            slow_log=None,
            slo=slo,
        )
        call(app, "GET", "/sources")
        from repro.web import app as web_app

        def explode(genmapper, environ, registry, tracer):
            raise RuntimeError("injected server error")

        monkeypatch.setattr(web_app, "_route", explode)
        status, __, __ = call(app, "GET", "/sources")
        assert status == 500
        window = slo.snapshot(publish=False)["windows"]["5m"]
        assert window["errors"] == 1
        assert window["availability_burn_rate"] > 1.0

    def test_client_errors_do_not_burn_availability(self, intel_app):
        app = intel_app[0]
        call(app, "GET", "/no/such/route/anywhere")
        __, __, payload = call(app, "GET", "/slo")
        assert payload["windows"]["5m"]["errors"] == 0


class TestSlowEndpointCorrelation:
    def test_slow_query_correlates_with_wide_event_and_exemplar(
        self, intel_app
    ):
        app, event_log, slow_log, __, events_path = intel_app
        status, headers, payload = call(
            app,
            "POST",
            "/query",
            body={"query": "ANNOTATE LocusLink WITH Hugo AND GO"},
        )
        assert status == 200
        request_id = headers["X-Request-ID"]

        # 1. the slow log captured it (threshold 0: everything is slow)
        __, __, debug = call(app, "GET", "/debug/slow")
        entry = next(
            e for e in debug["entries"] if e["trace_id"] == request_id
        )
        assert entry["route"] == "/query"
        assert entry["status"] == 200
        assert entry["duration_ms"] > 0
        assert entry["sql_count"] > 0
        for statement in entry["sql"]:
            assert set(statement) == {"sql", "bound_params"}
            assert "353" not in statement["sql"]  # binds never appear
        assert "query.run" in entry["stages_ms"]
        assert isinstance(entry["plan"], dict) and entry["plan"]
        assert entry["spec_digest"]

        # 2. the wide event of the same request carries the same ids
        event_log.close()
        records = [
            json.loads(line)
            for line in events_path.read_text().splitlines()
        ]
        record = next(r for r in records if r["trace_id"] == request_id)
        assert record["event"] == "http_request"
        assert record["route"] == "/query"
        assert record["status"] == 200
        assert record["slow"] is True
        assert record["spec_digest"] == entry["spec_digest"]
        assert record["sql_count"] == entry["sql_count"]
        assert record["rows"] >= 1
        assert "breaker_state" in record

        # 3. and the /metrics exemplar for the /query bucket links to it
        __, __, body = call_raw(
            app, "GET", "/metrics", query="format=openmetrics"
        )
        text = body.decode("utf-8")
        assert f'trace_id="{request_id}"' in text
        validate_openmetrics(text)

    def test_debug_slow_limit_and_stats(self, intel_app):
        app = intel_app[0]
        for __ in range(3):
            call(app, "GET", "/sources")
        __, __, debug = call(app, "GET", "/debug/slow", query="limit=2")
        assert len(debug["entries"]) == 2
        assert debug["captured_total"] >= 3
        assert debug["threshold_ms"] == 0.0

    def test_fast_requests_are_not_captured(
        self, paper_genmapper, registry
    ):
        slow_log = SlowQueryLog(threshold_ms=60_000.0, registry=registry)
        app = create_app(
            paper_genmapper,
            registry=registry,
            tracer=Tracer(enabled=False, registry=registry),
            event_log=None,
            slow_log=slow_log,
            slo=None,
        )
        call(app, "GET", "/sources")
        __, __, debug = call(app, "GET", "/debug/slow")
        assert debug["entries"] == []
        assert debug["captured_total"] == 0


class TestProfileEndpoint:
    def test_profile_returns_folded_plain_text(self, intel_app):
        app = intel_app[0]
        status, headers, body = call_raw(
            app, "GET", "/debug/profile", query="seconds=0.05&hz=500"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        for line in body.decode("utf-8").splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1
            assert stack

    def test_profile_seconds_is_clamped(self, intel_app):
        app = intel_app[0]
        started = time.perf_counter()
        status, __, __ = call_raw(
            app, "GET", "/debug/profile", query="seconds=0"
        )
        assert status == 200
        assert time.perf_counter() - started < 5.0


class TestErrorPayloads:
    def test_404_payload_carries_request_id(self, intel_app):
        app = intel_app[0]
        status, headers, payload = call(app, "GET", "/definitely/not/here")
        assert status == 404
        assert payload["request_id"] == headers["X-Request-ID"]

    def test_400_payload_carries_request_id(self, intel_app):
        app = intel_app[0]
        status, headers, payload = call(app, "POST", "/query")
        assert status == 400
        assert payload["request_id"] == headers["X-Request-ID"]

    def test_500_payload_carries_request_id(
        self, paper_genmapper, registry, monkeypatch
    ):
        app = create_app(
            paper_genmapper,
            registry=registry,
            tracer=Tracer(enabled=False, registry=registry),
            event_log=None,
            slow_log=None,
            slo=None,
        )
        from repro.web import app as web_app

        def explode(genmapper, environ, registry, tracer):
            raise RuntimeError("boom")

        monkeypatch.setattr(web_app, "_route", explode)
        status, headers, payload = call(app, "GET", "/sources")
        assert status == 500
        assert payload["request_id"] == headers["X-Request-ID"]
