"""Tests for the Compose operation (paper Section 4.2)."""

import pytest

from repro.gam.enums import RelType
from repro.gam.errors import UnknownMappingError
from repro.operators.compose import (
    compose,
    compose_mappings,
    compose_pair,
    materialization_rows,
    min_evidence,
    product_evidence,
)
from repro.operators.mapping import Mapping


def m(source, target, pairs, rel_type=RelType.FACT):
    return Mapping.build(source, target, pairs, rel_type)


class TestComposePair:
    def test_paper_example_unigene_go(self):
        # Unigene<->LocusLink composed with LocusLink<->GO gives Unigene<->GO.
        unigene_ll = m("Unigene", "LocusLink", [("Hs.28914", "353")])
        ll_go = m("LocusLink", "GO", [("353", "GO:0009116")])
        composed = compose_pair(unigene_ll, ll_go)
        assert composed.source == "Unigene"
        assert composed.target == "GO"
        assert composed.pair_set() == {("Hs.28914", "GO:0009116")}

    def test_result_is_composed_type(self):
        composed = compose_pair(
            m("A", "B", [("a", "b")]), m("B", "C", [("b", "c")])
        )
        assert composed.rel_type is RelType.COMPOSED

    def test_join_semantics_fan_out(self):
        first = m("A", "B", [("a1", "b1"), ("a2", "b1")])
        second = m("B", "C", [("b1", "c1"), ("b1", "c2")])
        composed = compose_pair(first, second)
        assert composed.pair_set() == {
            ("a1", "c1"), ("a1", "c2"), ("a2", "c1"), ("a2", "c2"),
        }

    def test_unmatched_intermediates_dropped(self):
        first = m("A", "B", [("a1", "b1"), ("a2", "b2")])
        second = m("B", "C", [("b1", "c1")])
        composed = compose_pair(first, second)
        assert composed.pair_set() == {("a1", "c1")}

    def test_mismatched_intermediate_rejected(self):
        with pytest.raises(ValueError, match="intermediate"):
            compose_pair(m("A", "B", []), m("X", "C", []))

    def test_product_evidence_combination(self):
        first = m("A", "B", [("a", "b", 0.8)])
        second = m("B", "C", [("b", "c", 0.5)])
        composed = compose_pair(first, second)
        assert composed.associations[0].evidence == pytest.approx(0.4)

    def test_min_evidence_combination(self):
        first = m("A", "B", [("a", "b", 0.8)])
        second = m("B", "C", [("b", "c", 0.5)])
        composed = compose_pair(first, second, combiner=min_evidence)
        assert composed.associations[0].evidence == pytest.approx(0.5)

    def test_strongest_chain_wins(self):
        # Two intermediate objects connect the same endpoints.
        first = m("A", "B", [("a", "b1", 1.0), ("a", "b2", 0.5)])
        second = m("B", "C", [("b1", "c", 0.6), ("b2", "c", 1.0)])
        composed = compose_pair(first, second)
        assert composed.associations[0].evidence == pytest.approx(0.6)


class TestComposeMappings:
    def test_single_mapping_passthrough(self):
        only = m("A", "B", [("a", "b")])
        assert compose_mappings([only]).pair_set() == only.pair_set()

    def test_three_leg_path(self):
        legs = [
            m("A", "B", [("a", "b")]),
            m("B", "C", [("b", "c")]),
            m("C", "D", [("c", "d")]),
        ]
        composed = compose_mappings(legs)
        assert composed.source == "A"
        assert composed.target == "D"
        assert composed.pair_set() == {("a", "d")}

    def test_associativity(self):
        legs = [
            m("A", "B", [("a1", "b1"), ("a2", "b2")]),
            m("B", "C", [("b1", "c1"), ("b2", "c1")]),
            m("C", "D", [("c1", "d1")]),
        ]
        left = compose_pair(compose_pair(legs[0], legs[1]), legs[2])
        right = compose_pair(legs[0], compose_pair(legs[1], legs[2]))
        assert left.pair_set() == right.pair_set()

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            compose_mappings([])


class TestComposeAgainstRepository:
    @pytest.fixture()
    def repo(self, paper_genmapper):
        return paper_genmapper.repository

    def test_two_source_path_returns_stored_mapping(self, repo):
        mapping = compose(repo, ["Unigene", "LocusLink"])
        assert mapping.rel_type is RelType.FACT
        assert ("Hs.28914", "353") in mapping

    def test_unigene_to_go_via_locuslink(self, repo):
        mapping = compose(repo, ["Unigene", "LocusLink", "GO"])
        assert mapping.pair_set() == {("Hs.28914", "GO:0009116")}
        assert mapping.rel_type is RelType.COMPOSED

    def test_missing_leg_raises(self, repo):
        with pytest.raises(UnknownMappingError):
            compose(repo, ["Unigene", "GO"])

    def test_short_path_rejected(self, repo):
        with pytest.raises(ValueError, match="two sources"):
            compose(repo, ["Unigene"])


class TestMaterializationRows:
    def test_rows_mirror_associations(self):
        mapping = m("A", "B", [("a", "b", 0.7)])
        assert materialization_rows(mapping) == [("a", "b", 0.7)]


class TestEvidenceCombiners:
    def test_product(self):
        assert product_evidence(0.5, 0.5) == pytest.approx(0.25)

    def test_min(self):
        assert min_evidence(0.5, 0.9) == pytest.approx(0.5)
