"""Tests for the query planner (EXPLAIN)."""


from repro.query.language import parse_query
from repro.query.plan import plan_query
from repro.query.session import run_query


class TestPlanQuery:
    def test_stored_mapping_planned_as_stored(self, paper_genmapper):
        spec = parse_query("ANNOTATE LocusLink WITH GO")
        plan = plan_query(paper_genmapper, spec)
        assert plan.executable
        target = plan.targets[0]
        assert target.kind == "stored"
        assert target.path == ("LocusLink", "GO")

    def test_missing_mapping_planned_as_composed(self, paper_genmapper):
        spec = parse_query("ANNOTATE Unigene WITH GO")
        plan = plan_query(paper_genmapper, spec)
        target = plan.targets[0]
        assert target.kind == "composed"
        assert target.path == ("Unigene", "LocusLink", "GO")

    def test_explicit_via_respected(self, paper_genmapper):
        spec = parse_query("ANNOTATE Unigene WITH GO VIA LocusLink")
        plan = plan_query(paper_genmapper, spec)
        assert plan.targets[0].path == ("Unigene", "LocusLink", "GO")
        assert plan.targets[0].kind == "composed"

    def test_unreachable_target(self, paper_genmapper):
        spec = parse_query("ANNOTATE LocusLink WITH GO.BiologicalProcess")
        plan = plan_query(paper_genmapper, spec)
        assert not plan.executable
        assert plan.targets[0].kind == "unreachable"

    def test_invalid_via_is_unreachable(self, paper_genmapper):
        spec = parse_query("ANNOTATE LocusLink WITH GO VIA OMIM")
        plan = plan_query(paper_genmapper, spec)
        assert plan.targets[0].kind == "unreachable"

    def test_estimate_uses_stored_counts(self, loaded_genmapper):
        spec = parse_query("ANNOTATE LocusLink WITH GO")
        plan = plan_query(loaded_genmapper, spec)
        mapping = loaded_genmapper.map("LocusLink", "GO")
        assert plan.targets[0].estimated_associations == len(mapping)

    def test_negation_carried(self, paper_genmapper):
        spec = parse_query("ANNOTATE LocusLink WITH NOT OMIM")
        plan = plan_query(paper_genmapper, spec)
        assert plan.targets[0].negated
        assert "NOT OMIM" in plan.render()

    def test_scope_rendered(self, paper_genmapper):
        spec = parse_query("ANNOTATE LocusLink OBJECTS 353 WITH GO")
        plan = plan_query(paper_genmapper, spec)
        assert plan.source_objects == 1
        assert "1 uploaded objects" in plan.render()

    def test_entire_source_rendered(self, paper_genmapper):
        spec = parse_query("ANNOTATE LocusLink WITH GO")
        plan = plan_query(paper_genmapper, spec)
        assert plan.source_objects is None
        assert "entire source" in plan.render()

    def test_unexecutable_plan_flagged_in_render(self, paper_genmapper):
        spec = parse_query("ANNOTATE LocusLink WITH GO.BiologicalProcess")
        text = plan_query(paper_genmapper, spec).render()
        assert "not executable" in text

    def test_plan_matches_execution(self, loaded_genmapper):
        """An executable plan's paths agree with what run_query resolves."""
        spec = parse_query("ANNOTATE NetAffx WITH GO AND OMIM")
        plan = plan_query(loaded_genmapper, spec)
        assert plan.executable
        view = run_query(loaded_genmapper, spec)
        assert view.columns == ("NetAffx", "GO", "OMIM")


class TestCliExplain:
    def test_explain_command(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD

        db = tmp_path / "gam.db"
        ll = tmp_path / "ll.txt"
        ll.write_text(LOCUS_353_RECORD)
        go = tmp_path / "go.obo"
        go.write_text(GO_MINI_OBO)
        main(["--db", str(db), "import", str(ll), "--source", "LocusLink"])
        main(["--db", str(db), "import", str(go), "--source", "GO"])
        capsys.readouterr()
        code = main(["--db", str(db), "explain",
                     "ANNOTATE LocusLink WITH GO AND NOT OMIM"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stored via LocusLink -> GO" in out
        assert "NOT OMIM" in out

    def test_explain_unreachable_returns_nonzero(self, tmp_path, capsys):
        from repro.cli import main
        from tests.conftest import LOCUS_353_RECORD

        db = tmp_path / "gam.db"
        ll = tmp_path / "ll.txt"
        ll.write_text(LOCUS_353_RECORD)
        main(["--db", str(db), "import", str(ll), "--source", "LocusLink"])
        capsys.readouterr()
        code = main(["--db", str(db), "explain",
                     "ANNOTATE LocusLink WITH Nowhere"])
        assert code == 1
