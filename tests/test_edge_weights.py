"""Tests for path-search edge weighting: trust-aware path preference."""

import networkx as nx
import pytest

from repro.gam.enums import RelType
from repro.pathfinder.graph import EDGE_WEIGHTS
from repro.pathfinder.search import path_cost, shortest_path


def weighted_graph(edges):
    """Build a graph from (a, b, rel_type) triples with standard weights."""
    graph = nx.MultiGraph()
    for node1, node2, rel_type in edges:
        graph.add_edge(
            node1, node2, rel_type=rel_type, weight=EDGE_WEIGHTS[rel_type]
        )
    return graph


class TestWeightOrdering:
    def test_fact_is_cheapest(self):
        assert EDGE_WEIGHTS[RelType.FACT] < EDGE_WEIGHTS[RelType.SIMILARITY]
        assert (
            EDGE_WEIGHTS[RelType.SIMILARITY] < EDGE_WEIGHTS[RelType.COMPOSED]
        )

    def test_every_mapping_type_weighted(self):
        from repro.gam.enums import MAPPING_TYPES

        assert set(EDGE_WEIGHTS) == set(MAPPING_TYPES)


class TestPathPreference:
    def test_equal_length_prefers_fact_chain(self):
        # A -Fact- B -Fact- C (cost 2.0) vs A -Similarity- X -Similarity- C
        # (cost 2.5): the curated chain wins.
        graph = weighted_graph(
            [
                ("A", "B", RelType.FACT),
                ("B", "C", RelType.FACT),
                ("A", "X", RelType.SIMILARITY),
                ("X", "C", RelType.SIMILARITY),
            ]
        )
        assert shortest_path(graph, "A", "C") == ("A", "B", "C")

    def test_materialized_composed_beats_long_fact_chain(self):
        # Direct Composed edge (1.5) vs two Fact hops (2.0).
        graph = weighted_graph(
            [
                ("A", "C", RelType.COMPOSED),
                ("A", "B", RelType.FACT),
                ("B", "C", RelType.FACT),
            ]
        )
        assert shortest_path(graph, "A", "C") == ("A", "C")

    def test_single_fact_hop_beats_composed_shortcut(self):
        graph = weighted_graph(
            [
                ("A", "C", RelType.COMPOSED),
                ("A", "C", RelType.FACT),
            ]
        )
        # Both are one hop; the cheaper parallel edge sets the cost.
        assert path_cost(graph, ("A", "C")) == pytest.approx(
            EDGE_WEIGHTS[RelType.FACT]
        )

    def test_similarity_bridge_used_when_only_option(self):
        graph = weighted_graph(
            [
                ("A", "B", RelType.FACT),
                ("B", "C", RelType.SIMILARITY),
            ]
        )
        path = shortest_path(graph, "A", "C")
        assert path == ("A", "B", "C")
        assert path_cost(graph, path) == pytest.approx(1.0 + 1.25)


class TestAgainstRealDatabase:
    def test_materialization_shortens_paths(self, universe_dir):
        from repro.core.genmapper import GenMapper

        with GenMapper() as gm:
            gm.integrate_directory(universe_dir)
            before = gm.find_path("Unigene", "GO")
            assert len(before) == 3  # via LocusLink
            gm.compose(["Unigene", "LocusLink", "GO"], materialize=True)
            after = gm.find_path("Unigene", "GO")
            assert after == ("Unigene", "GO")

    def test_goa_similarity_edge_present(self, loaded_genmapper):
        graph = loaded_genmapper.source_graph()
        data = graph.get_edge_data("GOA", "GO")
        assert data is not None
        types = {attrs["rel_type"] for attrs in data.values()}
        assert RelType.SIMILARITY in types
