"""Tests for noise injection on mappings (repro.datagen.noise)."""

import numpy as np
import pytest

from repro.datagen.noise import degrade_evidence, drop, rewire
from repro.operators.mapping import Mapping


@pytest.fixture()
def mapping():
    pairs = [(f"s{i}", f"t{i % 10}") for i in range(100)]
    return Mapping.build("A", "B", pairs)


@pytest.fixture()
def rng():
    return np.random.default_rng(5)


class TestRewire:
    def test_zero_rate_is_identity(self, mapping, rng):
        noisy, corrupted = rewire(mapping, 0.0, rng)
        assert noisy.pair_set() == mapping.pair_set()
        assert corrupted == set()

    def test_rate_one_rewires_everything(self, mapping, rng):
        noisy, corrupted = rewire(mapping, 1.0, rng)
        assert corrupted
        # No original pair survives except accidental re-collisions.
        assert noisy.pair_set() & mapping.pair_set() <= mapping.pair_set()
        assert len(corrupted) >= 0.8 * len(mapping)

    def test_corrupted_pairs_are_in_noisy_not_truth(self, mapping, rng):
        noisy, corrupted = rewire(mapping, 0.3, rng)
        assert corrupted <= noisy.pair_set()
        assert not corrupted & mapping.pair_set()

    def test_rewired_associations_carry_reduced_evidence(self, mapping, rng):
        noisy, corrupted = rewire(mapping, 0.5, rng, evidence=0.4)
        for pair in corrupted:
            assoc = next(
                a
                for a in noisy
                if (a.source_accession, a.target_accession) == pair
            )
            assert assoc.evidence == pytest.approx(0.4)

    def test_size_preserved(self, mapping, rng):
        noisy, __ = rewire(mapping, 0.3, rng)
        # Rewiring may merge onto an existing pair, so <=.
        assert len(noisy) <= len(mapping)
        assert len(noisy) >= 0.9 * len(mapping)

    def test_deterministic_given_rng_seed(self, mapping):
        first, c1 = rewire(mapping, 0.3, np.random.default_rng(9))
        second, c2 = rewire(mapping, 0.3, np.random.default_rng(9))
        assert first.pair_set() == second.pair_set()
        assert c1 == c2

    def test_invalid_rate_rejected(self, mapping, rng):
        with pytest.raises(ValueError):
            rewire(mapping, 1.5, rng)

    def test_tiny_range_returns_unchanged(self, rng):
        mapping = Mapping.build("A", "B", [("s1", "t1")])
        noisy, corrupted = rewire(mapping, 1.0, rng)
        assert noisy.pair_set() == mapping.pair_set()
        assert corrupted == set()


class TestDegradeEvidence:
    def test_pairs_unchanged(self, mapping, rng):
        degraded = degrade_evidence(mapping, 0.5, rng)
        assert degraded.pair_set() == mapping.pair_set()

    def test_evidence_within_bounds(self, mapping, rng):
        degraded = degrade_evidence(mapping, 1.0, rng, low=0.2, high=0.7)
        for assoc in degraded:
            assert 0.2 <= assoc.evidence <= 0.7

    def test_zero_rate_keeps_evidence(self, mapping, rng):
        degraded = degrade_evidence(mapping, 0.0, rng)
        assert all(a.evidence == 1.0 for a in degraded)

    def test_invalid_rate_rejected(self, mapping, rng):
        with pytest.raises(ValueError):
            degrade_evidence(mapping, -0.1, rng)


class TestDrop:
    def test_drop_removes_fraction(self, mapping, rng):
        dropped = drop(mapping, 0.5, rng)
        assert dropped.pair_set() < mapping.pair_set()
        assert 0.3 * len(mapping) <= len(dropped) <= 0.7 * len(mapping)

    def test_drop_zero_is_identity(self, mapping, rng):
        assert drop(mapping, 0.0, rng).pair_set() == mapping.pair_set()

    def test_drop_all(self, mapping, rng):
        assert drop(mapping, 1.0, rng).is_empty()

    def test_invalid_rate_rejected(self, mapping, rng):
        with pytest.raises(ValueError):
            drop(mapping, 2.0, rng)


class TestComposeUnderNoise:
    def test_precision_degrades_with_noise(self, rng):
        """The paper's caveat, quantified: composing through a noisy
        mapping produces wrong associations roughly at the noise rate."""
        from repro.operators.compose import compose_pair

        ab = Mapping.build(
            "A", "B", [(f"a{i}", f"b{i}") for i in range(200)]
        )
        bc = Mapping.build(
            "B", "C", [(f"b{i}", f"c{i}") for i in range(200)]
        )
        truth = {(f"a{i}", f"c{i}") for i in range(200)}
        noisy_ab, __ = rewire(ab, 0.2, rng)
        composed = compose_pair(noisy_ab, bc)
        correct = len(composed.pair_set() & truth)
        precision = correct / len(composed)
        assert 0.7 <= precision <= 0.9  # ~1 - rate

    def test_evidence_flags_untrusted_chains(self, rng):
        from repro.operators.compose import compose_pair

        ab = Mapping.build("A", "B", [(f"a{i}", f"b{i}") for i in range(50)])
        bc = Mapping.build("B", "C", [(f"b{i}", f"c{i}") for i in range(50)])
        truth = {(f"a{i}", f"c{i}") for i in range(50)}
        noisy_ab, corrupted = rewire(ab, 0.3, rng, evidence=0.5)
        composed = compose_pair(noisy_ab, bc)
        # Filtering by evidence recovers perfect precision: every wrong
        # chain went through a rewired (low-evidence) association.
        trusted = composed.filter_evidence(0.9)
        assert trusted.pair_set() <= truth
