"""Tests for the IS_A taxonomy DAG."""

import pytest

from repro.gam.errors import GamIntegrityError
from repro.taxonomy.dag import Taxonomy


@pytest.fixture()
def diamond():
    r"""A DAG with a diamond::

            root
            /  \
           a    b
            \  /
             c
             |
             d
    """
    return Taxonomy(
        [
            ("a", "root"),
            ("b", "root"),
            ("c", "a"),
            ("c", "b"),
            ("d", "c"),
        ]
    )


class TestBasics:
    def test_terms(self, diamond):
        assert diamond.terms == {"root", "a", "b", "c", "d"}
        assert len(diamond) == 5

    def test_contains(self, diamond):
        assert "c" in diamond
        assert "zzz" not in diamond

    def test_parents_and_children(self, diamond):
        assert diamond.parents("c") == {"a", "b"}
        assert diamond.children("root") == {"a", "b"}

    def test_roots_and_leaves(self, diamond):
        assert diamond.roots() == {"root"}
        assert diamond.leaves() == {"d"}

    def test_unknown_term_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.parents("zzz")

    def test_self_parent_rejected(self):
        with pytest.raises(GamIntegrityError, match="own parent"):
            Taxonomy([("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(GamIntegrityError, match="cycle"):
            Taxonomy([("a", "b"), ("b", "c"), ("c", "a")])

    def test_topological_iteration_parents_first(self, diamond):
        order = list(diamond)
        assert order.index("root") < order.index("a")
        assert order.index("a") < order.index("c")
        assert order.index("c") < order.index("d")


class TestClosures:
    def test_ancestors(self, diamond):
        assert diamond.ancestors("d") == {"c", "a", "b", "root"}

    def test_ancestors_include_self(self, diamond):
        assert "d" in diamond.ancestors("d", include_self=True)

    def test_descendants(self, diamond):
        assert diamond.descendants("a") == {"c", "d"}

    def test_descendants_of_leaf_empty(self, diamond):
        assert diamond.descendants("d") == set()

    def test_subsumed_pairs_are_transitive_closure(self, diamond):
        pairs = set(diamond.subsumed_pairs())
        assert ("root", "d") in pairs
        assert ("a", "d") in pairs
        assert ("c", "d") in pairs
        assert ("d", "root") not in pairs

    def test_subsumed_pairs_count(self, diamond):
        # root subsumes a,b,c,d; a and b subsume c,d; c subsumes d.
        assert len(set(diamond.subsumed_pairs())) == 4 + 2 + 2 + 1

    def test_subsumed_matches_descendants(self, diamond):
        pairs = set(diamond.subsumed_pairs())
        for term in diamond.terms:
            expected = {(term, d) for d in diamond.descendants(term)}
            actual = {p for p in pairs if p[0] == term}
            assert actual == expected


class TestMetrics:
    def test_depths(self, diamond):
        assert diamond.depth("root") == 0
        assert diamond.depth("a") == 1
        assert diamond.depth("c") == 2
        assert diamond.depth("d") == 3

    def test_max_depth(self, diamond):
        assert diamond.max_depth() == 3

    def test_level(self, diamond):
        assert diamond.level(1) == {"a", "b"}

    def test_empty_taxonomy(self):
        taxonomy = Taxonomy([])
        assert len(taxonomy) == 0
        assert taxonomy.max_depth() == 0

    def test_from_mapping(self):
        from repro.operators.mapping import Mapping

        mapping = Mapping.build("GO", "GO", [("child", "parent")])
        taxonomy = Taxonomy.from_mapping(mapping)
        assert taxonomy.parents("child") == {"parent"}
