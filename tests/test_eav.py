"""Tests for the EAV staging layer: model, dataset and TSV round trips."""

import pytest

from repro.eav.io import read_eav, write_eav
from repro.eav.model import (
    CONTAINS_TARGET,
    IS_A_TARGET,
    NAME_TARGET,
    RESERVED_TARGETS,
    EavRow,
)
from repro.eav.store import EavDataset
from repro.gam.errors import ParseError


class TestEavRow:
    def test_tuple_round_trip_full(self):
        row = EavRow("353", "GO", "GO:0009116", "nucleoside metabolism", 2.5, 0.8)
        assert EavRow.from_tuple(row.as_tuple()) == row

    def test_tuple_round_trip_minimal(self):
        row = EavRow("353", "Location", "16q24")
        assert EavRow.from_tuple(row.as_tuple()) == row

    def test_from_tuple_accepts_four_columns(self):
        row = EavRow.from_tuple(("353", "Hugo", "APRT", "a name"))
        assert row.text == "a name"
        assert row.evidence == 1.0

    def test_from_tuple_empty_text_is_none(self):
        row = EavRow.from_tuple(("353", "Location", "16q24", ""))
        assert row.text is None

    def test_reserved_targets(self):
        assert NAME_TARGET in RESERVED_TARGETS
        assert IS_A_TARGET in RESERVED_TARGETS
        assert CONTAINS_TARGET in RESERVED_TARGETS
        assert "GO" not in RESERVED_TARGETS


class TestEavDataset:
    @pytest.fixture()
    def dataset(self):
        return EavDataset(
            "LocusLink",
            [
                EavRow("353", "Hugo", "APRT", "adenine phosphoribosyltransferase"),
                EavRow("353", "Location", "16q24"),
                EavRow("353", "GO", "GO:0009116", "nucleoside metabolism"),
                EavRow("354", "Hugo", "GP1BB"),
                EavRow("354", IS_A_TARGET, "353"),
            ],
            release="2003-10",
        )

    def test_len_and_iteration(self, dataset):
        assert len(dataset) == 5
        assert len(list(dataset)) == 5

    def test_entities_in_first_seen_order(self, dataset):
        assert dataset.entities() == ["353", "354"]

    def test_targets_in_first_seen_order(self, dataset):
        assert dataset.targets() == ["Hugo", "Location", "GO", IS_A_TARGET]

    def test_annotation_targets_exclude_reserved(self, dataset):
        assert dataset.annotation_targets() == ["Hugo", "Location", "GO"]

    def test_rows_for_target(self, dataset):
        rows = dataset.rows_for_target("Hugo")
        assert [row.entity for row in rows] == ["353", "354"]

    def test_rows_for_entity(self, dataset):
        rows = dataset.rows_for_entity("353")
        assert len(rows) == 3

    def test_target_counts(self, dataset):
        counts = dataset.target_counts()
        assert counts["Hugo"] == 2
        assert counts["Location"] == 1

    def test_equality(self):
        rows = [EavRow("1", "Hugo", "A")]
        assert EavDataset("X", rows) == EavDataset("X", list(rows))
        assert EavDataset("X", rows) != EavDataset("Y", rows)

    def test_summary_mentions_counts(self, dataset):
        summary = dataset.summary()
        assert "entities=2" in summary
        assert "rows=5" in summary


class TestEavIo:
    def test_round_trip(self, tmp_path):
        dataset = EavDataset(
            "LocusLink",
            [
                EavRow("353", "Hugo", "APRT", "adenine phosphoribosyltransferase"),
                EavRow("353", "GO", "GO:0009116", None, None, 0.9),
                EavRow("354", "Number", "2.5", None, 2.5),
            ],
            release="2003-10",
        )
        path = tmp_path / "ll.eav"
        write_eav(dataset, path)
        loaded = read_eav(path)
        assert loaded == dataset

    def test_header_carries_source_and_release(self, tmp_path):
        dataset = EavDataset("GO", [EavRow("a", "Name", "x", "x")], release="r9")
        path = tmp_path / "go.eav"
        write_eav(dataset, path)
        first_line = path.read_text().splitlines()[0]
        assert "source=GO" in first_line
        assert "release=r9" in first_line

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.eav"
        path.write_text("353\tHugo\tAPRT\n")
        with pytest.raises(ParseError, match="header"):
            read_eav(path)

    def test_missing_source_rejected(self, tmp_path):
        path = tmp_path / "bad.eav"
        path.write_text("#eav release=r1\n#cols\n")
        with pytest.raises(ParseError, match="source"):
            read_eav(path)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "bad.eav"
        path.write_text("#eav source=X\n#cols\n353\tHugo\n")
        with pytest.raises(ParseError, match="columns"):
            read_eav(path)

    def test_bad_number_rejected(self, tmp_path):
        path = tmp_path / "bad.eav"
        path.write_text("#eav source=X\n#cols\n353\tHugo\tAPRT\t\tnot-a-number\n")
        with pytest.raises(ParseError, match="numeric"):
            read_eav(path)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ok.eav"
        path.write_text(
            "#eav source=X\n#entity\ttarget\taccession\n\n# comment\n353\tHugo\tAPRT\n"
        )
        loaded = read_eav(path)
        assert len(loaded) == 1

    def test_write_creates_parent_directories(self, tmp_path):
        dataset = EavDataset("X", [EavRow("1", "Hugo", "A")])
        path = tmp_path / "deep" / "dir" / "x.eav"
        write_eav(dataset, path)
        assert path.exists()
