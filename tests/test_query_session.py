"""Tests for the interactive QuerySession (Figure 6 workflow)."""

import pytest

from repro.gam.errors import QuerySpecError, UnknownSourceError
from repro.query.session import QuerySession, run_query
from repro.query.spec import QuerySpec, QueryTarget


@pytest.fixture()
def session(paper_genmapper):
    return QuerySession(paper_genmapper)


class TestSourceSelection:
    def test_available_sources(self, session):
        assert "LocusLink" in session.available_sources()

    def test_select_unknown_source_rejected(self, session):
        with pytest.raises(UnknownSourceError):
            session.select_source("Nope")

    def test_actions_before_selection_rejected(self, session):
        with pytest.raises(QuerySpecError, match="select a source"):
            session.upload_accessions(["353"])


class TestAccessionUpload:
    def test_upload_list(self, session):
        session.select_source("LocusLink").upload_accessions(["353", " 354 "])
        assert session.spec
        spec = session.add_target("Hugo").spec()
        assert spec.accessions == frozenset({"353", "354"})

    def test_upload_file(self, session, tmp_path):
        path = tmp_path / "accessions.txt"
        path.write_text("353\n\n354\n")
        session.select_source("LocusLink").upload_accession_file(path)
        spec = session.add_target("Hugo").spec()
        assert spec.accessions == frozenset({"353", "354"})

    def test_entire_source_default(self, session):
        session.select_source("LocusLink")
        spec = session.add_target("Hugo").spec()
        assert spec.accessions is None


class TestTargetsAndPaths:
    def test_available_targets_reachable_only(self, session):
        session.select_source("LocusLink")
        targets = session.available_targets()
        assert "GO" in targets
        assert "LocusLink" not in targets

    def test_suggest_path(self, session):
        session.select_source("Unigene")
        assert session.suggest_path("GO") == ("Unigene", "LocusLink", "GO")

    def test_suggest_alternative_paths(self, session):
        session.select_source("Unigene")
        paths = session.suggest_paths("GO", k=2)
        assert paths[0] == ("Unigene", "LocusLink", "GO")

    def test_add_target_with_saved_path(self, session, paper_genmapper):
        paper_genmapper.save_path("route", ["Unigene", "LocusLink", "GO"])
        session.select_source("Unigene").add_target("GO", saved_path="route")
        spec = session.spec()
        assert spec.targets[0].via == ("LocusLink",)

    def test_saved_path_endpoints_checked(self, session, paper_genmapper):
        paper_genmapper.save_path("route", ["Unigene", "LocusLink", "GO"])
        session.select_source("LocusLink")
        with pytest.raises(QuerySpecError, match="connects"):
            session.add_target("GO", saved_path="route")

    def test_clear_targets(self, session):
        session.select_source("LocusLink").add_target("Hugo").clear_targets()
        with pytest.raises(QuerySpecError, match="at least one target"):
            session.spec()


class TestExecution:
    def test_run_produces_view(self, session):
        view = (
            session.select_source("LocusLink")
            .add_target("Hugo")
            .add_target("GO")
            .combine_with("OR")
            .run()
        )
        assert view.columns == ("LocusLink", "Hugo", "GO")
        assert ("353", "APRT", "GO:0009116") in view.rows

    def test_last_view_requires_run(self, session):
        session.select_source("LocusLink")
        with pytest.raises(QuerySpecError, match="no query"):
            session.last_view()

    def test_object_info_after_query(self, session):
        session.select_source("LocusLink").add_target("Hugo").run()
        info = session.object_info("353")
        assert any(partner == "Hugo" for partner, __, __a in info)

    def test_refine_restricts_next_query(self, session):
        session.select_source("LocusLink").add_target("Hugo").run()
        session.refine(["353"]).add_target("GO")
        spec = session.spec()
        assert spec.accessions == frozenset({"353"})
        assert [target.name for target in spec.targets] == ["GO"]

    def test_refine_rejects_foreign_accessions(self, session):
        session.select_source("LocusLink").add_target("Hugo").run()
        with pytest.raises(QuerySpecError, match="not in the last result"):
            session.refine(["999"])

    def test_export_last_view(self, session, tmp_path):
        session.select_source("LocusLink").add_target("Hugo").run()
        path = session.export(tmp_path / "view.tsv")
        assert path.read_text().startswith("LocusLink\tHugo")

    def test_reselecting_source_resets_state(self, session):
        session.select_source("LocusLink").upload_accessions(["353"])
        session.add_target("Hugo")
        session.select_source("Unigene")
        session.add_target("GO")
        spec = session.spec()
        assert spec.source == "Unigene"
        assert spec.accessions is None
        assert [t.name for t in spec.targets] == ["GO"]


class TestRunQueryFunction:
    def test_run_query_standalone(self, paper_genmapper):
        spec = QuerySpec.build(
            "LocusLink",
            [QueryTarget("GO"), QueryTarget("OMIM", negated=True)],
            combine="AND",
        )
        view = run_query(paper_genmapper, spec)
        # Locus 353 has both GO and OMIM annotations, so NOT OMIM drops it.
        assert view.is_empty()


class TestEngineChoice:
    def test_sql_engine_produces_same_view(self, paper_genmapper):
        memory_view = (
            QuerySession(paper_genmapper)
            .select_source("LocusLink")
            .add_target("Hugo")
            .add_target("GO")
            .combine_with("AND")
            .run()
        )
        sql_view = (
            QuerySession(paper_genmapper)
            .select_source("LocusLink")
            .add_target("Hugo")
            .add_target("GO")
            .combine_with("AND")
            .use_engine("sql")
            .run()
        )
        assert set(sql_view.rows) == set(memory_view.rows)

    def test_unknown_engine_rejected(self, paper_genmapper):
        with pytest.raises(QuerySpecError, match="engine"):
            QuerySession(paper_genmapper).use_engine("quantum")
