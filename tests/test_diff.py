"""Tests for release diffing (repro.importer.diff)."""

import pytest

from repro.eav.model import EavRow
from repro.eav.store import EavDataset
from repro.gam.errors import ImportError_
from repro.importer.diff import diff_against_store, diff_datasets


def release(name, rows, label):
    return EavDataset(name, rows, release=label)


@pytest.fixture()
def old():
    return release(
        "LocusLink",
        [
            EavRow("353", "Name", "adenine phosphoribosyltransferase",
                   "adenine phosphoribosyltransferase"),
            EavRow("353", "GO", "GO:0009116"),
            EavRow("354", "Name", "glycoprotein Ib", "glycoprotein Ib"),
            EavRow("354", "GO", "GO:0007155"),
        ],
        "2003-01",
    )


@pytest.fixture()
def new():
    return release(
        "LocusLink",
        [
            EavRow("353", "Name", "adenine phosphoribosyltransferase",
                   "adenine phosphoribosyltransferase"),
            EavRow("353", "GO", "GO:0009116"),
            EavRow("353", "GO", "GO:0016757"),       # added association
            EavRow("354", "Name", "glycoprotein Ib beta",
                   "glycoprotein Ib beta"),           # renamed
            # 354's GO association removed upstream
            EavRow("355", "Name", "new gene", "new gene"),  # added entity
            EavRow("355", "GO", "GO:0007155"),
        ],
        "2003-10",
    )


class TestDiffDatasets:
    def test_identical_releases_empty(self, old):
        diff = diff_datasets(old, old)
        assert diff.is_empty
        assert "no changes" in diff.render()

    def test_added_and_removed_entities(self, old, new):
        diff = diff_datasets(old, new)
        assert diff.added_entities == {"355"}
        assert diff.removed_entities == set()

    def test_removed_entity_detected(self, old, new):
        reverse = diff_datasets(new, old)
        assert reverse.removed_entities == {"355"}

    def test_renames_detected(self, old, new):
        diff = diff_datasets(old, new)
        assert diff.renamed_entities == {
            ("354", "glycoprotein Ib", "glycoprotein Ib beta"),
        }

    def test_association_changes_per_target(self, old, new):
        diff = diff_datasets(old, new)
        go = next(target for target in diff.targets if target.target == "GO")
        assert ("353", "GO:0016757") in go.added
        assert ("355", "GO:0007155") in go.added
        assert ("354", "GO:0007155") in go.removed

    def test_counts(self, old, new):
        diff = diff_datasets(old, new)
        assert diff.added_association_count() == 2
        assert diff.removed_association_count() == 1

    def test_release_labels_carried(self, old, new):
        diff = diff_datasets(old, new)
        assert diff.old_release == "2003-01"
        assert diff.new_release == "2003-10"

    def test_render_mentions_changes(self, old, new):
        text = diff_datasets(old, new).render()
        assert "+1 entities" in text
        assert "GO: +2 / -1" in text
        assert "glycoprotein Ib beta" in text

    def test_different_sources_rejected(self, old):
        other = release("GO", [], "x")
        with pytest.raises(ImportError_, match="different sources"):
            diff_datasets(old, other)


class TestDiffAgainstStore:
    def test_everything_added_when_source_unknown(self, genmapper, new):
        diff = diff_against_store(genmapper.repository, new)
        assert diff.added_entities == {"353", "354", "355"}
        assert diff.removed_entities == set()

    def test_no_changes_after_import(self, genmapper, old):
        genmapper.integrate_dataset(old)
        diff = diff_against_store(genmapper.repository, old)
        assert not diff.added_entities
        assert diff.added_association_count() == 0

    def test_incremental_release_detected(self, genmapper, old, new):
        genmapper.integrate_dataset(old)
        diff = diff_against_store(genmapper.repository, new)
        assert diff.added_entities == {"355"}
        go = next(target for target in diff.targets if target.target == "GO")
        assert ("353", "GO:0016757") in go.added

    def test_import_after_diff_applies_additions(self, genmapper, old, new):
        genmapper.integrate_dataset(old)
        diff = diff_against_store(genmapper.repository, new)
        report = genmapper.integrate_dataset(new)
        assert report.new_objects == len(diff.added_entities)
