"""Tests for the HTTP edge: keyset pagination, conditional GET,
streaming bodies and rate limiting (``docs/http_api.md``).

The WSGI callable is driven directly (no sockets).  ``loaded_genmapper``
(session-scoped, read-only here) provides a universe large enough for
multi-page walks; mutation tests build on the function-scoped
``paper_genmapper``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import MetricsRegistry
from repro.reliability.ratelimit import RateLimiter
from repro.web.app import create_app
from repro.web.streaming import StreamJson, encode_chunks


def call(app, method, path, query="", body=None, headers=None):
    """Invoke a WSGI app; returns (status, headers dict, raw bytes)."""
    raw = json.dumps(body).encode() if body is not None else b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "REMOTE_ADDR": "127.0.0.1",
        "wsgi.input": io.BytesIO(raw),
    }
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value
    captured = {}

    def start_response(status, response_headers, exc_info=None):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    chunks = app(environ, start_response)
    payload = b"".join(chunks)
    close = getattr(chunks, "close", None)
    if close is not None:
        close()
    return captured["status"], captured["headers"], payload


def get_json(app, path, query="", headers=None):
    status, response_headers, body = call(
        app, "GET", path, query=query, headers=headers
    )
    return status, response_headers, json.loads(body)


def make_app(genmapper, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("event_log", None)
    kwargs.setdefault("slow_log", None)
    kwargs.setdefault("slo", None)
    return create_app(genmapper, **kwargs)


@pytest.fixture()
def big_app(loaded_genmapper):
    return make_app(loaded_genmapper)


@pytest.fixture()
def small_app(paper_genmapper):
    return make_app(paper_genmapper)


class TestKeysetPagination:
    def test_keyset_walk_equals_offset_walk(self, loaded_genmapper, big_app):
        source = loaded_genmapper.sources()[0].name
        by_offset = []
        offset = 0
        while True:
            _, __, page = get_json(
                big_app,
                f"/sources/{source}/objects",
                f"limit=7&offset={offset}",
            )
            if not page["objects"]:
                break
            by_offset.extend(o["accession"] for o in page["objects"])
            offset += 7
        by_cursor = []
        cursor = None
        pages = 0
        while True:
            query = "limit=7" + (f"&after={cursor}" if cursor else "")
            _, __, page = get_json(
                big_app, f"/sources/{source}/objects", query
            )
            by_cursor.extend(o["accession"] for o in page["objects"])
            pages += 1
            cursor = page["next"]
            if cursor is None:
                break
        assert by_cursor == by_offset
        assert len(by_cursor) == page["total"]
        assert pages == -(-page["total"] // 7)

    def test_cursor_is_generation_stamped(self, loaded_genmapper, big_app):
        source = loaded_genmapper.sources()[0].name
        generation = loaded_genmapper.db.data_generation()
        _, __, page = get_json(big_app, f"/sources/{source}/objects", "limit=1")
        assert page["generation"] == generation
        assert page["next"].startswith(f"g{generation}:")
        assert "cursor_stale" not in page

    def test_stale_cursor_still_pages_but_is_flagged(self, paper_genmapper):
        app = make_app(paper_genmapper)
        _, __, first = get_json(app, "/sources/GO/objects", "limit=1")
        cursor = first["next"]
        paper_genmapper.db.bump_generation()
        _, __, page = get_json(
            app, "/sources/GO/objects", f"limit=1&after={cursor}"
        )
        assert page["cursor_stale"] is True
        assert page["after"] == cursor
        # Keyset semantics hold across the write: strictly past the cursor.
        previous = cursor.split(":", 1)[1]
        assert all(o["accession"] > previous for o in page["objects"])

    def test_bare_accession_cursor_is_accepted(self, big_app, loaded_genmapper):
        source = loaded_genmapper.sources()[0].name
        _, __, page = get_json(big_app, f"/sources/{source}/objects", "limit=2")
        boundary = page["objects"][-1]["accession"]
        _, __, resumed = get_json(
            big_app, f"/sources/{source}/objects", f"limit=2&after={boundary}"
        )
        assert "cursor_stale" not in resumed
        assert resumed["objects"][0]["accession"] > boundary

    def test_last_page_has_no_next(self, small_app):
        _, __, page = get_json(small_app, "/sources/GO/objects", "limit=100")
        assert len(page["objects"]) == page["total"] == 3
        assert page["next"] is None

    def test_limit_zero_streams_whole_source(self, big_app, loaded_genmapper):
        source = loaded_genmapper.sources()[0].name
        status, headers, body = call(
            big_app, "GET", f"/sources/{source}/objects", "limit=0"
        )
        payload = json.loads(body)
        assert status == 200
        assert "Content-Length" not in headers
        assert len(payload["objects"]) == payload["total"]
        assert payload["next"] is None


class TestRequestValidation:
    @pytest.mark.parametrize(
        ("path", "query"),
        [
            ("/sources/GO/objects", "limit=abc"),
            ("/sources/GO/objects", "offset=1.5"),
            ("/sources/GO/objects", "limit=-1"),
            ("/sources/GO/objects", "offset=-5"),
            ("/paths", "source=LocusLink&target=GO&k=zzz"),
            ("/paths", "source=LocusLink&target=GO&k=0"),
            ("/sources/GO/objects", "stream=maybe"),
        ],
    )
    def test_malformed_parameters_are_400_not_500(
        self, small_app, path, query
    ):
        status, headers, payload = get_json(small_app, path, query)
        assert status == 400
        assert payload["request_id"]
        assert payload["request_id"] == headers["X-Request-ID"]

    def test_negative_offset_never_slices_from_the_end(self, small_app):
        # offset=-5 used to be applied as a Python slice from the end.
        status, _, payload = get_json(
            small_app, "/sources/GO/objects", "limit=2&offset=-5"
        )
        assert status == 400
        assert "offset" in payload["error"]

    def test_defaults_survive_blank_values(self, small_app):
        status, _, payload = get_json(small_app, "/sources/GO/objects", "limit=")
        assert status == 200
        assert payload["limit"] == 100


class TestMultiVia:
    def test_repeated_via_parameters_pin_the_full_path(self, small_app):
        # Unigene -> LocusLink -> GO spelled out hop by hop; both via
        # values must reach the composer (only the first used to).
        status, _, payload = get_json(
            small_app, "/map", "source=Unigene&target=GO&via=LocusLink"
        )
        assert status == 200
        assert payload["via"] == ["LocusLink"]
        direct = payload["associations"]
        status, _, payload = get_json(
            small_app,
            "/map",
            "source=Hugo&target=GO&via=LocusLink&via=LocusLink",
        )
        # A nonsensical repeated hop must be *attempted* (and fail),
        # not silently truncated to the first value.
        assert status == 400
        status, _, payload = get_json(
            small_app, "/map", "source=Hugo&target=GO&via=LocusLink"
        )
        assert status == 200
        assert payload["via"] == ["LocusLink"]
        assert direct  # sanity: the stored composition produced rows


class TestConditionalGet:
    def test_etag_roundtrip_yields_304(self, small_app):
        status, headers, body = call(small_app, "GET", "/sources/GO/objects")
        assert status == 200
        etag = headers["ETag"]
        assert headers["Cache-Control"] == "no-cache"
        status, headers, body = call(
            small_app,
            "GET",
            "/sources/GO/objects",
            headers={"If-None-Match": etag},
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_etag_moves_with_the_data_generation(self, paper_genmapper):
        app = make_app(paper_genmapper)
        _, headers, _ = call(app, "GET", "/sources/GO/objects")
        etag = headers["ETag"]
        paper_genmapper.db.bump_generation()
        status, headers, _ = call(
            app, "GET", "/sources/GO/objects", headers={"If-None-Match": etag}
        )
        assert status == 200  # stale validator: full response again
        assert headers["ETag"] != etag

    def test_etag_varies_by_url(self, small_app):
        _, first, _ = call(small_app, "GET", "/sources/GO/objects", "limit=1")
        _, second, _ = call(small_app, "GET", "/sources/GO/objects", "limit=2")
        assert first["ETag"] != second["ETag"]

    def test_weak_and_list_validators_match(self, small_app):
        _, headers, _ = call(small_app, "GET", "/stats")
        etag = headers["ETag"]
        status, _, _ = call(
            small_app,
            "GET",
            "/stats",
            headers={"If-None-Match": f'"nope", W/{etag}'},
        )
        assert status == 304
        status, _, _ = call(
            small_app, "GET", "/stats", headers={"If-None-Match": "*"}
        )
        assert status == 304

    def test_observability_surface_is_never_conditional(self, small_app):
        for path in ("/metrics", "/health"):
            _, headers, _ = call(small_app, "GET", path)
            assert "ETag" not in headers

    def test_not_modified_is_counted(self, paper_genmapper):
        registry = MetricsRegistry()
        app = make_app(paper_genmapper, registry=registry)
        _, headers, _ = call(app, "GET", "/stats")
        call(app, "GET", "/stats", headers={"If-None-Match": headers["ETag"]})
        assert registry.counter("edge.not_modified").value == 1


class TestStreaming:
    def test_streamed_body_is_byte_identical_to_buffered(
        self, big_app, loaded_genmapper
    ):
        source = loaded_genmapper.sources()[0].name
        for path, query in (
            (f"/sources/{source}/objects", "limit=50"),
            ("/map", "source=LocusLink&target=GO"),
        ):
            _, buffered_headers, buffered = call(
                big_app, "GET", path, f"{query}&stream=0"
            )
            _, streamed_headers, streamed = call(
                big_app, "GET", path, f"{query}&stream=1"
            )
            assert streamed == buffered
            assert "Content-Length" in buffered_headers
            assert "Content-Length" not in streamed_headers

    def test_query_post_streams_byte_identically(self, big_app, loaded_genmapper):
        from repro.analysis.coverage import source_coverage

        source = loaded_genmapper.sources()[0].name
        targets = [
            entry.target
            for entry in source_coverage(
                loaded_genmapper.repository, loaded_genmapper.source(source)
            )
        ]
        body = {"source": source, "targets": [{"name": targets[0]}]}
        _, __, buffered = call(
            big_app, "POST", "/query", query="stream=0", body=body
        )
        _, __, streamed = call(
            big_app, "POST", "/query", query="stream=1", body=body
        )
        assert streamed == buffered
        assert json.loads(buffered)["row_count"] >= 1

    def test_threshold_decides_default_mode(self, loaded_genmapper):
        app = make_app(loaded_genmapper, stream_threshold=1)
        source = loaded_genmapper.sources()[0].name
        _, headers, _ = call(app, "GET", f"/sources/{source}/objects", "limit=5")
        assert "Content-Length" not in headers  # 5 rows >= threshold 1
        app = make_app(loaded_genmapper, stream_threshold=10_000)
        _, headers, _ = call(app, "GET", f"/sources/{source}/objects", "limit=5")
        assert "Content-Length" in headers

    def test_streamed_responses_are_counted(self, loaded_genmapper):
        registry = MetricsRegistry()
        app = make_app(loaded_genmapper, registry=registry, stream_threshold=1)
        source = loaded_genmapper.sources()[0].name
        call(app, "GET", f"/sources/{source}/objects", "limit=3")
        assert registry.counter("edge.streamed_responses").value == 1

    def test_metrics_finalize_after_streamed_body_is_consumed(
        self, loaded_genmapper
    ):
        registry = MetricsRegistry()
        app = make_app(loaded_genmapper, registry=registry, stream_threshold=1)
        source = loaded_genmapper.sources()[0].name
        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": f"/sources/{source}/objects",
            "QUERY_STRING": "limit=3",
            "wsgi.input": io.BytesIO(b""),
        }
        body = app(environ, lambda status, headers, exc_info=None: None)
        counter = registry.counter(
            "http_requests_total",
            method="GET",
            route="/sources/{name}/objects",
            status="200",
        )
        assert counter.value == 0  # handler returned, body not yet written
        list(body)
        body.close()
        assert counter.value == 1
        assert registry.gauge("http_requests_in_flight").value == 0

    def test_abandoned_streamed_body_still_finalizes_once(
        self, loaded_genmapper
    ):
        registry = MetricsRegistry()
        app = make_app(loaded_genmapper, registry=registry, stream_threshold=1)
        source = loaded_genmapper.sources()[0].name
        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": f"/sources/{source}/objects",
            "QUERY_STRING": "limit=0",
            "wsgi.input": io.BytesIO(b""),
        }
        body = app(environ, lambda status, headers, exc_info=None: None)
        next(iter(body))  # client goes away after the first chunk
        body.close()
        body.close()  # idempotent
        assert registry.gauge("http_requests_in_flight").value == 0
        counter = registry.counter(
            "http_requests_total",
            method="GET",
            route="/sources/{name}/objects",
            status="200",
        )
        assert counter.value == 1


class TestStreamJsonEncoder:
    def test_byte_identity_over_tricky_payloads(self):
        cases = [
            ({"rows": None}, "rows", []),
            ({"a": 1, "rows": None, "z": {"nested": [1, 2]}}, "rows", [[1, "x"]]),
            (
                {"rows": None, "note": "uniçøde\n"},
                "rows",
                [{"k": "v✓"}, {"k": None}],
            ),
        ]
        for payload, field, rows in cases:
            sj = StreamJson(dict(payload), field, iter(rows))
            streamed = b"".join(sj.encode(chunk_bytes=8))
            materialized = StreamJson(dict(payload), field, iter(rows)).materialize()
            assert streamed == json.dumps(materialized, indent=2).encode()

    def test_unknown_stream_field_is_rejected(self):
        with pytest.raises(ValueError):
            StreamJson({"a": 1}, "rows", [])

    def test_chunks_are_bounded_ish(self):
        parts = ["x" * 10] * 100
        chunks = list(encode_chunks(parts, chunk_bytes=64))
        assert b"".join(chunks) == b"x" * 1000
        assert all(len(chunk) <= 80 for chunk in chunks)
        assert len(chunks) > 5


class TestRateLimiting:
    def make_limited_app(self, genmapper, rate=1.0, burst=2.0, **kwargs):
        clock = {"now": 0.0}
        registry = kwargs.pop("registry", MetricsRegistry())
        limiter = RateLimiter(
            rate, burst=burst, clock=lambda: clock["now"], registry=registry
        )
        app = make_app(
            genmapper, registry=registry, rate_limiter=limiter, **kwargs
        )
        return app, clock, registry

    def test_burst_then_429_with_retry_after(self, paper_genmapper):
        app, clock, _ = self.make_limited_app(paper_genmapper)
        assert call(app, "GET", "/stats")[0] == 200
        assert call(app, "GET", "/stats")[0] == 200
        status, headers, body = call(app, "GET", "/stats")
        assert status == 429
        assert headers["Retry-After"] == "1"
        payload = json.loads(body)
        assert payload["request_id"]
        assert "rate limit" in payload["error"]

    def test_bucket_refills_with_time(self, paper_genmapper):
        app, clock, _ = self.make_limited_app(paper_genmapper)
        call(app, "GET", "/stats")
        call(app, "GET", "/stats")
        assert call(app, "GET", "/stats")[0] == 429
        clock["now"] += 1.0  # one token accrues
        assert call(app, "GET", "/stats")[0] == 200
        assert call(app, "GET", "/stats")[0] == 429

    def test_clients_are_isolated(self, paper_genmapper):
        app, clock, _ = self.make_limited_app(paper_genmapper)
        call(app, "GET", "/stats")
        call(app, "GET", "/stats")
        assert call(app, "GET", "/stats")[0] == 429
        status, _, _ = call(
            app, "GET", "/stats", headers={"X-Forwarded-For": "10.0.0.9, proxy"}
        )
        assert status == 200

    def test_health_and_metrics_are_exempt(self, paper_genmapper):
        app, clock, _ = self.make_limited_app(paper_genmapper)
        for _ in range(10):
            assert call(app, "GET", "/health")[0] == 200
            assert call(app, "GET", "/metrics")[0] == 200
        assert call(app, "GET", "/stats")[0] == 200  # bucket untouched

    def test_open_breaker_raises_the_cost(self, paper_genmapper):
        app, clock, _ = self.make_limited_app(paper_genmapper, rate=1.0, burst=8.0)
        breaker = paper_genmapper.breaker
        for _ in range(breaker.failure_threshold):
            breaker.record_failure()
        assert breaker.state != "closed"
        # burst 8 / degraded cost 4 = only two requests before shedding;
        # the breaker itself then answers 503 for what *is* admitted.
        statuses = [call(app, "GET", "/stats")[0] for _ in range(4)]
        assert statuses.count(429) >= 2

    def test_denied_requests_charge_nothing(self, paper_genmapper):
        app, clock, _ = self.make_limited_app(paper_genmapper)
        call(app, "GET", "/stats")
        call(app, "GET", "/stats")
        for _ in range(25):  # hammering while limited must not push
            call(app, "GET", "/stats")  # Retry-After further out
        clock["now"] += 1.0
        assert call(app, "GET", "/stats")[0] == 200

    def test_decisions_are_counted(self, paper_genmapper):
        app, clock, registry = self.make_limited_app(paper_genmapper)
        call(app, "GET", "/stats")
        call(app, "GET", "/stats")
        call(app, "GET", "/stats")
        assert registry.counter("edge.rate_allowed").value == 2
        assert registry.counter("edge.rate_limited").value == 1


class TestRateLimiterUnit:
    def test_retry_after_is_exact(self):
        clock = {"now": 0.0}
        limiter = RateLimiter(
            2.0, burst=1.0, clock=lambda: clock["now"], registry=MetricsRegistry()
        )
        assert limiter.check("c").allowed
        denied = limiter.check("c")
        assert not denied.allowed
        assert denied.retry_after == pytest.approx(0.5)

    def test_client_state_is_bounded(self):
        limiter = RateLimiter(
            1.0, burst=1.0, max_clients=4, registry=MetricsRegistry()
        )
        for index in range(10):
            limiter.check(f"client-{index}")
        stats = limiter.stats()
        assert stats["clients"] == 4
        assert stats["evicted_clients"] == 6

    def test_env_construction(self, monkeypatch):
        from repro.reliability.ratelimit import limiter_from_env

        monkeypatch.delenv("REPRO_RATE_LIMIT", raising=False)
        assert limiter_from_env(MetricsRegistry()) is None
        monkeypatch.setenv("REPRO_RATE_LIMIT", "12.5")
        monkeypatch.setenv("REPRO_RATE_BURST", "40")
        limiter = limiter_from_env(MetricsRegistry())
        assert limiter.rate == 12.5
        assert limiter.burst == 40.0
        monkeypatch.setenv("REPRO_RATE_LIMIT", "not-a-number")
        assert limiter_from_env(MetricsRegistry()) is None
