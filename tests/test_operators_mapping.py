"""Tests for the Mapping value object and its Table 2 operations."""

import pytest

from repro.gam.enums import RelType
from repro.gam.records import Association
from repro.operators.mapping import Mapping


@pytest.fixture()
def mapping():
    """The paper's Table 2 example: {s1<->t1, s2<->t2}."""
    return Mapping.build("S", "T", [("s1", "t1"), ("s2", "t2")])


class TestBuild:
    def test_build_deduplicates_pairs(self):
        mapping = Mapping.build("S", "T", [("s1", "t1"), ("s1", "t1")])
        assert len(mapping) == 1

    def test_build_keeps_highest_evidence(self):
        mapping = Mapping.build(
            "S", "T", [("s1", "t1", 0.4), ("s1", "t1", 0.9)]
        )
        assert mapping.associations[0].evidence == pytest.approx(0.9)

    def test_build_sorts_associations(self):
        mapping = Mapping.build("S", "T", [("s2", "t2"), ("s1", "t1")])
        assert [a.source_accession for a in mapping] == ["s1", "s2"]

    def test_default_evidence_is_one(self, mapping):
        assert all(a.evidence == 1.0 for a in mapping)


class TestTable2Operations:
    def test_domain_matches_paper_example(self, mapping):
        assert mapping.domain() == {"s1", "s2"}

    def test_range_matches_paper_example(self, mapping):
        assert mapping.range() == {"t1", "t2"}

    def test_restrict_domain_matches_paper_example(self, mapping):
        restricted = mapping.restrict_domain({"s1"})
        assert restricted.pair_set() == {("s1", "t1")}

    def test_restrict_range_matches_paper_example(self, mapping):
        restricted = mapping.restrict_range({"t2"})
        assert restricted.pair_set() == {("s2", "t2")}

    def test_restrict_domain_keeps_endpoints(self, mapping):
        restricted = mapping.restrict_domain({"s1"})
        assert restricted.source == "S"
        assert restricted.target == "T"

    def test_restrict_to_nothing_is_empty(self, mapping):
        assert mapping.restrict_domain(set()).is_empty()


class TestContainerProtocol:
    def test_len(self, mapping):
        assert len(mapping) == 2

    def test_iteration_yields_associations(self, mapping):
        assert all(isinstance(a, Association) for a in mapping)

    def test_contains_pair(self, mapping):
        assert ("s1", "t1") in mapping
        assert ("s1", "t2") not in mapping

    def test_contains_association(self, mapping):
        assert Association("s1", "t1") in mapping


class TestDerivedViews:
    def test_invert_swaps_orientation(self, mapping):
        inverted = mapping.invert()
        assert inverted.source == "T"
        assert inverted.target == "S"
        assert inverted.pair_set() == {("t1", "s1"), ("t2", "s2")}

    def test_invert_twice_is_identity(self, mapping):
        assert mapping.invert().invert().pair_set() == mapping.pair_set()

    def test_targets_of(self):
        mapping = Mapping.build("S", "T", [("s1", "t2"), ("s1", "t1")])
        assert mapping.targets_of("s1") == ["t1", "t2"]
        assert mapping.targets_of("missing") == []

    def test_as_dict_groups_by_source(self):
        mapping = Mapping.build("S", "T", [("s1", "t1"), ("s1", "t2")])
        grouped = mapping.as_dict()
        assert set(grouped) == {"s1"}
        assert len(grouped["s1"]) == 2

    def test_filter_evidence(self):
        mapping = Mapping.build(
            "S", "T", [("s1", "t1", 0.9), ("s2", "t2", 0.3)]
        )
        assert mapping.filter_evidence(0.5).pair_set() == {("s1", "t1")}

    def test_min_evidence(self):
        mapping = Mapping.build(
            "S", "T", [("s1", "t1", 0.9), ("s2", "t2", 0.3)]
        )
        assert mapping.min_evidence() == pytest.approx(0.3)

    def test_min_evidence_of_empty_mapping(self):
        assert Mapping.build("S", "T", []).min_evidence() == 1.0

    def test_describe_mentions_sizes(self, mapping):
        text = mapping.describe()
        assert "2 associations" in text
        assert "S" in text and "T" in text

    def test_rel_type_preserved_through_restrict(self):
        mapping = Mapping.build(
            "S", "T", [("s1", "t1")], rel_type=RelType.COMPOSED
        )
        assert mapping.restrict_domain({"s1"}).rel_type is RelType.COMPOSED
