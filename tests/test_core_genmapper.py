"""Tests for the GenMapper facade — the public API surface."""

import pytest

from repro.core.genmapper import GenMapper
from repro.gam.enums import CombineMethod, RelType
from repro.gam.errors import UnknownSourceError
from repro.operators.generate_view import TargetSpec
from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD, UNIGENE_MINI


class TestIntegration:
    def test_integrate_text_and_sources(self, genmapper):
        genmapper.integrate_text(LOCUS_353_RECORD, "LocusLink")
        names = {source.name for source in genmapper.sources()}
        assert "LocusLink" in names
        assert "GO" in names  # created as an annotation target

    def test_integrate_file(self, genmapper, tmp_path):
        path = tmp_path / "ll.txt"
        path.write_text(LOCUS_353_RECORD)
        report = genmapper.integrate_file(path, source_name="LocusLink")
        assert report.new_objects == 1

    def test_accessions_and_objects(self, paper_genmapper):
        assert paper_genmapper.accessions("LocusLink") == {"353"}
        objects = paper_genmapper.objects("LocusLink")
        assert objects[0].text == "adenine phosphoribosyltransferase"

    def test_source_lookup_raises_for_unknown(self, genmapper):
        with pytest.raises(UnknownSourceError):
            genmapper.source("Nope")

    def test_object_info_lists_figure_1_annotations(self, paper_genmapper):
        info = paper_genmapper.object_info("LocusLink", "353")
        partners = {partner for partner, __, __a in info}
        assert {"Hugo", "GO", "Location", "OMIM", "Enzyme"} <= partners


class TestMapAndCompose:
    def test_map_uses_stored_mapping(self, paper_genmapper):
        mapping = paper_genmapper.map("LocusLink", "GO")
        assert mapping.rel_type is RelType.FACT
        assert ("353", "GO:0009116") in mapping

    def test_map_falls_back_to_compose(self, paper_genmapper):
        mapping = paper_genmapper.map("Unigene", "GO")
        assert mapping.rel_type is RelType.COMPOSED
        assert mapping.pair_set() == {("Hs.28914", "GO:0009116")}

    def test_map_with_explicit_via(self, paper_genmapper):
        mapping = paper_genmapper.map("Unigene", "GO", via=["LocusLink"])
        assert mapping.pair_set() == {("Hs.28914", "GO:0009116")}

    def test_compose_with_materialize(self, paper_genmapper):
        paper_genmapper.compose(
            ["Unigene", "LocusLink", "GO"], materialize=True
        )
        stored = paper_genmapper.map("Unigene", "GO")
        assert stored.rel_type is RelType.COMPOSED

    def test_materialize_mapping_directly(self, paper_genmapper):
        mapping = paper_genmapper.map("Unigene", "GO")
        inserted = paper_genmapper.materialize(mapping)
        assert inserted == 1


class TestGenerateView:
    def test_figure_3_shape(self, paper_genmapper):
        view = paper_genmapper.generate_view(
            "LocusLink", ["Hugo", "GO", "Location", "OMIM"], combine="OR"
        )
        assert view.columns == ("LocusLink", "Hugo", "GO", "Location", "OMIM")
        assert ("353", "APRT", "GO:0009116", "16q24", "102600") in view.rows

    def test_target_tuple_shorthand(self, paper_genmapper):
        view = paper_genmapper.generate_view(
            "LocusLink", [("GO", {"GO:0009116"})], combine="AND"
        )
        assert len(view) == 1

    def test_negated_tuple_shorthand(self, paper_genmapper):
        view = paper_genmapper.generate_view(
            "LocusLink", [("OMIM", None, True)], combine="AND"
        )
        assert view.is_empty()  # 353 has an OMIM annotation

    def test_target_spec_objects(self, paper_genmapper):
        view = paper_genmapper.generate_view(
            "LocusLink",
            [TargetSpec.of("GO", restrict={"GO:9999999"})],
            combine=CombineMethod.AND,
        )
        assert view.is_empty()

    def test_bad_target_type_rejected(self, paper_genmapper):
        with pytest.raises(TypeError, match="view target"):
            paper_genmapper.generate_view("LocusLink", [42])

    def test_source_objects_default_to_whole_source(self, paper_genmapper):
        view = paper_genmapper.generate_view("LocusLink", ["Hugo"])
        assert view.source_objects() == ["353"]

    def test_view_through_composed_target(self, paper_genmapper):
        view = paper_genmapper.generate_view("Unigene", ["GO"], combine="AND")
        assert set(view.rows) == {("Hs.28914", "GO:0009116")}


class TestDerivedAndPaths:
    def test_derive_subsumed(self, paper_genmapper):
        inserted = paper_genmapper.derive_subsumed("GO")
        assert inserted == 3

    def test_taxonomy_access(self, paper_genmapper):
        taxonomy = paper_genmapper.taxonomy("GO")
        assert taxonomy.depth("GO:0009116") == 2

    def test_subsumed_on_the_fly(self, paper_genmapper):
        mapping = paper_genmapper.subsumed("GO")
        assert ("GO:0008150", "GO:0009116") in mapping

    def test_find_path_and_alternatives(self, paper_genmapper):
        assert paper_genmapper.find_path("Unigene", "GO") == (
            "Unigene", "LocusLink", "GO",
        )
        paths = paper_genmapper.find_paths("Unigene", "GO", k=3)
        assert paths[0] == ("Unigene", "LocusLink", "GO")

    def test_save_and_load_path(self, paper_genmapper):
        paper_genmapper.save_path("go-route", ["Unigene", "LocusLink", "GO"])
        assert paper_genmapper.load_path("go-route") == (
            "Unigene", "LocusLink", "GO",
        )

    def test_graph_cache_invalidated_on_import(self, genmapper):
        genmapper.integrate_text(LOCUS_353_RECORD, "LocusLink")
        first = genmapper.source_graph()
        genmapper.integrate_text(UNIGENE_MINI, "Unigene")
        second = genmapper.source_graph()
        # The Unigene import adds new mappings (e.g. Unigene <-> Hugo).
        assert second.number_of_edges() > first.number_of_edges()

    def test_graph_cached_between_reads(self, paper_genmapper):
        assert paper_genmapper.source_graph() is paper_genmapper.source_graph()


class TestStatsAndIntegrity:
    def test_stats_shape(self, paper_genmapper):
        stats = paper_genmapper.stats()
        for key in ("sources", "objects", "mappings", "associations"):
            assert stats[key] > 0

    def test_integrity_ok(self, paper_genmapper):
        assert paper_genmapper.check_integrity().ok

    def test_context_manager_closes(self, tmp_path):
        with GenMapper(tmp_path / "gam.db") as gm:
            gm.integrate_text(GO_MINI_OBO, "GO")
        with GenMapper(tmp_path / "gam.db") as gm:
            assert gm.accessions("GO") == {
                "GO:0008150", "GO:0009117", "GO:0009116",
            }
