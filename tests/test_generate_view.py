"""Tests for GenerateView (paper Figure 5), including a brute-force
reference implementation the operator must agree with."""

import pytest

from repro.gam.enums import CombineMethod
from repro.gam.errors import ViewGenerationError
from repro.operators.generate_view import TargetSpec, generate_view
from repro.operators.mapping import Mapping


def make_resolver(mappings):
    """A resolver over a dict {target_name: Mapping}."""

    def resolver(source, spec):
        return mappings[spec.name]

    return resolver


@pytest.fixture()
def world():
    """A small world: genes g1..g4 with partial annotations.

    g1: hugo A, go G1, omim O1
    g2: hugo B, go G1+G2
    g3: hugo C
    g4: (nothing)
    """
    return {
        "Hugo": Mapping.build(
            "S", "Hugo", [("g1", "A"), ("g2", "B"), ("g3", "C")]
        ),
        "GO": Mapping.build(
            "S", "GO", [("g1", "G1"), ("g2", "G1"), ("g2", "G2")]
        ),
        "OMIM": Mapping.build("S", "OMIM", [("g1", "O1")]),
    }


def reference_generate_view(mappings, source, objects, specs, combine):
    """Brute-force implementation of the Figure 5 pseudo-code."""
    objects = sorted(set(objects))
    rows = [(obj,) for obj in objects]
    for spec in specs:
        mapping = mappings[spec.name]
        pairs = [
            (a.source_accession, a.target_accession)
            for a in mapping
            if a.source_accession in objects
            and (spec.restrict is None or a.target_accession in spec.restrict)
        ]
        if spec.negated:
            involved = {s for s, __ in pairs}
            uninvolved = [obj for obj in objects if obj not in involved]
            negated_pairs = [
                (a.source_accession, a.target_accession)
                for a in mapping
                if a.source_accession in uninvolved
            ]
            by_source = {}
            for s, t in negated_pairs:
                by_source.setdefault(s, []).append(t)
            for obj in uninvolved:
                by_source.setdefault(obj, [None])
            pairs_dict = by_source
        else:
            pairs_dict = {}
            for s, t in pairs:
                pairs_dict.setdefault(s, []).append(t)
        new_rows = []
        for row in rows:
            partners = sorted(
                set(pairs_dict.get(row[0], [])),
                key=lambda v: (v is None, v or ""),
            )
            if partners:
                new_rows.extend(row + (p,) for p in partners)
            elif combine == CombineMethod.OR:
                new_rows.append(row + (None,))
        rows = new_rows
    return set(rows)


class TestBasicJoins:
    def test_and_keeps_fully_annotated_objects(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g1", "g2", "g3", "g4"],
            [TargetSpec.of("Hugo"), TargetSpec.of("OMIM")], "AND",
        )
        assert set(view.rows) == {("g1", "A", "O1")}

    def test_or_preserves_unannotated_objects(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g1", "g4"],
            [TargetSpec.of("Hugo")], "OR",
        )
        assert set(view.rows) == {("g1", "A"), ("g4", None)}

    def test_multi_valued_targets_fan_out(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g2"], [TargetSpec.of("GO")], "AND"
        )
        assert set(view.rows) == {("g2", "G1"), ("g2", "G2")}

    def test_columns_are_source_then_targets(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g1"],
            [TargetSpec.of("Hugo"), TargetSpec.of("GO")], "AND",
        )
        assert view.columns == ("S", "Hugo", "GO")

    def test_no_targets_returns_object_list(self, world):
        view = generate_view(make_resolver(world), "S", ["g2", "g1"], [], "AND")
        assert view.rows == (("g1",), ("g2",))

    def test_duplicate_targets_rejected(self, world):
        with pytest.raises(ViewGenerationError, match="duplicate"):
            generate_view(
                make_resolver(world), "S", ["g1"],
                [TargetSpec.of("Hugo"), TargetSpec.of("Hugo")], "AND",
            )

    def test_source_objects_deduplicated(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g1", "g1"], [TargetSpec.of("Hugo")],
            "AND",
        )
        assert len(view) == 1


class TestRestriction:
    def test_target_restriction_filters_range(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g1", "g2"],
            [TargetSpec.of("GO", restrict={"G2"})], "AND",
        )
        assert set(view.rows) == {("g2", "G2")}

    def test_restriction_with_or_keeps_others_as_null(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g1", "g2"],
            [TargetSpec.of("GO", restrict={"G2"})], "OR",
        )
        assert set(view.rows) == {("g1", None), ("g2", "G2")}


class TestNegation:
    def test_negated_target_keeps_objects_without_annotation(self, world):
        view = generate_view(
            make_resolver(world), "S", ["g1", "g2", "g3"],
            [TargetSpec.of("OMIM", negated=True)], "AND",
        )
        # g1 has OMIM O1 and is excluded; g2/g3 have no OMIM at all and
        # are preserved with NULL (right outer join with si').
        assert set(view.rows) == {("g2", None), ("g3", None)}

    def test_negation_of_restricted_values_shows_other_annotations(self, world):
        # Negating GO IN (G2): g2 is excluded (has G2); g1 lacks G2 and its
        # other GO annotation (G1) is shown; g3 has no GO at all -> NULL.
        view = generate_view(
            make_resolver(world), "S", ["g1", "g2", "g3"],
            [TargetSpec.of("GO", restrict={"G2"}, negated=True)], "AND",
        )
        assert set(view.rows) == {("g1", "G1"), ("g3", None)}

    def test_paper_query_pattern(self, world):
        # "genes with a GO function but not associated with OMIM diseases"
        view = generate_view(
            make_resolver(world), "S", ["g1", "g2", "g3", "g4"],
            [TargetSpec.of("GO"), TargetSpec.of("OMIM", negated=True)], "AND",
        )
        sources = {row[0] for row in view.rows}
        assert sources == {"g2"}


class TestAgainstReference:
    @pytest.mark.parametrize("combine", ["AND", "OR"])
    @pytest.mark.parametrize(
        "spec_list",
        [
            [TargetSpec.of("Hugo")],
            [TargetSpec.of("Hugo"), TargetSpec.of("GO")],
            [TargetSpec.of("GO", restrict={"G1"})],
            [TargetSpec.of("OMIM", negated=True)],
            [TargetSpec.of("Hugo"), TargetSpec.of("OMIM", negated=True)],
            [
                TargetSpec.of("Hugo"),
                TargetSpec.of("GO", restrict={"G2"}, negated=True),
                TargetSpec.of("OMIM"),
            ],
        ],
    )
    def test_matches_brute_force_reference(self, world, combine, spec_list):
        objects = ["g1", "g2", "g3", "g4"]
        view = generate_view(
            make_resolver(world), "S", objects, spec_list, combine
        )
        expected = reference_generate_view(
            world, "S", objects, spec_list, CombineMethod.parse(combine)
        )
        assert set(view.rows) == expected
