"""Tests for ontology/protein/disease parsers, the generic TSV parser and
the parser registry."""

import pytest

from repro.eav.model import CONTAINS_TARGET, IS_A_TARGET, NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.gam.errors import ParseError
from repro.parsers.base import get_parser, has_parser, registered_parsers
from repro.parsers.enzyme import EnzymeParser
from repro.parsers.generic_tsv import GenericTsvParser
from repro.parsers.go_obo import GoOboParser
from repro.parsers.interpro import InterProParser
from repro.parsers.omim import OmimParser
from repro.parsers.swissprot import SwissProtParser
from tests.conftest import GO_MINI_OBO


class TestGoOboParser:
    def test_names_parsed(self):
        rows = GoOboParser().parse_text(GO_MINI_OBO).rows
        assert (
            EavRow(
                "GO:0009116",
                NAME_TARGET,
                "nucleoside metabolism",
                "nucleoside metabolism",
            )
            in rows
        )

    def test_is_a_edges_parsed(self):
        rows = GoOboParser().parse_text(GO_MINI_OBO).rows
        assert EavRow("GO:0009116", IS_A_TARGET, "GO:0009117") in rows
        assert EavRow("GO:0009117", IS_A_TARGET, "GO:0008150") in rows

    def test_namespace_becomes_contains_partition(self):
        rows = GoOboParser().parse_text(GO_MINI_OBO).rows
        assert (
            EavRow("GO.BiologicalProcess", CONTAINS_TARGET, "GO:0009116") in rows
        )

    def test_obsolete_terms_dropped(self):
        text = "[Term]\nid: GO:1\nname: dead\nis_obsolete: true\n"
        assert len(GoOboParser().parse_text(text)) == 0

    def test_non_term_stanzas_ignored(self):
        text = "[Typedef]\nid: part_of\nname: part of\n" + GO_MINI_OBO
        rows = GoOboParser().parse_text(text).rows
        assert all(row.entity != "part_of" for row in rows)

    def test_is_a_comment_stripped(self):
        text = "[Term]\nid: GO:2\nis_a: GO:1 ! the parent\n"
        rows = GoOboParser().parse_text(text).rows
        assert rows == [EavRow("GO:2", IS_A_TARGET, "GO:1")]

    def test_xref_becomes_annotation(self):
        text = "[Term]\nid: GO:2\nxref: Enzyme:2.4.2.7\n"
        rows = GoOboParser().parse_text(text).rows
        assert EavRow("GO:2", "Enzyme", "2.4.2.7") in rows

    def test_declares_network_structure(self):
        assert GoOboParser.structure is SourceStructure.NETWORK


class TestEnzymeParser:
    TEXT = "ID   2.4.2.7\nDE   Adenine phosphoribosyltransferase.\n//\n"

    def test_name_parsed_without_trailing_dot(self):
        rows = EnzymeParser().parse_text(self.TEXT).rows
        names = [r for r in rows if r.target == NAME_TARGET]
        assert names[0].accession == "Adenine phosphoribosyltransferase"

    def test_hierarchy_synthesized_from_ec_number(self):
        rows = EnzymeParser().parse_text(self.TEXT).rows
        is_a = {(r.entity, r.accession) for r in rows if r.target == IS_A_TARGET}
        assert ("2.4.2.7", "2.4.2") in is_a
        assert ("2.4.2", "2.4") in is_a
        assert ("2.4", "2") in is_a

    def test_shared_classes_emitted_once(self):
        text = "ID   2.4.2.7\n//\nID   2.4.2.8\n//\n"
        rows = EnzymeParser().parse_text(text).rows
        parents = [r for r in rows if (r.entity, r.accession) == ("2.4.2", "2.4")]
        assert len(parents) == 1

    def test_comment_lines_skipped(self):
        text = "CC   a comment\nID   1.1.1.1\n//\n"
        rows = EnzymeParser().parse_text(text).rows
        assert any(r.entity == "1.1.1.1" for r in rows)


class TestOmimParser:
    TEXT = (
        "*RECORD*\n*FIELD* NO\n102600\n*FIELD* TI\n"
        "#102600 APRT DEFICIENCY\n*FIELD* CS\nsome clinical text\n"
        "*RECORD*\n*FIELD* NO\n141900\n*FIELD* TI\nHEMOGLOBIN\n"
    )

    def test_entries_and_titles(self):
        rows = OmimParser().parse_text(self.TEXT).rows
        assert EavRow("102600", NAME_TARGET, "102600 APRT DEFICIENCY",
                      "102600 APRT DEFICIENCY") in rows
        assert any(r.entity == "141900" for r in rows)

    def test_clinical_fields_ignored(self):
        rows = OmimParser().parse_text(self.TEXT).rows
        assert all("clinical" not in r.accession for r in rows)

    def test_only_first_title_line_used(self):
        text = "*RECORD*\n*FIELD* NO\n1\n*FIELD* TI\nTITLE ONE\nmore title text\n"
        rows = OmimParser().parse_text(text).rows
        assert len(rows) == 1
        assert rows[0].accession == "TITLE ONE"


class TestSwissProtParser:
    TEXT = (
        "ID   APRT_HUMAN\n"
        "AC   P07741; Q9BZX1;\n"
        "DE   Adenine phosphoribosyltransferase.\n"
        "GN   APRT\n"
        "DR   InterPro; IPR000312; Phosphoribosyltransferase.\n"
        "DR   GO; GO:0009116; nucleoside metabolism.\n"
        "DR   Enzyme; 2.4.2.7; -.\n"
        "//\n"
    )

    def test_primary_accession_is_entity(self):
        dataset = SwissProtParser().parse_text(self.TEXT)
        assert dataset.entities() == ["P07741"]

    def test_dr_lines_become_annotations(self):
        rows = SwissProtParser().parse_text(self.TEXT).rows
        assert EavRow("P07741", "InterPro", "IPR000312",
                      "Phosphoribosyltransferase") in rows
        assert EavRow("P07741", "Enzyme", "2.4.2.7") in rows

    def test_gene_symbol_becomes_hugo(self):
        rows = SwissProtParser().parse_text(self.TEXT).rows
        assert EavRow("P07741", "Hugo", "APRT") in rows

    def test_de_line_becomes_name(self):
        rows = SwissProtParser().parse_text(self.TEXT).rows
        names = [r for r in rows if r.target == NAME_TARGET]
        assert names[0].accession == "Adenine phosphoribosyltransferase"

    def test_fields_before_ac_are_buffered(self):
        # DE precedes AC here; the row must still attach to the accession.
        text = "DE   Some protein.\nAC   P1;\n//\n"
        rows = SwissProtParser().parse_text(text).rows
        assert rows == [EavRow("P1", NAME_TARGET, "Some protein", "Some protein")]

    def test_malformed_dr_rejected(self):
        with pytest.raises(ParseError, match="DR"):
            SwissProtParser().parse_text("AC   P1;\nDR   InterPro\n//\n")

    def test_declares_protein_content(self):
        assert SwissProtParser.content is SourceContent.PROTEIN


class TestInterProParser:
    TEXT = (
        "accession\tname\tparent\tgo\n"
        "IPR000312\tPRTase family\t\tGO:0009116|GO:0016757\n"
        "IPR000999\tPRTase subfamily\tIPR000312\t\n"
    )

    def test_hierarchy_parsed(self):
        rows = InterProParser().parse_text(self.TEXT).rows
        assert EavRow("IPR000999", IS_A_TARGET, "IPR000312") in rows

    def test_go_cross_references_split(self):
        rows = InterProParser().parse_text(self.TEXT).rows
        go = {r.accession for r in rows if r.target == "GO"}
        assert go == {"GO:0009116", "GO:0016757"}

    def test_missing_accession_column_rejected(self):
        with pytest.raises(ParseError, match="accession"):
            InterProParser().parse_text("name\tparent\nx\ty\n")


class TestGenericTsvParser:
    TEXT = (
        "#source: VendorX\n"
        "#content: Gene\n"
        "id\tName\tGO\tLocusLink\n"
        "p1\tprobe one\tGO:1|GO:2\t353\n"
        "p2\tprobe two\t\t354\n"
    )

    def test_directives_configure_parser(self):
        parser = GenericTsvParser()
        dataset = parser.parse_text(self.TEXT)
        assert dataset.source_name == "VendorX"
        assert parser.content is SourceContent.GENE

    def test_multi_values_split(self):
        rows = GenericTsvParser().parse_text(self.TEXT).rows
        go = [r for r in rows if r.target == "GO"]
        assert {r.accession for r in go} == {"GO:1", "GO:2"}

    def test_caret_separates_text(self):
        text = "id\tGO\np1\tGO:1^some term\n"
        rows = GenericTsvParser("X").parse_text(text).rows
        assert rows[0].text == "some term"

    def test_number_column_parsed(self):
        text = "id\tNumber\np1\t2.5\n"
        rows = GenericTsvParser("X").parse_text(text).rows
        assert rows[0].number == pytest.approx(2.5)

    def test_bad_number_rejected(self):
        text = "id\tNumber\np1\tabc\n"
        with pytest.raises(ParseError, match="non-numeric"):
            GenericTsvParser("X").parse_text(text)

    def test_single_column_header_rejected(self):
        with pytest.raises(ParseError, match="at least one target"):
            GenericTsvParser("X").parse_text("id\np1\n")

    def test_constructor_configuration(self):
        parser = GenericTsvParser("MySource", content="Protein",
                                  structure="Network")
        assert parser.source_name == "MySource"
        assert parser.content is SourceContent.PROTEIN
        assert parser.structure is SourceStructure.NETWORK


class TestRegistry:
    def test_all_builtin_parsers_registered(self):
        names = registered_parsers()
        for expected in ("LocusLink", "GO", "Unigene", "Enzyme", "OMIM",
                         "Hugo", "NetAffx", "SwissProt", "InterPro", "Ensembl"):
            assert expected in names

    def test_lookup_is_case_insensitive(self):
        assert get_parser("locuslink").source_name == "LocusLink"

    def test_has_parser(self):
        assert has_parser("GO")
        assert not has_parser("NotASource")

    def test_unknown_parser_raises_with_known_list(self):
        with pytest.raises(ParseError, match="known:"):
            get_parser("NotASource")
