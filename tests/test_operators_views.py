"""Tests for AnnotationView: queryability, grouping, rendering, export."""

import json

import pytest

from repro.operators.views import AnnotationView


@pytest.fixture()
def view():
    return AnnotationView(
        ("LocusLink", "Hugo", "GO"),
        (
            ("353", "APRT", "GO:0009116"),
            ("354", "GP1BB", "GO:0007155"),
            ("354", "GP1BB", "GO:0009987"),
            ("355", None, None),
        ),
    )


class TestConstruction:
    def test_row_width_checked(self):
        with pytest.raises(ValueError, match="width"):
            AnnotationView(("A", "B"), (("only-one",),))

    def test_source_column_is_first(self, view):
        assert view.source_column == "LocusLink"

    def test_len_and_iter(self, view):
        assert len(view) == 4
        assert len(list(view)) == 4

    def test_is_empty(self):
        assert AnnotationView(("A",), ()).is_empty()


class TestQueryability:
    def test_column_values_distinct(self, view):
        assert view.column_values("Hugo") == ["APRT", "GP1BB"]

    def test_column_values_keep_duplicates_when_asked(self, view):
        assert view.column_values("Hugo", distinct=False) == [
            "APRT", "GP1BB", "GP1BB",
        ]

    def test_column_values_skip_nulls(self, view):
        assert None not in view.column_values("GO")

    def test_unknown_column_raises(self, view):
        with pytest.raises(KeyError, match="Nope"):
            view.column_values("Nope")

    def test_source_objects(self, view):
        assert view.source_objects() == ["353", "354", "355"]

    def test_filter_by_predicate(self, view):
        filtered = view.filter(lambda row: row["GO"] == "GO:0007155")
        assert len(filtered) == 1
        assert filtered.rows[0][0] == "354"

    def test_project_drops_duplicates(self, view):
        projected = view.project(["LocusLink", "Hugo"])
        assert set(projected.rows) == {
            ("353", "APRT"), ("354", "GP1BB"), ("355", None),
        }

    def test_sorted_puts_nulls_last(self):
        view = AnnotationView(("S", "T"), (("b", None), ("a", "x"), ("b", "y")))
        assert view.sorted().rows == (("a", "x"), ("b", "y"), ("b", None))


class TestGrouping:
    def test_grouped_by_source(self, view):
        grouped = view.grouped_by_source()
        assert len(grouped["354"]) == 2

    def test_annotation_profile(self, view):
        profile = view.annotation_profile("354")
        assert profile == {
            "Hugo": ["GP1BB"],
            "GO": ["GO:0007155", "GO:0009987"],
        }

    def test_annotation_profile_of_unannotated_object(self, view):
        profile = view.annotation_profile("355")
        assert profile == {"Hugo": [], "GO": []}


class TestRendering:
    def test_render_contains_header_and_nulls(self, view):
        text = view.render()
        assert "LocusLink" in text
        assert "-" in text  # the NULL display

    def test_render_truncates(self, view):
        text = view.render(max_rows=2)
        assert "more rows" in text

    def test_to_tsv_round_trips_header(self, view):
        lines = view.to_tsv().splitlines()
        assert lines[0] == "LocusLink\tHugo\tGO"
        assert lines[1] == "353\tAPRT\tGO:0009116"
        assert lines[4] == "355\t\t"

    def test_to_json(self, view):
        decoded = json.loads(view.to_json())
        assert decoded["columns"] == ["LocusLink", "Hugo", "GO"]
        assert decoded["rows"][3] == ["355", None, None]

    def test_to_dicts(self, view):
        dicts = view.to_dicts()
        assert dicts[0] == {
            "LocusLink": "353", "Hugo": "APRT", "GO": "GO:0009116",
        }
