"""Tests for the generic EAV-to-GAM Import step (paper Section 4.1)."""

import pytest

from repro.eav.model import CONTAINS_TARGET, IS_A_TARGET, NAME_TARGET, EavRow
from repro.eav.store import EavDataset
from repro.gam.database import GamDatabase
from repro.gam.enums import RelType, SourceStructure
from repro.gam.errors import ImportError_
from repro.gam.repository import GamRepository
from repro.importer.importer import GamImporter


@pytest.fixture()
def repo():
    db = GamDatabase()
    yield GamRepository(db)
    db.close()


@pytest.fixture()
def importer(repo):
    return GamImporter(repo, clock=lambda: "2003-10-01 12:00:00")


def locuslink_dataset():
    return EavDataset(
        "LocusLink",
        [
            EavRow("353", NAME_TARGET, "adenine phosphoribosyltransferase",
                   "adenine phosphoribosyltransferase"),
            EavRow("353", "Hugo", "APRT"),
            EavRow("353", "GO", "GO:0009116", "nucleoside metabolism"),
            EavRow("353", "Location", "16q24"),
            EavRow("354", "Hugo", "GP1BB"),
            EavRow("354", "GO", "GO:0007155"),
        ],
        release="2003-10",
    )


def go_dataset():
    return EavDataset(
        "GO",
        [
            EavRow("GO:0008150", NAME_TARGET, "biological process",
                   "biological process"),
            EavRow("GO:0009116", NAME_TARGET, "nucleoside metabolism",
                   "nucleoside metabolism"),
            EavRow("GO:0007155", NAME_TARGET, "cell adhesion", "cell adhesion"),
            EavRow("GO:0009116", IS_A_TARGET, "GO:0008150"),
            EavRow("GO:0007155", IS_A_TARGET, "GO:0008150"),
            EavRow("GO.BiologicalProcess", CONTAINS_TARGET, "GO:0009116"),
            EavRow("GO.BiologicalProcess", CONTAINS_TARGET, "GO:0007155"),
        ],
        release="2003-10",
    )


class TestBasicImport:
    def test_entities_become_objects(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        assert repo.accessions_of("LocusLink") == {"353", "354"}

    def test_entity_names_stored_as_text(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        obj = repo.get_object("LocusLink", "353")
        assert obj.text == "adenine phosphoribosyltransferase"

    def test_target_sources_created_with_catalog_metadata(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        go = repo.get_source("GO")
        assert go.structure is SourceStructure.NETWORK

    def test_target_objects_created_with_text(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        term = repo.get_object("GO", "GO:0009116")
        assert term.text == "nucleoside metabolism"

    def test_fact_mappings_created(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        rels = repo.find_source_rels(repo.get_source("LocusLink"),
                                     repo.get_source("GO"))
        assert [rel.type for rel in rels] == [RelType.FACT]

    def test_associations_stored(self, repo, importer):
        report = importer.import_dataset(locuslink_dataset(), content="Gene")
        assert report.new_associations["GO"] == 2
        assert report.new_associations["Hugo"] == 2

    def test_report_summary(self, repo, importer):
        report = importer.import_dataset(locuslink_dataset(), content="Gene")
        assert "LocusLink" in report.summary()
        assert report.new_objects == 2
        # 2 Hugo + 2 GO + 1 Location; the Name row is not an association.
        assert report.total_associations == 5

    def test_audit_clock_recorded(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        assert repo.get_source("LocusLink").imported_at == "2003-10-01 12:00:00"

    def test_unnamed_dataset_rejected(self, importer):
        with pytest.raises(ImportError_, match="source name"):
            importer.import_dataset(EavDataset(""))

    def test_reduced_evidence_produces_similarity_mapping(self, repo, importer):
        dataset = EavDataset(
            "BlastDB",
            [EavRow("q1", "Homology", "h1", evidence=0.65)],
        )
        importer.import_dataset(dataset)
        rels = repo.find_source_rels(rel_type=RelType.SIMILARITY)
        assert len(rels) == 1
        rel = rels[0]
        assert repo.associations_of(rel)[0].evidence == pytest.approx(0.65)


class TestDuplicateElimination:
    def test_reimport_is_idempotent(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        report = importer.import_dataset(locuslink_dataset(), content="Gene")
        assert report.new_objects == 0
        assert report.total_associations == 0

    def test_reimport_only_adds_new_objects(self, repo, importer):
        importer.import_dataset(locuslink_dataset(), content="Gene")
        extended = locuslink_dataset()
        extended.append(EavRow("355", "Hugo", "NEW1"))
        report = importer.import_dataset(extended, content="Gene")
        assert report.new_objects == 1
        assert report.new_associations["Hugo"] == 1

    def test_reimport_relates_to_existing_targets(self, repo, importer):
        # The paper's example: GO already integrated, re-importing
        # LocusLink only relates the new loci with existing GO terms.
        importer.import_dataset(go_dataset())
        go_objects_before = repo.count_objects("GO")
        importer.import_dataset(locuslink_dataset(), content="Gene")
        assert repo.count_objects("GO") == go_objects_before
        mapping_rels = repo.mappings_between("LocusLink", "GO")
        assert len(mapping_rels) == 1


class TestStructuralImport:
    def test_is_a_becomes_intra_source_rel(self, repo, importer):
        importer.import_dataset(go_dataset())
        go = repo.get_source("GO")
        rels = repo.find_source_rels(go, go, RelType.IS_A)
        assert len(rels) == 1
        assert repo.count_associations(rels[0]) == 2

    def test_source_with_structure_forced_to_network(self, repo, importer):
        importer.import_dataset(go_dataset(), structure="Flat")
        assert repo.get_source("GO").structure is SourceStructure.NETWORK

    def test_contains_creates_partition_source(self, repo, importer):
        importer.import_dataset(go_dataset())
        partition = repo.get_source("GO.BiologicalProcess")
        assert partition.structure is SourceStructure.NETWORK
        assert repo.accessions_of(partition) == {"GO:0009116", "GO:0007155"}

    def test_contains_rel_links_source_to_partition(self, repo, importer):
        importer.import_dataset(go_dataset())
        rels = repo.find_source_rels(
            repo.get_source("GO"),
            repo.get_source("GO.BiologicalProcess"),
            RelType.CONTAINS,
        )
        assert len(rels) == 1
        assert repo.count_associations(rels[0]) == 2

    def test_partition_name_is_not_an_object(self, repo, importer):
        importer.import_dataset(go_dataset())
        assert "GO.BiologicalProcess" not in repo.accessions_of("GO")

    def test_is_a_parents_created_as_objects(self, repo, importer):
        # EC-style data where parents never appear as entities.
        dataset = EavDataset(
            "Enzyme", [EavRow("1.1.1.1", IS_A_TARGET, "1.1.1")]
        )
        importer.import_dataset(dataset)
        assert repo.accessions_of("Enzyme") == {"1.1.1.1", "1.1.1"}


class TestSelfReference:
    def test_self_citation_reuses_source(self, repo, importer):
        dataset = EavDataset(
            "LocusLink",
            [
                EavRow("353", "Hugo", "APRT"),
                EavRow("353", "LocusLink", "354"),
                EavRow("354", "Hugo", "GP1BB"),
            ],
        )
        importer.import_dataset(dataset, content="Gene")
        sources = [s.name for s in repo.list_sources()]
        assert sources.count("LocusLink") == 1
        rels = repo.find_source_rels(
            repo.get_source("LocusLink"), repo.get_source("LocusLink")
        )
        assert [rel.type for rel in rels] == [RelType.FACT]
