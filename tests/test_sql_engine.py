"""Tests for the SQL view-compilation engine.

The central property: for every specification, the SQL engine and the
in-memory Figure 5 engine produce the same row set.
"""

import pytest

from repro.core.genmapper import GenMapper
from repro.gam.enums import CombineMethod, RelType
from repro.gam.errors import ViewGenerationError
from repro.operators.generate_view import TargetSpec
from repro.operators.sql_engine import SqlViewEngine
from repro.operators.views import row_sort_key


@pytest.fixture()
def engine(paper_genmapper):
    return SqlViewEngine(paper_genmapper.repository)


def both_engines(genmapper, source, targets, source_objects=None,
                 combine="AND"):
    memory = genmapper.generate_view(
        source, targets, source_objects=source_objects, combine=combine,
        engine="memory",
    )
    sql = genmapper.generate_view(
        source, targets, source_objects=source_objects, combine=combine,
        engine="sql",
    )
    return memory, sql


class TestBasicCompilation:
    def test_stored_mapping_view(self, paper_genmapper):
        memory, sql = both_engines(paper_genmapper, "LocusLink", ["GO"])
        assert set(sql.rows) == set(memory.rows)
        assert sql.columns == memory.columns

    def test_multi_target_and(self, paper_genmapper):
        memory, sql = both_engines(
            paper_genmapper, "LocusLink", ["Hugo", "GO", "Location"],
            combine="AND",
        )
        assert set(sql.rows) == set(memory.rows)

    def test_or_preserves_unannotated(self, paper_genmapper):
        paper_genmapper.integrate_text(
            ">>999\nOFFICIAL_SYMBOL: LONELY\n", "LocusLink"
        )
        memory, sql = both_engines(
            paper_genmapper, "LocusLink", ["OMIM"], combine="OR"
        )
        assert set(sql.rows) == set(memory.rows)
        assert ("999", None) in set(sql.rows)

    def test_composed_path_in_sql(self, paper_genmapper):
        # Unigene -> GO has no stored mapping; the engine must compile
        # the 2-hop path into chained object_rel joins.
        memory, sql = both_engines(paper_genmapper, "Unigene", ["GO"])
        assert set(sql.rows) == {("Hs.28914", "GO:0009116")}
        assert set(sql.rows) == set(memory.rows)

    def test_explicit_via_path(self, paper_genmapper):
        view = paper_genmapper.generate_view(
            "Unigene",
            [TargetSpec.of("GO", via=("LocusLink",))],
            combine="AND",
            engine="sql",
        )
        assert set(view.rows) == {("Hs.28914", "GO:0009116")}

    def test_source_object_restriction(self, paper_genmapper):
        paper_genmapper.integrate_text(
            ">>998\nOFFICIAL_SYMBOL: OTHER1\nGO: GO:0009116\n", "LocusLink"
        )
        memory, sql = both_engines(
            paper_genmapper, "LocusLink", ["GO"], source_objects=["353"]
        )
        assert set(sql.rows) == set(memory.rows)
        assert all(row[0] == "353" for row in sql.rows)

    def test_target_restriction(self, paper_genmapper):
        memory, sql = both_engines(
            paper_genmapper, "LocusLink",
            [TargetSpec.of("GO", restrict={"GO:9999999"})],
        )
        assert sql.is_empty()
        assert set(sql.rows) == set(memory.rows)

    def test_negation(self, paper_genmapper):
        paper_genmapper.integrate_text(
            ">>997\nOFFICIAL_SYMBOL: NOOMIM1\nGO: GO:0009116\n", "LocusLink"
        )
        memory, sql = both_engines(
            paper_genmapper, "LocusLink",
            ["GO", TargetSpec.of("OMIM", negated=True)], combine="AND",
        )
        assert set(sql.rows) == set(memory.rows)
        assert {row[0] for row in sql.rows} == {"997"}

    def test_negation_with_restriction(self, paper_genmapper):
        memory, sql = both_engines(
            paper_genmapper, "LocusLink",
            [TargetSpec.of("GO", restrict={"GO:0009116"}, negated=True)],
            combine="AND",
        )
        assert set(sql.rows) == set(memory.rows)

    def test_duplicate_targets_rejected(self, engine):
        with pytest.raises(ViewGenerationError, match="duplicate"):
            engine.compile(
                "LocusLink", None,
                [TargetSpec.of("GO"), TargetSpec.of("GO")],
            )

    def test_compile_returns_single_statement(self, engine):
        sql, parameters, columns = engine.compile(
            "LocusLink", None, [TargetSpec.of("GO")], CombineMethod.AND
        )
        assert sql.count("SELECT DISTINCT") >= 1
        assert sql.startswith("WITH")
        assert columns == ("LocusLink", "GO")
        assert parameters


class TestEquivalenceOverUniverse:
    @pytest.mark.parametrize("combine", ["AND", "OR"])
    @pytest.mark.parametrize(
        "target_names",
        [
            ["Hugo"],
            ["Hugo", "GO"],
            ["GO", "Location", "OMIM"],
            ["Unigene", "Enzyme"],
        ],
    )
    def test_engines_agree(self, loaded_genmapper, combine, target_names):
        memory, sql = both_engines(
            loaded_genmapper, "LocusLink", target_names, combine=combine
        )
        assert set(sql.rows) == set(memory.rows)

    def test_engines_agree_on_negation(self, loaded_genmapper):
        memory, sql = both_engines(
            loaded_genmapper, "LocusLink",
            ["GO", TargetSpec.of("OMIM", negated=True)], combine="AND",
        )
        assert set(sql.rows) == set(memory.rows)

    def test_engines_agree_on_composed_three_hop(self, loaded_genmapper):
        memory, sql = both_engines(
            loaded_genmapper, "NetAffx",
            [TargetSpec.of("GO", via=("Unigene", "LocusLink"))],
            combine="AND",
        )
        assert set(sql.rows) == set(memory.rows)
        assert len(sql) > 0

    def test_engines_agree_on_restricted_subset(
        self, loaded_genmapper, universe
    ):
        go_subset = set(universe.go.accessions()[:10])
        loci = [gene.locus for gene in universe.genes[:25]]
        memory, sql = both_engines(
            loaded_genmapper, "LocusLink",
            [TargetSpec.of("GO", restrict=go_subset), "Hugo"],
            source_objects=loci, combine="AND",
        )
        assert set(sql.rows) == set(memory.rows)

    def test_unknown_engine_rejected(self, loaded_genmapper):
        with pytest.raises(ValueError, match="engine"):
            loaded_genmapper.generate_view(
                "LocusLink", ["GO"], engine="quantum"
            )


class TestNullSafeOrdering:
    """Regression tests for sorting view rows that contain NULL cells."""

    def test_engines_agree_on_or_with_negation_and_nulls(
        self, loaded_genmapper
    ):
        memory, sql = both_engines(
            loaded_genmapper, "LocusLink",
            ["GO", TargetSpec.of("OMIM", negated=True)], combine="OR",
        )
        assert set(sql.rows) == set(memory.rows)
        # The OR view must actually exercise NULL cells, and both engines
        # must present them in the same deterministic (NULLs-last) order.
        assert any(None in row for row in sql.rows)
        assert sql.rows == tuple(sorted(sql.rows, key=row_sort_key))
        assert memory.rows == sql.rows

    def test_dangling_association_does_not_break_or_view(self):
        """Pre-fix, a NULL accession from a dangling association made the
        bare tuple sort raise ``TypeError: '<' not supported between
        instances of 'NoneType' and 'str'``."""
        gm = GenMapper()
        try:
            repo = gm.repository
            left = repo.add_source("L", "Gene", "Flat")
            right = repo.add_source("T", "Other", "Flat")
            repo.add_objects(left, [("l1",), ("l2",)])
            repo.add_objects(right, [("t0",)])
            rel = repo.ensure_source_rel(left, right, RelType.FACT)
            repo.add_associations(rel, [("l1", "t0")])
            repo.db.commit()  # pragma changes need a clean transaction state
            repo.db.execute("PRAGMA foreign_keys = OFF")
            dangling = repo.get_object(left, "l2")
            repo.db.execute(
                "INSERT INTO object_rel (src_rel_id, object1_id, object2_id)"
                " VALUES (?, ?, 999)",
                (rel.src_rel_id, dangling.object_id),
            )
            view = gm.generate_view("L", ["T"], combine="OR", engine="sql")
            rows = set(view.rows)
            assert ("l1", "t0") in rows
            assert ("l2", None) in rows
            assert view.rows == tuple(sorted(view.rows, key=row_sort_key))
        finally:
            gm.close()
