"""Tests for the gene-oriented source parsers.

The LocusLink tests reproduce paper Table 1 exactly: parsing the locus 353
record yields the (entity, target, accession, text) rows the paper shows.
"""

import pytest

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.errors import ParseError
from repro.parsers.ensembl import EnsemblParser
from repro.parsers.hugo import HugoParser
from repro.parsers.locuslink import LocusLinkParser
from repro.parsers.netaffx import NetAffxParser
from repro.parsers.unigene import UnigeneParser
from tests.conftest import LOCUS_353_RECORD


class TestLocusLinkParser:
    @pytest.fixture()
    def rows(self):
        return LocusLinkParser().parse_text(LOCUS_353_RECORD).rows

    def test_reproduces_table_1_hugo_row(self, rows):
        assert (
            EavRow("353", "Hugo", "APRT") in rows
        )

    def test_reproduces_table_1_location_row(self, rows):
        assert EavRow("353", "Location", "16q24") in rows

    def test_reproduces_table_1_enzyme_row(self, rows):
        assert EavRow("353", "Enzyme", "2.4.2.7") in rows

    def test_reproduces_table_1_go_row(self, rows):
        assert (
            EavRow("353", "GO", "GO:0009116", "nucleoside metabolism") in rows
        )

    def test_name_row_carries_text(self, rows):
        name_rows = [r for r in rows if r.target == NAME_TARGET]
        assert name_rows == [
            EavRow(
                "353",
                NAME_TARGET,
                "adenine phosphoribosyltransferase",
                "adenine phosphoribosyltransferase",
            )
        ]

    def test_all_figure_1_targets_present(self, rows):
        targets = {r.target for r in rows}
        assert {"Hugo", "Location", "Enzyme", "GO", "OMIM", "Unigene",
                "Chromosome", "Alias"} <= targets

    def test_multiple_records(self):
        text = ">>1\nOFFICIAL_SYMBOL: A\n>>2\nOFFICIAL_SYMBOL: B\n"
        dataset = LocusLinkParser().parse_text(text)
        assert dataset.entities() == ["1", "2"]

    def test_unknown_key_becomes_target(self):
        text = ">>1\nPHENOTYPE: dwarfism\n"
        rows = LocusLinkParser().parse_text(text).rows
        assert rows == [EavRow("1", "Phenotype", "dwarfism")]

    def test_go_line_with_evidence_code_keeps_name_only(self):
        text = ">>1\nGO: GO:0009116|nucleoside metabolism|IEA\n"
        rows = LocusLinkParser().parse_text(text).rows
        assert rows[0].text == "nucleoside metabolism"

    def test_empty_values_skipped(self):
        text = ">>1\nOMIM: \nOFFICIAL_SYMBOL: A\n"
        rows = LocusLinkParser().parse_text(text).rows
        assert len(rows) == 1

    def test_annotation_before_record_rejected(self):
        with pytest.raises(ParseError, match="before any"):
            LocusLinkParser().parse_text("OFFICIAL_SYMBOL: A\n")

    def test_empty_locus_rejected(self):
        with pytest.raises(ParseError, match="empty locus"):
            LocusLinkParser().parse_text(">>\nOFFICIAL_SYMBOL: A\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(ParseError, match="KEY"):
            LocusLinkParser().parse_text(">>1\njust some text\n")

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n>>1\nOFFICIAL_SYMBOL: A\n"
        assert len(LocusLinkParser().parse_text(text)) == 1


class TestUnigeneParser:
    TEXT = (
        "ID          Hs.28914\n"
        "TITLE       adenine phosphoribosyltransferase\n"
        "GENE        APRT\n"
        "LOCUSLINK   353\n"
        "CHROMOSOME  16\n"
        "EXPRESS     brain; liver\n"
        "//\n"
        "ID          Hs.2\n"
        "GENE        XYZ\n"
        "//\n"
    )

    def test_clusters_parsed(self):
        dataset = UnigeneParser().parse_text(self.TEXT)
        assert dataset.entities() == ["Hs.28914", "Hs.2"]

    def test_locuslink_cross_reference(self):
        rows = UnigeneParser().parse_text(self.TEXT).rows
        assert EavRow("Hs.28914", "LocusLink", "353") in rows

    def test_tissues_split_on_semicolons(self):
        rows = UnigeneParser().parse_text(self.TEXT).rows
        tissues = [r.accession for r in rows if r.target == "Tissue"]
        assert tissues == ["brain", "liver"]

    def test_title_becomes_name(self):
        rows = UnigeneParser().parse_text(self.TEXT).rows
        names = [r for r in rows if r.target == NAME_TARGET]
        assert names[0].accession == "adenine phosphoribosyltransferase"

    def test_unknown_keys_skipped(self):
        text = "ID  Hs.1\nSCOUNT  12\nGENE  A\n//\n"
        rows = UnigeneParser().parse_text(text).rows
        assert {r.target for r in rows} == {"Hugo"}

    def test_field_before_id_rejected(self):
        with pytest.raises(ParseError, match="before any ID"):
            UnigeneParser().parse_text("GENE  APRT\n")


class TestHugoParser:
    TEXT = (
        "symbol\tname\tlocuslink\tomim\n"
        "APRT\tadenine phosphoribosyltransferase\t353\t102600\n"
        "GP1BB\tglycoprotein Ib\t354\t\n"
    )

    def test_symbols_become_entities(self):
        dataset = HugoParser().parse_text(self.TEXT)
        assert dataset.entities() == ["APRT", "GP1BB"]

    def test_cross_references(self):
        rows = HugoParser().parse_text(self.TEXT).rows
        assert EavRow("APRT", "LocusLink", "353") in rows
        assert EavRow("APRT", "OMIM", "102600") in rows

    def test_empty_cells_skipped(self):
        rows = HugoParser().parse_text(self.TEXT).rows
        omims = [r for r in rows if r.target == "OMIM"]
        assert len(omims) == 1

    def test_multi_valued_cells(self):
        text = "symbol\tlocuslink\nA\t1|2\n"
        rows = HugoParser().parse_text(text).rows
        assert {r.accession for r in rows} == {"1", "2"}

    def test_header_without_symbol_rejected(self):
        with pytest.raises(ParseError, match="symbol"):
            HugoParser().parse_text("name\tlocuslink\nx\t1\n")

    def test_row_without_symbol_rejected(self):
        with pytest.raises(ParseError, match="symbol"):
            HugoParser().parse_text("symbol\tname\n\tx\n")


class TestNetAffxParser:
    TEXT = (
        '"Probe Set ID","Gene Symbol","UniGene ID","LocusLink",'
        '"Gene Ontology Biological Process"\n'
        '"1000_at","APRT","Hs.28914","353",'
        '"GO:0009116 // nucleoside metabolism /// GO:0006139 // metabolism"\n'
        '"1001_at","---","---","---","---"\n'
    )

    def test_probe_entities(self):
        dataset = NetAffxParser().parse_text(self.TEXT)
        assert dataset.entities() == ["1000_at"]

    def test_go_terms_split_on_triple_slash(self):
        rows = NetAffxParser().parse_text(self.TEXT).rows
        go = [r for r in rows if r.target == "GO"]
        assert {r.accession for r in go} == {"GO:0009116", "GO:0006139"}

    def test_go_description_captured(self):
        rows = NetAffxParser().parse_text(self.TEXT).rows
        go = {r.accession: r.text for r in rows if r.target == "GO"}
        assert go["GO:0009116"] == "nucleoside metabolism"

    def test_dashes_mean_missing(self):
        rows = NetAffxParser().parse_text(self.TEXT).rows
        assert all(r.entity != "1001_at" for r in rows)

    def test_cross_references(self):
        rows = NetAffxParser().parse_text(self.TEXT).rows
        assert EavRow("1000_at", "Unigene", "Hs.28914") in rows
        assert EavRow("1000_at", "LocusLink", "353") in rows

    def test_missing_probe_column_rejected(self):
        with pytest.raises(ParseError, match="Probe Set ID"):
            NetAffxParser().parse_text('"Gene Symbol"\n"APRT"\n')


class TestEnsemblParser:
    TEXT = (
        "gene_id\tname\tchromosome\tband\tlocuslink\n"
        "ENSG00000198931\tAPRT\t16\tq24.3\t353\n"
        "ENSG00000000002\t\t\t\t\n"
    )

    def test_gene_entities(self):
        dataset = EnsemblParser().parse_text(self.TEXT)
        assert "ENSG00000198931" in dataset.entities()

    def test_location_joins_chromosome_and_band(self):
        rows = EnsemblParser().parse_text(self.TEXT).rows
        assert EavRow("ENSG00000198931", "Location", "16q24.3") in rows

    def test_symbol_doubles_as_hugo(self):
        rows = EnsemblParser().parse_text(self.TEXT).rows
        assert EavRow("ENSG00000198931", "Hugo", "APRT") in rows

    def test_empty_optional_cells_no_rows(self):
        rows = EnsemblParser().parse_text(self.TEXT).rows
        assert all(r.entity != "ENSG00000000002" for r in rows)

    def test_header_required(self):
        with pytest.raises(ParseError, match="gene_id"):
            EnsemblParser().parse_text("id\tname\nx\ty\n")
