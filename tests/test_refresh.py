"""Tests for incremental view maintenance: the per-source generation
vector, scoped cache invalidation, import watermarks and the delta
refresh engines (``repro.derived.refresh``)."""

import pytest

from repro.core.genmapper import GenMapper
from repro.derived import (
    derive_composed,
    derive_subsumed,
    refresh_composed,
    refresh_subsumed,
)
from repro.gam.database import GamDatabase
from repro.gam.dump import canonical_snapshot
from repro.gam.enums import RelType
from repro.gam.errors import GamIntegrityError
from repro.gam.repository import GamRepository
from repro.operators.compose import min_evidence
from repro.reliability.checkpoint import ImportJournal


@pytest.fixture()
def db():
    database = GamDatabase(":memory:")
    yield database
    database.close()


@pytest.fixture()
def repo(db):
    return GamRepository(db)


def _build_chain(repo, n_objects: int = 20):
    """Three sources A-B-C with a fact chain and an IS_A forest on C."""
    for name in ("A", "B", "C"):
        repo.add_source(name, "Gene" if name != "C" else "Other")
        repo.add_objects(
            name, [(f"{name.lower()}{i}", None, None) for i in range(n_objects)]
        )
    ab = repo.ensure_source_rel("A", "B", RelType.FACT)
    bc = repo.ensure_source_rel("B", "C", RelType.SIMILARITY)
    repo.add_associations(ab, [(f"a{i}", f"b{i}", 0.9) for i in range(10)])
    repo.add_associations(bc, [(f"b{i}", f"c{i % 5}", 0.8) for i in range(10)])
    isa = repo.ensure_source_rel("C", "C", RelType.IS_A)
    repo.add_associations(
        isa, [(f"c{i}", f"c{i // 2}", 1.0) for i in range(1, 10)]
    )
    return ab, bc, isa


# -- generation vector ------------------------------------------------------


class TestGenerationVector:
    def test_scoped_write_moves_only_named_sources(self, db):
        base_a = db.source_generation("A")
        base_b = db.source_generation("B")
        with db.write_scope("A"):
            db.bump_generation()
        assert db.source_generation("A") > base_a
        assert db.source_generation("B") == base_b

    def test_untagged_write_raises_the_floor(self, db):
        with db.write_scope("A"):
            db.bump_generation()
        tagged = db.source_generation("A")
        db.bump_generation(None)
        # The floor covers every source, named or not.
        assert db.source_generation("A") > tagged
        assert db.source_generation("never-written") == db.source_generation("A")

    def test_neutral_scope_bumps_clock_only(self, db):
        before_a = db.source_generation("A")
        clock_before = db.data_generation()
        with db.write_scope():
            db.bump_generation()
        assert db.source_generation("A") == before_a
        assert db.data_generation() > clock_before

    def test_generation_of_takes_max_over_sources(self, db):
        with db.write_scope("A"):
            db.bump_generation()
        with db.write_scope("B"):
            db.bump_generation()
        assert db.generation_of(["A", "B"]) == db.source_generation("B")
        assert db.generation_of(["A"]) == db.source_generation("A")
        assert db.generation_of([]) == db.generation_vector()["floor"]

    def test_transaction_commit_covers_written_sources(self, repo):
        db = repo.db
        repo.add_source("A", "Gene")
        gen_a = db.source_generation("A")
        gen_x = db.source_generation("X")
        repo.add_objects("A", [("a1", None, None)])
        assert db.source_generation("A") > gen_a
        assert db.source_generation("X") == gen_x

    def test_vector_survives_mixed_transaction(self, repo):
        """One transaction writing two sources tags both, not the floor."""
        db = repo.db
        repo.add_source("A", "Gene")
        repo.add_source("B", "Gene")
        floor = db.generation_vector()["floor"]
        with db.transaction():
            with db.write_scope("A"):
                db.execute(
                    "INSERT INTO object (source_id, accession) VALUES"
                    " ((SELECT source_id FROM source WHERE name='A'), 'a9')"
                )
            with db.write_scope("B"):
                db.execute(
                    "INSERT INTO object (source_id, accession) VALUES"
                    " ((SELECT source_id FROM source WHERE name='B'), 'b9')"
                )
        vector = db.generation_vector()
        assert vector["floor"] == floor
        assert vector["sources"]["A"] > floor
        assert vector["sources"]["B"] > floor


# -- scoped cache invalidation ---------------------------------------------


class TestScopedInvalidation:
    def test_untouched_pair_survives_other_sources_write(self):
        with GenMapper(enable_cache=True) as gm:
            repo = gm.repository
            _build_chain(repo)
            repo.add_source("D", "Gene")
            repo.add_objects("D", [(f"d{i}", None, None) for i in range(5)])
            cd = repo.ensure_source_rel("C", "D", RelType.FACT)
            repo.add_associations(cd, [("c1", "d1", 1.0)])

            gm.map("A", "B")
            gm.map("C", "D")
            hits_before = gm.cache_stats()["hits"]
            # Re-import style write into A-B only.
            ab = repo.find_source_rels("A", "B", RelType.FACT)[0]
            repo.add_associations(ab, [("a11", "b11", 0.5)])
            gm.map("C", "D")  # untouched pair: still warm
            assert gm.cache_stats()["hits"] == hits_before + 1
            gm.map("A", "B")  # touched pair: reloaded
            stats = gm.cache_stats()
            assert stats["hits"] == hits_before + 1
            assert stats["scoped_invalidations"] >= 1

    def test_dependencies_recorded_for_composed_path(self):
        with GenMapper(enable_cache=True) as gm:
            repo = gm.repository
            _build_chain(repo)
            gm.compose(["A", "B", "C"])
            from repro.cache.mapping_cache import MappingCache

            key = MappingCache.composed_key(["A", "B", "C"], "product")
            deps = gm.cache.dependencies(key)
            # Every source the chain touches, including the intermediate.
            assert deps == ("A", "B", "C")

    def test_intermediate_source_write_invalidates_composed(self):
        with GenMapper(enable_cache=True) as gm:
            repo = gm.repository
            _build_chain(repo)
            gm.compose(["A", "B", "C"])
            hits = gm.cache_stats()["hits"]
            # Write to B only — neither endpoint of the composed pair.
            repo.add_objects("B", [("b77", None, None)])
            gm.compose(["A", "B", "C"])
            assert gm.cache_stats()["hits"] == hits  # miss: reloaded


# -- import watermarks ------------------------------------------------------


class TestWatermarks:
    def test_table_watermarks_track_max_rowids(self, repo):
        journal = ImportJournal(repo.db)
        empty = journal.table_watermarks()
        assert empty == {"object": 0, "object_rel": 0, "source_rel": 0}
        _build_chain(repo)
        marks = journal.table_watermarks()
        assert marks["object"] > 0
        assert marks["object_rel"] > 0
        assert marks["source_rel"] > 0

    def test_record_and_read_watermarks(self, repo):
        journal = ImportJournal(repo.db)
        _build_chain(repo)
        marks = journal.table_watermarks()
        journal.record("GO", "go.obo", "abc", watermarks=marks)
        assert journal.watermarks("GO", "go.obo") == marks
        assert journal.watermarks("GO", "other.obo") is None

    def test_pipeline_records_preimport_watermarks(self, tmp_path):
        from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD

        (tmp_path / "ll.txt").write_text(LOCUS_353_RECORD)
        (tmp_path / "go.obo").write_text(GO_MINI_OBO)
        (tmp_path / "manifest.tsv").write_text(
            "ll.txt\tLocusLink\t\ngo.obo\tGO\t\n"
        )
        with GenMapper() as gm:
            gm.integrate_directory(tmp_path)
            journal = ImportJournal(gm.db)
            first = journal.watermarks("LocusLink", "ll.txt")
            assert first == {"object": 0, "object_rel": 0, "source_rel": 0}
            second = journal.watermarks("GO", "go.obo")
            # The GO import's watermark delimits the LocusLink rows that
            # were already present.
            assert second is not None
            assert second["object"] > 0

    def test_journal_write_is_generation_neutral(self, repo):
        journal = ImportJournal(repo.db)
        _build_chain(repo)
        vector_before = repo.db.generation_vector()
        journal.record("GO", "go.obo", "abc",
                       watermarks=journal.table_watermarks())
        vector_after = repo.db.generation_vector()
        assert vector_after["floor"] == vector_before["floor"]
        assert vector_after["sources"] == vector_before["sources"]


# -- delta refresh engines --------------------------------------------------


def _append_delta(repo, ab, bc, isa):
    repo.add_associations(ab, [(f"a{i}", f"b{i}", 0.7) for i in range(10, 15)])
    repo.add_associations(
        bc, [(f"b{i}", f"c{i % 7 + 5}", 0.95) for i in range(10, 15)]
    )
    repo.add_associations(
        isa, [(f"c{i}", f"c{i - 10}", 1.0) for i in range(10, 15)]
    )


def _watermark(db) -> int:
    return int(
        db.execute("SELECT coalesce(max(obj_rel_id), 0) FROM object_rel")
        .fetchone()[0]
    )


class TestRefreshEquivalence:
    @pytest.mark.parametrize("engine", ["sql", "memory"])
    def test_refresh_matches_full_rederive(self, engine):
        full_db = GamDatabase(":memory:")
        delta_db = GamDatabase(":memory:")
        full, delta = GamRepository(full_db), GamRepository(delta_db)
        rels_full = _build_chain(full)
        rels_delta = _build_chain(delta)
        derive_composed(delta, ["A", "B", "C"])
        derive_subsumed(delta, "C")
        watermark = _watermark(delta_db)
        _append_delta(full, *rels_full)
        _append_delta(delta, *rels_delta)
        derive_composed(full, ["A", "B", "C"])
        derive_subsumed(full, "C")
        refresh_composed(
            delta, ["A", "B", "C"], watermark=watermark, engine=engine
        )
        refresh_subsumed(delta, "C", watermark=watermark, engine=engine)
        assert canonical_snapshot(full) == canonical_snapshot(delta)
        full_db.close()
        delta_db.close()

    @pytest.mark.parametrize("engine", ["sql", "memory"])
    def test_zero_watermark_equals_full_derivation(self, repo, engine):
        _build_chain(repo)
        report = refresh_composed(repo, ["A", "B", "C"], engine=engine)
        assert report.watermark == 0
        assert report.changed > 0
        twin_db = GamDatabase(":memory:")
        twin = GamRepository(twin_db)
        _build_chain(twin)
        derive_composed(twin, ["A", "B", "C"])
        assert canonical_snapshot(twin) == canonical_snapshot(repo)
        twin_db.close()

    @pytest.mark.parametrize("engine", ["sql", "memory"])
    def test_min_combiner_supported(self, repo, engine):
        rels = _build_chain(repo)
        derive_composed(repo, ["A", "B", "C"], combiner=min_evidence)
        watermark = _watermark(repo.db)
        _append_delta(repo, *rels)
        report = refresh_composed(
            repo,
            ["A", "B", "C"],
            combiner=min_evidence,
            watermark=watermark,
            engine=engine,
        )
        assert report.engine == engine
        twin_db = GamDatabase(":memory:")
        twin = GamRepository(twin_db)
        twin_rels = _build_chain(twin)
        _append_delta(twin, *twin_rels)
        derive_composed(twin, ["A", "B", "C"], combiner=min_evidence)
        assert canonical_snapshot(twin) == canonical_snapshot(repo)
        twin_db.close()


class TestRefreshBehavior:
    def test_noop_at_current_watermark(self, repo):
        _build_chain(repo)
        derive_composed(repo, ["A", "B", "C"])
        derive_subsumed(repo, "C")
        watermark = _watermark(repo.db)
        composed = refresh_composed(repo, ["A", "B", "C"], watermark=watermark)
        subsumed = refresh_subsumed(repo, "C", watermark=watermark)
        assert composed.delta_edges == 0 and composed.changed == 0
        assert subsumed.delta_edges == 0 and subsumed.changed == 0

    def test_noop_leaves_generation_vector_alone_for_others(self, repo):
        """A refresh only moves the generations of its own endpoints."""
        rels = _build_chain(repo)
        repo.add_source("D", "Gene")
        derive_composed(repo, ["A", "B", "C"])
        watermark = _watermark(repo.db)
        _append_delta(repo, *rels)
        gen_d = repo.db.source_generation("D")
        floor = repo.db.generation_vector()["floor"]
        refresh_composed(repo, ["A", "B", "C"], watermark=watermark)
        assert repo.db.source_generation("D") == gen_d
        assert repo.db.generation_vector()["floor"] == floor

    def test_evidence_upgraded_when_stronger_chain_appears(self, repo):
        rels = _build_chain(repo)
        derive_composed(repo, ["A", "B", "C"])
        watermark = _watermark(repo.db)
        # New hop a0-b5 (1.0) joins existing b5-c0 (0.8): chain 0.8 beats
        # the stored a0-c0 evidence 0.72.
        repo.add_associations(rels[0], [("a0", "b5", 1.0)])
        refresh_composed(repo, ["A", "B", "C"], watermark=watermark)
        row = repo.db.execute(
            "SELECT r.evidence FROM object_rel r"
            " JOIN object o1 ON o1.object_id = r.object1_id"
            " JOIN object o2 ON o2.object_id = r.object2_id"
            " JOIN source_rel sr ON sr.src_rel_id = r.src_rel_id"
            " WHERE sr.type = ? AND o1.accession = 'a0'"
            " AND o2.accession = 'c0'",
            (RelType.COMPOSED.value,),
        ).fetchone()
        assert row[0] == pytest.approx(0.8)

    @pytest.mark.parametrize("engine", ["sql", "memory"])
    def test_cycle_in_delta_rolls_back(self, repo, engine):
        rels = _build_chain(repo)
        derive_subsumed(repo, "C")
        watermark = _watermark(repo.db)
        # c9 descends from c1, so c1 -> c9 closes a cycle.
        repo.add_associations(rels[2], [("c1", "c9", 1.0)])
        with pytest.raises(GamIntegrityError):
            refresh_subsumed(repo, "C", watermark=watermark, engine=engine)
        leaked = repo.db.execute(
            "SELECT count(*) FROM object_rel r"
            " JOIN source_rel sr ON sr.src_rel_id = r.src_rel_id"
            " WHERE sr.type = ? AND r.object1_id = r.object2_id",
            (RelType.SUBSUMED.value,),
        ).fetchone()[0]
        assert leaked == 0

    def test_watermark_dict_accepted(self, repo):
        rels = _build_chain(repo)
        derive_composed(repo, ["A", "B", "C"])
        journal = ImportJournal(repo.db)
        marks = journal.table_watermarks()
        _append_delta(repo, *rels)
        report = refresh_composed(repo, ["A", "B", "C"], watermark=marks)
        assert report.watermark == marks["object_rel"]
        assert report.changed > 0

    def test_rejects_unknown_engine(self, repo):
        _build_chain(repo)
        with pytest.raises(ValueError):
            refresh_composed(repo, ["A", "B", "C"], engine="quantum")
        with pytest.raises(ValueError):
            refresh_subsumed(repo, "C", engine="quantum")

    def test_delta_rows_metric_counts_changes(self, repo):
        from repro.obs import get_registry

        rels = _build_chain(repo)
        derive_composed(repo, ["A", "B", "C"])
        watermark = _watermark(repo.db)
        _append_delta(repo, *rels)
        counter = get_registry().counter("derived.delta_rows")
        before = counter.value
        report = refresh_composed(repo, ["A", "B", "C"], watermark=watermark)
        assert counter.value == before + report.changed


class TestFacadeAndCli:
    def test_facade_refresh_methods(self):
        with GenMapper() as gm:
            rels = _build_chain(gm.repository)
            gm.compose(["A", "B", "C"], materialize=True)
            gm.derive_subsumed("C")
            watermark = _watermark(gm.db)
            _append_delta(gm.repository, *rels)
            composed = gm.refresh_composed(["A", "B", "C"], watermark=watermark)
            subsumed = gm.refresh_subsumed("C", watermark=watermark)
            assert composed.changed > 0
            assert subsumed.changed > 0

    @pytest.mark.parametrize("engine", ["auto", "sql", "memory"])
    def test_cli_compose_engine_flag(self, tmp_path, capsys, engine):
        from repro.cli import main

        db = tmp_path / "gam.db"
        with GenMapper(db) as gm:
            _build_chain(gm.repository)
        assert main([
            "--db", str(db), "compose", "A", "B", "C",
            "--engine", engine, "--materialize",
        ]) == 0
        assert "materialized" in capsys.readouterr().out

    @pytest.mark.parametrize("engine", ["auto", "sql", "memory"])
    def test_cli_subsume_engine_flag(self, tmp_path, capsys, engine):
        from repro.cli import main

        db = tmp_path / "gam.db"
        with GenMapper(db) as gm:
            _build_chain(gm.repository)
        assert main(["--db", str(db), "subsume", "C", "--engine", engine]) == 0
        assert "Subsumed" in capsys.readouterr().out
