"""Tests for the cross-table integrity checks."""

import pytest

from repro.gam.database import GamDatabase
from repro.gam.enums import RelType
from repro.gam.integrity import check
from repro.gam.repository import GamRepository


@pytest.fixture()
def db():
    database = GamDatabase()
    yield database
    database.close()


@pytest.fixture()
def repo(db):
    return GamRepository(db)


def _valid_world(repo):
    a = repo.add_source("A", "Gene", "Flat")
    b = repo.add_source("B", "Other", "Network")
    repo.add_objects(a, [("a1",), ("a2",)])
    repo.add_objects(b, [("b1",), ("b2",)])
    rel = repo.ensure_source_rel(a, b, RelType.FACT)
    repo.add_associations(rel, [("a1", "b1"), ("a2", "b2")])
    isa = repo.ensure_source_rel(b, b, RelType.IS_A)
    repo.add_associations(isa, [("b2", "b1")])
    return a, b


class TestIntegrityCheck:
    def test_valid_database_is_ok(self, db, repo):
        _valid_world(repo)
        report = check(db)
        assert report.ok
        assert str(report) == "integrity: OK"

    def test_detects_endpoint_mismatch(self, db, repo):
        a, b = _valid_world(repo)
        # Hand-craft an association whose object1 is not from source1.
        b1 = repo.get_object(b, "b1")
        rel = repo.find_source_rels(a, b, RelType.FACT)[0]
        db.execute(
            "INSERT INTO object_rel (src_rel_id, object1_id, object2_id)"
            " VALUES (?, ?, ?)",
            (rel.src_rel_id, b1.object_id, b1.object_id),
        )
        report = check(db)
        assert not report.ok
        assert any(v.rule == "association-endpoints" for v in report.violations)

    def test_detects_structural_rel_on_flat_source(self, db, repo):
        a, __ = _valid_world(repo)
        db.execute(
            "INSERT INTO source_rel (source1_id, source2_id, type)"
            " VALUES (?, ?, 'Is-a')",
            (a.source_id, a.source_id),
        )
        report = check(db)
        assert any(
            v.rule == "structural-needs-network" for v in report.violations
        )

    def test_detects_out_of_range_evidence(self, db, repo):
        _valid_world(repo)
        db.execute("UPDATE object_rel SET evidence = 1.5 WHERE obj_rel_id = 1")
        report = check(db)
        assert any(v.rule == "evidence-range" for v in report.violations)

    def test_detects_dangling_object_source(self, db, repo):
        _valid_world(repo)
        db.commit()  # pragma changes need to happen outside a transaction
        db.execute("PRAGMA foreign_keys = OFF")
        db.execute("INSERT INTO object (source_id, accession) VALUES (999, 'x')")
        report = check(db)
        assert any(v.rule == "object-source-fk" for v in report.violations)

    def test_detects_dangling_association_object(self, db, repo):
        _valid_world(repo)
        db.commit()  # pragma changes need to happen outside a transaction
        db.execute("PRAGMA foreign_keys = OFF")
        db.execute(
            "INSERT INTO object_rel (src_rel_id, object1_id, object2_id)"
            " VALUES (1, 998, 999)"
        )
        report = check(db)
        assert any(v.rule == "object-rel-object-fk" for v in report.violations)

    def test_violation_rendering_mentions_rule(self, db, repo):
        _valid_world(repo)
        db.execute("UPDATE object_rel SET evidence = -0.5 WHERE obj_rel_id = 1")
        report = check(db)
        assert "evidence-range" in str(report)

    def test_max_violations_caps_report(self, db, repo):
        _valid_world(repo)
        db.execute("UPDATE object_rel SET evidence = 2.0")
        report = check(db, max_violations=2)
        assert len(report.violations) == 2
