"""Tests for GAM maintenance: cascade deletion, derived cleanup, pruning."""

import pytest

from repro.gam.enums import RelType
from repro.gam.errors import UnknownSourceError
from repro.gam.maintenance import (
    delete_source,
    drop_derived,
    prune_orphan_objects,
    vacuum,
)


class TestDeleteSource:
    def test_cascade_removes_everything(self, paper_genmapper):
        repo = paper_genmapper.repository
        report = delete_source(repo, "OMIM")
        assert report.objects == 1
        assert report.source_rels == 1
        assert report.associations == 1
        with pytest.raises(UnknownSourceError):
            repo.get_source("OMIM")

    def test_other_sources_untouched(self, paper_genmapper):
        repo = paper_genmapper.repository
        go_count = repo.count_objects("GO")
        delete_source(repo, "OMIM")
        assert repo.count_objects("GO") == go_count
        assert repo.count_objects("LocusLink") == 1

    def test_deleting_mapping_hub_removes_both_directions(
        self, paper_genmapper
    ):
        repo = paper_genmapper.repository
        delete_source(repo, "LocusLink")
        # Every relationship touching LocusLink is gone; GO's internal
        # structure survives.
        assert repo.find_source_rels(rel_type=RelType.IS_A)
        for rel in repo.find_source_rels():
            assert rel.source1_id != 1 or rel.source2_id != 1

    def test_integrity_holds_after_delete(self, paper_genmapper):
        delete_source(paper_genmapper.repository, "LocusLink")
        assert paper_genmapper.check_integrity().ok

    def test_summary(self, paper_genmapper):
        report = delete_source(paper_genmapper.repository, "OMIM")
        assert "OMIM" in report.summary()

    def test_no_dangling_derived_rows_after_delete(self, paper_genmapper):
        """Materialized Composed/Subsumed mappings whose endpoint is the
        deleted source must cascade with it — no association may survive
        referencing a deleted object or relationship."""
        paper_genmapper.compose(
            ["Unigene", "LocusLink", "GO"], materialize=True
        )
        paper_genmapper.derive_subsumed("GO")
        repo = paper_genmapper.repository
        delete_source(repo, "GO")
        # Both derived mappings had GO as an endpoint: gone entirely.
        assert not repo.find_source_rels(rel_type=RelType.COMPOSED)
        assert not repo.find_source_rels(rel_type=RelType.SUBSUMED)
        db = repo.db
        orphans = db.execute(
            "SELECT count(*) FROM object_rel r"
            " LEFT JOIN object o1 ON o1.object_id = r.object1_id"
            " LEFT JOIN object o2 ON o2.object_id = r.object2_id"
            " LEFT JOIN source_rel sr ON sr.src_rel_id = r.src_rel_id"
            " WHERE o1.object_id IS NULL OR o2.object_id IS NULL"
            " OR sr.src_rel_id IS NULL"
        ).fetchone()[0]
        assert orphans == 0
        assert paper_genmapper.check_integrity().ok

    def test_deleting_intermediate_keeps_derived_endpoints_valid(
        self, paper_genmapper
    ):
        """Deleting the *intermediate* source of a composed path leaves
        the materialized endpoint mapping intact and referentially
        sound (its associations only reference endpoint objects)."""
        paper_genmapper.compose(
            ["Unigene", "LocusLink", "GO"], materialize=True
        )
        repo = paper_genmapper.repository
        delete_source(repo, "LocusLink")
        composed = repo.find_source_rels(rel_type=RelType.COMPOSED)
        assert len(composed) == 1
        assert repo.associations_of(composed[0])
        assert paper_genmapper.check_integrity().ok


class TestDropDerived:
    def test_removes_composed_and_subsumed(self, paper_genmapper):
        paper_genmapper.compose(
            ["Unigene", "LocusLink", "GO"], materialize=True
        )
        paper_genmapper.derive_subsumed("GO")
        repo = paper_genmapper.repository
        assert drop_derived(repo) == 2
        assert not repo.find_source_rels(rel_type=RelType.COMPOSED)
        assert not repo.find_source_rels(rel_type=RelType.SUBSUMED)

    def test_keeps_imported_and_structural(self, paper_genmapper):
        repo = paper_genmapper.repository
        facts_before = len(repo.find_source_rels(rel_type=RelType.FACT))
        paper_genmapper.derive_subsumed("GO")
        drop_derived(repo)
        assert len(repo.find_source_rels(rel_type=RelType.FACT)) == facts_before
        assert repo.find_source_rels(rel_type=RelType.IS_A)

    def test_noop_without_derived(self, paper_genmapper):
        assert drop_derived(paper_genmapper.repository) == 0

    def test_rederivable_after_drop(self, paper_genmapper):
        first = paper_genmapper.derive_subsumed("GO")
        drop_derived(paper_genmapper.repository)
        second = paper_genmapper.derive_subsumed("GO")
        assert first == second


class TestPruneOrphans:
    def test_prunes_unreferenced_annotation_values(self, paper_genmapper):
        repo = paper_genmapper.repository
        # Both LocusLink and Unigene reference the Hugo symbol APRT;
        # deleting them strands Hugo's objects.
        delete_source(repo, "LocusLink")
        delete_source(repo, "Unigene")
        hugo_before = repo.count_objects("Hugo")
        assert hugo_before > 0
        # Hugo lost its only relationships, so the conservative global
        # rule keeps its objects; explicit per-source pruning removes them.
        assert prune_orphan_objects(repo) == 0
        pruned = prune_orphan_objects(repo, source="Hugo")
        assert pruned == hugo_before
        assert repo.count_objects("Hugo") == 0

    def test_keeps_objects_of_unlinked_sources(self, genmapper):
        # A freshly imported source with no relationships at all keeps
        # its objects (they are not orphans, just not yet linked).
        from repro.eav.model import EavRow
        from repro.eav.store import EavDataset

        genmapper.integrate_dataset(
            EavDataset("Fresh", [EavRow("x", "Name", "an object", "an object")])
        )
        assert prune_orphan_objects(genmapper.repository) == 0
        assert genmapper.repository.count_objects("Fresh") == 1

    def test_keeps_referenced_objects(self, paper_genmapper):
        repo = paper_genmapper.repository
        before = repo.count_objects()
        pruned = prune_orphan_objects(repo)
        # The paper fixture has no orphans: every object participates.
        assert pruned == 0
        assert repo.count_objects() == before


class TestVacuum:
    def test_vacuum_runs(self, paper_genmapper):
        delete_source(paper_genmapper.repository, "LocusLink")
        vacuum(paper_genmapper.db)  # must not raise
        assert paper_genmapper.check_integrity().ok
