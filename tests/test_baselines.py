"""Tests for the three baseline systems (SRS-style, web-link, warehouse)."""

import pytest

from repro.baselines.srs import SrsSystem
from repro.baselines.warehouse import SchemaEvolutionRequired, StarWarehouse
from repro.baselines.weblink import WebLinkNavigator
from repro.eav.model import EavRow
from repro.eav.store import EavDataset


@pytest.fixture()
def locuslink_dataset():
    return EavDataset(
        "LocusLink",
        [
            EavRow("353", "Name", "adenine phosphoribosyltransferase",
                   "adenine phosphoribosyltransferase"),
            EavRow("353", "Hugo", "APRT"),
            EavRow("353", "GO", "GO:0009116"),
            EavRow("353", "OMIM", "102600"),
            EavRow("354", "Hugo", "GP1BB"),
            EavRow("354", "GO", "GO:0007155"),
        ],
    )


@pytest.fixture()
def unigene_dataset():
    return EavDataset(
        "Unigene",
        [
            EavRow("Hs.28914", "LocusLink", "353"),
            EavRow("Hs.2", "LocusLink", "354"),
        ],
    )


class TestSrsSystem:
    @pytest.fixture()
    def srs(self, locuslink_dataset, unigene_dataset):
        system = SrsSystem()
        system.load(locuslink_dataset)
        system.load(unigene_dataset)
        return system

    def test_sources_and_attributes_indexed(self, srs):
        assert srs.sources() == ["LocusLink", "Unigene"]
        assert "GO" in srs.attributes("LocusLink")

    def test_single_source_query_works(self, srs):
        assert srs.query("LocusLink", "GO", "GO:0009116") == {"353"}

    def test_lookup_returns_entry(self, srs):
        entry = srs.lookup("LocusLink", "353")
        assert entry.attributes["Hugo"] == ["APRT"]

    def test_lookup_counts_page_views(self, srs):
        srs.reset_counters()
        srs.lookup("LocusLink", "353")
        srs.lookup("LocusLink", "354")
        assert srs.lookups == 2

    def test_no_join_operation_exists(self, srs):
        # The defining limitation: the public surface has no join/view API.
        assert not hasattr(srs, "generate_view")
        assert not hasattr(srs, "join")

    def test_navigate_chases_references_per_object(self, srs):
        srs.reset_counters()
        results = srs.navigate(
            "Unigene", ["Hs.28914", "Hs.2"], ["LocusLink", "LocusLink", "GO"]
        )
        assert results == {
            "Hs.28914": {"GO:0009116"},
            "Hs.2": {"GO:0007155"},
        }
        # Two objects, two hops each -> at least four lookups.
        assert srs.lookups >= 4

    def test_navigate_cost_scales_with_objects(self, srs):
        srs.reset_counters()
        srs.navigate("Unigene", ["Hs.28914"], ["LocusLink", "LocusLink", "GO"])
        single = srs.lookups
        srs.reset_counters()
        srs.navigate(
            "Unigene", ["Hs.28914", "Hs.2"], ["LocusLink", "LocusLink", "GO"]
        )
        assert srs.lookups == 2 * single

    def test_navigate_odd_path_required(self, srs):
        with pytest.raises(ValueError, match="attr"):
            srs.navigate("Unigene", ["Hs.2"], ["LocusLink", "LocusLink"])

    def test_unknown_source_rejected(self, srs):
        from repro.gam.errors import UnknownSourceError

        with pytest.raises(UnknownSourceError):
            srs.query("Nope", "GO", "x")


class TestWebLinkNavigator:
    @pytest.fixture()
    def web(self, locuslink_dataset, unigene_dataset):
        navigator = WebLinkNavigator(fetch_latency=0.05)
        navigator.load(locuslink_dataset)
        navigator.load(unigene_dataset)
        return navigator

    def test_fetch_returns_links(self, web):
        links = web.fetch("LocusLink", "353")
        assert ("GO", "GO:0009116") in links
        assert ("Hugo", "APRT") in links

    def test_links_are_bidirectional(self, web):
        links = web.fetch("GO", "GO:0009116")
        assert ("LocusLink", "353") in links

    def test_name_rows_are_not_links(self, web):
        links = web.fetch("LocusLink", "353")
        assert all(target != "Name" for target, __ in links)

    def test_profile_by_link_chasing(self, web):
        found = web.annotation_profile("Unigene", "Hs.28914", "GO", max_hops=2)
        assert found == {"GO:0009116"}

    def test_hop_limit_respected(self, web):
        found = web.annotation_profile("Unigene", "Hs.28914", "GO", max_hops=1)
        assert found == set()

    def test_cost_accounting(self, web):
        __, cost = web.profile_cost("Unigene", ["Hs.28914", "Hs.2"], "GO")
        assert cost.page_fetches > 0
        assert cost.simulated_seconds == pytest.approx(
            cost.page_fetches * 0.05
        )

    def test_fetch_counter(self, web):
        web.reset_counters()
        web.fetch("LocusLink", "353")
        assert web.page_fetches == 1
        assert web.simulated_seconds == pytest.approx(0.05)


class TestStarWarehouse:
    def test_designed_attributes_load_without_evolution(self, locuslink_dataset):
        warehouse = StarWarehouse()
        warehouse.design("LocusLink")
        warehouse.integrate(locuslink_dataset)
        assert warehouse.schema_changes == 0
        assert ("353", "GO:0009116") in warehouse.annotations("LocusLink", "GO")

    def test_unanticipated_attribute_requires_evolution(self):
        warehouse = StarWarehouse()
        warehouse.design("LocusLink")
        dataset = EavDataset(
            "LocusLink", [EavRow("353", "Phenotype", "dwarfism")]
        )
        with pytest.raises(SchemaEvolutionRequired, match="Phenotype"):
            warehouse.integrate(dataset)

    def test_auto_evolve_counts_ddl(self):
        warehouse = StarWarehouse()
        warehouse.design("LocusLink")
        dataset = EavDataset(
            "LocusLink",
            [
                EavRow("353", "Phenotype", "dwarfism"),
                EavRow("353", "Pathway", "purine-salvage"),
            ],
        )
        warehouse.integrate(dataset, auto_evolve=True)
        assert warehouse.schema_changes == 2
        assert {e.attribute for e in warehouse.evolution_log} == {
            "Phenotype", "Pathway",
        }

    def test_new_source_requires_entity_table(self, unigene_dataset):
        warehouse = StarWarehouse()
        with pytest.raises(SchemaEvolutionRequired):
            warehouse.integrate(unigene_dataset)

    def test_new_source_auto_evolution(self, unigene_dataset):
        warehouse = StarWarehouse()
        warehouse.integrate(unigene_dataset, auto_evolve=True)
        # One entity table + one bridge table for LocusLink references.
        assert warehouse.schema_changes == 2

    def test_annotations_of_unknown_attribute_rejected(self):
        warehouse = StarWarehouse()
        warehouse.design("LocusLink")
        with pytest.raises(SchemaEvolutionRequired):
            warehouse.annotations("LocusLink", "Phenotype")

    def test_name_rows_update_entity_table(self, locuslink_dataset):
        warehouse = StarWarehouse()
        warehouse.design("LocusLink")
        warehouse.integrate(locuslink_dataset)
        row = warehouse._connection.execute(
            "SELECT name FROM locuslink WHERE accession = '353'"
        ).fetchone()
        assert row["name"] == "adenine phosphoribosyltransferase"
