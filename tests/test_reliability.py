"""Tests for the reliability layer (repro.reliability).

Covers the fault plane, the retry/backoff policy (entirely on fake
clocks — no real sleeping), request deadlines, the circuit-breaker state
machine, degraded-mode (stale-cache) serving, import checkpoints, and
the web layer's 503/Retry-After behaviour.  The end-to-end chaos suite
lives in ``tests/test_chaos.py``.
"""

from __future__ import annotations

import io
import json
import sqlite3

import pytest

from repro.core.genmapper import GenMapper
from repro.gam.database import GamDatabase
from repro.obs import MetricsRegistry
from repro.reliability import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    FaultInjector,
    FaultRule,
    FaultSpecError,
    ImportJournal,
    RetryBudgetExceeded,
    RetryPolicy,
    capture_degraded,
    check_deadline,
    current_deadline,
    deadline_scope,
    file_fingerprint,
    injector_from_env,
    is_retryable,
    mark_degraded,
    parse_fault_rules,
    was_degraded,
)
from repro.reliability.breaker import CLOSED, HALF_OPEN, OPEN
from repro.web.app import create_app


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Keep this module deterministic under the CI chaos run.

    The chaos CI job exports ``REPRO_FAULTS`` for the whole tier-1 suite;
    these tests configure their own injectors and several disable retries,
    so ambient, probabilistic faults must not leak into them.
    """
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)


class FakeClock:
    """A manually advanced monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def no_retry() -> RetryPolicy:
    return RetryPolicy(max_attempts=1)


def fast_retry(**overrides) -> RetryPolicy:
    """A retry policy that never actually sleeps (injected no-op sleep)."""
    defaults = dict(
        max_attempts=5,
        base_delay=0.0005,
        max_delay=0.002,
        max_elapsed=None,
        sleep=lambda _s: None,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


# ---------------------------------------------------------------------------
# fault plane


class TestFaultRuleParsing:
    def test_minimal_rule(self):
        (rule,) = parse_fault_rules("busy")
        assert (rule.kind, rule.probability, rule.pattern) == ("busy", 1.0, None)
        assert (rule.times, rule.after) == (None, 0)

    def test_full_grammar(self):
        (rule,) = parse_fault_rules("busy:0.25@INSERT#3+2~0.5")
        assert rule.kind == "busy"
        assert rule.probability == 0.25
        assert rule.pattern == "INSERT"
        assert rule.times == 3
        assert rule.after == 2
        assert rule.seconds == 0.5

    def test_multiple_rules_semicolon_and_comma(self):
        rules = parse_fault_rules("busy:0.05; ioerror:0.01,latency~0.002")
        assert [rule.kind for rule in rules] == ["busy", "ioerror", "latency"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_rules("explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_rules("busy:1.5")

    def test_garbage_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_rules("busy:zero")

    def test_injector_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert injector_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "busy:0.5")
        monkeypatch.setenv("REPRO_FAULTS_SEED", "7")
        injector = injector_from_env()
        assert injector is not None
        assert injector.rules[0].probability == 0.5


class TestFaultInjector:
    def test_busy_raises_locked_error(self):
        injector = FaultInjector([FaultRule("busy")], registry=MetricsRegistry())
        with pytest.raises(sqlite3.OperationalError, match="database is locked"):
            injector.on_execute("INSERT INTO object VALUES (1)")
        assert injector.fired == 1

    def test_ioerror_raises_disk_error(self):
        injector = FaultInjector([FaultRule("ioerror")], registry=MetricsRegistry())
        with pytest.raises(sqlite3.OperationalError, match="disk I/O error"):
            injector.on_execute("SELECT 1")

    def test_pattern_matching_is_substring_case_insensitive(self):
        injector = FaultInjector(
            [FaultRule("busy", pattern="insert")], registry=MetricsRegistry()
        )
        injector.on_execute("SELECT * FROM object")  # no match, no fault
        with pytest.raises(sqlite3.OperationalError):
            injector.on_execute("INSERT INTO object VALUES (1)")

    def test_times_caps_fires(self):
        injector = FaultInjector(
            [FaultRule("busy", times=2)], registry=MetricsRegistry()
        )
        for _ in range(2):
            with pytest.raises(sqlite3.OperationalError):
                injector.on_execute("SELECT 1")
        injector.on_execute("SELECT 1")  # rule exhausted
        assert injector.fired == 2

    def test_after_skips_leading_calls(self):
        injector = FaultInjector(
            [FaultRule("busy", after=2, times=1)], registry=MetricsRegistry()
        )
        injector.on_execute("SELECT 1")
        injector.on_execute("SELECT 1")
        with pytest.raises(sqlite3.OperationalError):
            injector.on_execute("SELECT 1")

    def test_probability_is_seeded_and_deterministic(self):
        def count_fires(seed):
            injector = FaultInjector(
                [FaultRule("busy", probability=0.3, times=None)],
                seed=seed,
                registry=MetricsRegistry(),
            )
            fires = 0
            for _ in range(200):
                try:
                    injector.on_execute("SELECT 1")
                except sqlite3.OperationalError:
                    fires += 1
            return fires

        a, b = count_fires(42), count_fires(42)
        assert a == b  # reproducible per seed
        assert 20 < a < 100  # roughly 30% of 200

    def test_latency_rule_injects_delay_not_error(self):
        injector = FaultInjector(
            [FaultRule("latency", seconds=0.0)], registry=MetricsRegistry()
        )
        injector.on_execute("SELECT 1")  # must not raise
        assert injector.fired == 1

    def test_metrics_counted_by_kind(self):
        registry = MetricsRegistry()
        injector = FaultInjector([FaultRule("busy", times=1)], registry=registry)
        with pytest.raises(sqlite3.OperationalError):
            injector.on_execute("SELECT 1")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["reliability.faults.injected{kind=busy}"] == 1

    def test_reset_zeroes_counters(self):
        injector = FaultInjector(
            [FaultRule("busy", times=1)], registry=MetricsRegistry()
        )
        with pytest.raises(sqlite3.OperationalError):
            injector.on_execute("SELECT 1")
        injector.reset()
        assert injector.fired == 0
        with pytest.raises(sqlite3.OperationalError):
            injector.on_execute("SELECT 1")

    def test_blanket_rules_do_not_fire_on_connect(self):
        injector = FaultInjector([FaultRule("busy")], registry=MetricsRegistry())
        injector.on_connect()  # must not raise: no @CONNECT rule
        assert injector.fired == 0

    def test_targeted_connect_rule_fires_on_connect(self):
        injector = FaultInjector(
            [FaultRule("busy", pattern="CONNECT")], registry=MetricsRegistry()
        )
        with pytest.raises(sqlite3.OperationalError):
            injector.on_connect()


class TestFaultPlaneAtDatabaseBoundary:
    def test_injected_fault_is_retried_transparently(self):
        db = GamDatabase(retry_policy=fast_retry())
        registry = MetricsRegistry()
        db.retry_policy.registry = registry
        db.fault_injector = FaultInjector(
            [FaultRule("busy", times=2)], registry=registry
        )
        cursor = db.execute_read("SELECT count(*) FROM source")
        assert cursor.fetchone()[0] == 0
        snapshot = registry.snapshot()
        assert snapshot["counters"]["reliability.retry.attempts"] == 2
        assert snapshot["counters"]["reliability.retry.successes"] == 1
        db.close()

    def test_fault_fires_before_execution_so_db_is_unchanged(self):
        db = GamDatabase(retry_policy=no_retry())
        db.fault_injector = FaultInjector(
            [FaultRule("ioerror", pattern="INSERT", times=1)],
            registry=MetricsRegistry(),
        )
        with pytest.raises(sqlite3.OperationalError):
            db.execute(
                "INSERT INTO source (name, content, structure) VALUES (?, ?, ?)",
                ("S", "Gene", "Flat"),
            )
        assert db.execute_read("SELECT count(*) FROM source").fetchone()[0] == 0
        db.close()

    def test_write_retry_does_not_double_apply(self):
        db = GamDatabase(retry_policy=fast_retry())
        db.fault_injector = FaultInjector(
            [FaultRule("busy", pattern="INSERT", times=3)],
            registry=MetricsRegistry(),
        )
        db.execute(
            "INSERT INTO source (name, content, structure) VALUES (?, ?, ?)",
            ("S", "Gene", "Flat"),
        )
        assert db.execute_read("SELECT count(*) FROM source").fetchone()[0] == 1
        db.close()

    def test_transaction_rolls_back_on_exhausted_retries(self):
        db = GamDatabase(retry_policy=no_retry())
        db.fault_injector = FaultInjector(
            [FaultRule("busy", pattern="INSERT INTO object ", times=1)],
            registry=MetricsRegistry(),
        )
        with pytest.raises(sqlite3.OperationalError):
            with db.transaction():
                db.execute(
                    "INSERT INTO source (name, content, structure)"
                    " VALUES (?, ?, ?)",
                    ("S", "Gene", "Flat"),
                )
                db.execute(
                    "INSERT INTO object (source_id, accession) VALUES (1, 'a')"
                )
        counts = db.counts()
        assert counts["source"] == 0 and counts["object"] == 0
        db.close()


# ---------------------------------------------------------------------------
# retry policy


class TestRetryPolicy:
    def test_backoff_schedule_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, max_delay=8.0, multiplier=2.0
        )
        assert [policy.backoff(n) for n in range(1, 6)] == [1, 2, 4, 8, 8]

    def test_jittered_delay_never_exceeds_schedule(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=8.0, jitter=0.5)
        for attempt in range(1, 6):
            for _ in range(50):
                delay = policy.delay_for(attempt)
                assert 0.0 < delay <= policy.backoff(attempt)

    def test_zero_jitter_is_deterministic(self):
        policy = RetryPolicy(base_delay=1.0, jitter=0.0)
        assert policy.delay_for(1) == policy.backoff(1)

    def test_success_first_try_records_nothing(self):
        registry = MetricsRegistry()
        policy = fast_retry(registry=registry)
        assert policy.call(lambda: 42) == 42
        assert "reliability.retry.attempts" not in registry.snapshot()["counters"]

    def test_retries_then_succeeds(self):
        registry = MetricsRegistry()
        sleeps = []
        policy = fast_retry(registry=registry, sleep=sleeps.append)
        failures = iter([sqlite3.OperationalError("database is locked")] * 2)

        def flaky():
            for exc in failures:
                raise exc
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(sleeps) == 2
        counters = registry.snapshot()["counters"]
        assert counters["reliability.retry.attempts"] == 2
        assert counters["reliability.retry.successes"] == 1

    def test_non_retryable_raises_immediately(self):
        calls = []
        policy = fast_retry()

        def bad():
            calls.append(1)
            raise sqlite3.IntegrityError("UNIQUE constraint failed")

        with pytest.raises(sqlite3.IntegrityError):
            policy.call(bad)
        assert len(calls) == 1

    def test_gives_up_after_max_attempts(self):
        registry = MetricsRegistry()
        policy = fast_retry(max_attempts=3, registry=registry)

        def always_busy():
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(RetryBudgetExceeded) as excinfo:
            policy.call(always_busy)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.__cause__, sqlite3.OperationalError)
        assert registry.snapshot()["counters"]["reliability.retry.giveups"] == 1

    def test_budget_error_is_itself_classified_retryable(self):
        # Callers above the storage layer (the circuit breaker) treat an
        # exhausted retry budget as the transient failure it wraps.
        error = RetryBudgetExceeded(
            3, sqlite3.OperationalError("database is locked")
        )
        assert is_retryable(error)

    def test_time_budget_bounds_total_elapsed(self):
        clock = FakeClock()

        def sleeper(seconds):
            clock.advance(seconds)

        policy = RetryPolicy(
            max_attempts=100,
            base_delay=1.0,
            max_delay=1.0,
            jitter=0.0,
            max_elapsed=3.5,
            clock=clock,
            sleep=sleeper,
        )
        with pytest.raises(RetryBudgetExceeded):
            policy.call(
                lambda: (_ for _ in ()).throw(
                    sqlite3.OperationalError("database is locked")
                )
            )
        # Slept 1s three times, then the fourth delay would exceed 3.5s.
        assert clock.now - 100.0 == pytest.approx(3.0)

    def test_never_sleeps_past_an_active_deadline(self):
        clock = FakeClock()
        sleeps = []
        policy = RetryPolicy(
            max_attempts=10,
            base_delay=5.0,
            max_delay=5.0,
            jitter=0.0,
            max_elapsed=None,
            clock=clock,
            sleep=sleeps.append,
        )
        with deadline_scope(1.0, clock=clock):
            with pytest.raises(RetryBudgetExceeded):
                policy.call(
                    lambda: (_ for _ in ()).throw(
                        sqlite3.OperationalError("database is locked")
                    )
                )
        assert sleeps == []  # 5s backoff > 1s remaining: give up, don't sleep

    def test_retryable_classification(self):
        assert is_retryable(sqlite3.OperationalError("database is locked"))
        assert is_retryable(sqlite3.OperationalError("disk I/O error"))
        assert not is_retryable(sqlite3.OperationalError("no such table: x"))
        assert not is_retryable(sqlite3.IntegrityError("UNIQUE constraint"))
        assert not is_retryable(ValueError("nope"))


# ---------------------------------------------------------------------------
# deadlines


class TestDeadlines:
    def test_remaining_and_expired(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0.0)

    def test_scope_installs_and_removes(self):
        assert current_deadline() is None
        with deadline_scope(5.0) as deadline:
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_budget_is_noop(self):
        with deadline_scope(None) as deadline:
            assert deadline is None
            check_deadline()  # no-op

    def test_nested_scopes_keep_the_tighter_deadline(self):
        clock = FakeClock()
        with deadline_scope(1.0, clock=clock) as outer:
            with deadline_scope(100.0, clock=clock) as inner:
                assert inner is outer  # laxer inner cannot extend
            with deadline_scope(0.1, clock=clock) as tighter:
                assert tighter is not outer
                assert tighter.expires_at < outer.expires_at

    def test_check_deadline_raises_after_expiry(self):
        clock = FakeClock()
        with deadline_scope(0.5, clock=clock):
            check_deadline()
            clock.advance(1.0)
            with pytest.raises(DeadlineExceeded) as excinfo:
                check_deadline()
        assert excinfo.value.budget == 0.5
        assert excinfo.value.retry_after > 0

    def test_deadline_exceeded_is_not_retryable(self):
        assert not is_retryable(DeadlineExceeded(1.0))

    def test_database_execute_honours_deadline(self):
        clock = FakeClock()
        db = GamDatabase(retry_policy=no_retry())
        with deadline_scope(0.5, clock=clock):
            db.execute_read("SELECT 1")
            clock.advance(1.0)
            with pytest.raises(DeadlineExceeded):
                db.execute_read("SELECT 1")
        db.close()

    def test_run_query_timeout(self, paper_genmapper):
        from repro.query.session import QuerySession

        session = QuerySession(paper_genmapper).select_source("LocusLink")
        session.add_target("GO")
        # An infinitesimal budget is caught at the first check (before the
        # view is built — and therefore before it could be cached)...
        with pytest.raises(DeadlineExceeded):
            session.run(timeout=1e-9)
        # ... while a generous one passes.
        view = session.run(timeout=30.0)
        assert len(view.columns) == 2

    def test_set_deadline_validates(self, paper_genmapper):
        from repro.gam.errors import QuerySpecError
        from repro.query.session import QuerySession

        session = QuerySession(paper_genmapper)
        with pytest.raises(QuerySpecError):
            session.set_deadline(-1)


# ---------------------------------------------------------------------------
# circuit breaker


class TestCircuitBreaker:
    def make(self, clock, **overrides):
        defaults = dict(
            failure_threshold=3,
            recovery_time=10.0,
            clock=clock,
            registry=MetricsRegistry(),
        )
        defaults.update(overrides)
        return CircuitBreaker(**defaults)

    def test_starts_closed_and_allows(self):
        breaker = self.make(FakeClock())
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_opens_at_failure_threshold(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_consecutive_failures(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(4.0)
        assert breaker.retry_after() == pytest.approx(6.0)

    def test_half_open_after_recovery_time_admits_bounded_probes(self):
        clock = FakeClock()
        breaker = self.make(clock, half_open_max=1)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.1)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe admitted

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        # The recovery window restarts from the re-open.
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_open_error_carries_retry_after(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        error = breaker.open_error()
        assert isinstance(error, CircuitOpenError)
        assert error.retry_after == pytest.approx(10.0)

    def test_stats_shape(self):
        breaker = self.make(FakeClock())
        stats = breaker.stats()
        assert stats["state"] == CLOSED
        assert stats["failure_threshold"] == 3

    def test_metrics_opens_and_closes(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        breaker = self.make(clock, registry=registry)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.1)
        breaker.allow()
        breaker.record_success()
        counters = registry.snapshot()["counters"]
        assert counters["reliability.breaker.opens{breaker=repository}"] == 1
        assert counters["reliability.breaker.closes{breaker=repository}"] == 1


class TestDegradedSignalling:
    def test_capture_and_mark(self):
        with capture_degraded() as state:
            assert not was_degraded()
            mark_degraded("stale mapping")
            assert was_degraded()
            assert state["degraded"] is True
            assert state["reasons"] == ["stale mapping"]
        assert not was_degraded()

    def test_mark_outside_capture_is_safe(self):
        mark_degraded("nobody listening")  # must not raise


# ---------------------------------------------------------------------------
# degraded-mode serving through the facade


def break_storage(gm: GenMapper) -> None:
    """Make every subsequent guarded statement fail fast."""
    gm.db.fault_injector = FaultInjector(
        [FaultRule("busy")], registry=MetricsRegistry()
    )
    gm.db.retry_policy = RetryPolicy(max_attempts=1)


class TestDegradedServing:
    def test_stale_mapping_served_when_storage_fails(self, paper_genmapper):
        gm = paper_genmapper
        fresh = gm.map("LocusLink", "GO")
        # A write moves the generation: the cached entry is now stale.
        gm.db.execute(
            "INSERT INTO meta (key, value) VALUES ('poke', '1')"
            " ON CONFLICT (key) DO UPDATE SET value = value"
        )
        break_storage(gm)
        with capture_degraded() as state:
            stale = gm.map("LocusLink", "GO")
        assert state["degraded"] is True
        assert list(stale) == list(fresh)

    def test_breaker_opens_and_short_circuits_to_stale(self, paper_genmapper):
        gm = paper_genmapper
        gm.breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=60.0, registry=MetricsRegistry()
        )
        gm.map("LocusLink", "GO")
        gm.db.execute(
            "INSERT INTO meta (key, value) VALUES ('poke', '1')"
            " ON CONFLICT (key) DO UPDATE SET value = value"
        )
        break_storage(gm)
        with capture_degraded():
            gm.map("LocusLink", "GO")  # fails, records failure, serves stale
        assert gm.breaker.state == OPEN
        # Now the breaker short-circuits: no storage touch, stale served.
        fired_before = gm.db.fault_injector.fired
        with capture_degraded() as state:
            gm.map("LocusLink", "GO")
        assert state["degraded"] is True
        assert gm.db.fault_injector.fired == fired_before

    def test_open_circuit_without_fallback_raises(self, paper_genmapper):
        gm = paper_genmapper
        gm.breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=60.0, registry=MetricsRegistry()
        )
        gm.breaker.record_failure()
        assert gm.breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            gm.map("LocusLink", "Unigene")  # never cached: nothing stale

    def test_non_storage_errors_do_not_trip_the_breaker(self, paper_genmapper):
        gm = paper_genmapper
        gm.breaker = CircuitBreaker(
            failure_threshold=1, registry=MetricsRegistry()
        )
        from repro.gam.errors import GenMapperError

        with pytest.raises(GenMapperError):
            gm.map("LocusLink", "NoSuchSource")
        assert gm.breaker.state == CLOSED


# ---------------------------------------------------------------------------
# import checkpoints


class TestImportJournal:
    def test_record_and_completed_roundtrip(self):
        db = GamDatabase()
        journal = ImportJournal(db)
        assert not journal.completed("GO", "go.obo", "abc", "r1")
        journal.record("GO", "go.obo", "abc", "r1")
        assert journal.completed("GO", "go.obo", "abc", "r1")
        # Changed content, release, or file all mean "not done".
        assert not journal.completed("GO", "go.obo", "other", "r1")
        assert not journal.completed("GO", "go.obo", "abc", "r2")
        assert not journal.completed("GO", "go2.obo", "abc", "r1")
        db.close()

    def test_record_is_idempotent_upsert(self):
        db = GamDatabase()
        journal = ImportJournal(db)
        journal.record("GO", "go.obo", "abc")
        journal.record("GO", "go.obo", "def")
        assert not journal.completed("GO", "go.obo", "abc")
        assert journal.completed("GO", "go.obo", "def")
        assert len(journal.entries()) == 1
        db.close()

    def test_entries_and_clear(self):
        db = GamDatabase()
        journal = ImportJournal(db)
        journal.record("GO", "go.obo", "abc", "r1")
        journal.record("LocusLink", "ll.txt", "def")
        entries = journal.entries()
        assert set(entries) == {"GO/go.obo", "LocusLink/ll.txt"}
        assert entries["GO/go.obo"]["fingerprint"] == "abc"
        assert journal.clear() == 2
        assert journal.entries() == {}
        db.close()

    def test_file_fingerprint_tracks_content(self, tmp_path):
        path = tmp_path / "data.txt"
        path.write_text("one")
        first = file_fingerprint(path)
        assert first == file_fingerprint(path)
        path.write_text("two")
        assert file_fingerprint(path) != first


class TestResumableDirectoryImport:
    def test_directory_import_writes_checkpoints(self, genmapper, universe_dir):
        genmapper.integrate_directory(universe_dir)
        journal = ImportJournal(genmapper.db)
        entries = journal.entries()
        assert len(entries) >= 2
        assert all("fingerprint" in record for record in entries.values())

    def test_resume_skips_checkpointed_sources(self, genmapper, universe_dir):
        first = genmapper.integrate_directory(universe_dir)
        resumed = genmapper.integrate_directory(universe_dir, resume=True)
        assert [r.source.name for r in resumed] == [
            r.source.name for r in first
        ]
        assert all(report.new_objects == 0 for report in resumed)
        assert all(report.total_associations == 0 for report in resumed)

    def test_resume_env_var(self, genmapper, universe_dir, monkeypatch):
        genmapper.integrate_directory(universe_dir)
        monkeypatch.setenv("REPRO_IMPORT_RESUME", "1")
        resumed = genmapper.integrate_directory(universe_dir)
        assert all(report.new_objects == 0 for report in resumed)

    def test_without_resume_flag_reimports(self, genmapper, universe_dir):
        genmapper.integrate_directory(universe_dir)
        again = genmapper.integrate_directory(universe_dir)
        # Re-import runs (dedup makes it a no-op), it is not skipped:
        # the reports come from real imports, not zero-count stubs.
        assert all(report.source.imported_at for report in again)


# ---------------------------------------------------------------------------
# web layer: 503, Retry-After, degraded flag, X-Request-Timeout


def call_with_headers(app, method, path, query="", body=None, headers=None):
    raw = json.dumps(body).encode() if body is not None else b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value
    captured = {}

    def start_response(status, response_headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    chunks = app(environ, start_response)
    payload = json.loads(b"".join(chunks).decode("utf-8"))
    return captured["status"], payload, captured["headers"]


class TestWebResilience:
    def test_request_timeout_sheds_with_503_and_retry_after(
        self, paper_genmapper
    ):
        app = create_app(paper_genmapper, request_timeout=1e-9)
        status, payload, headers = call_with_headers(
            app, "POST", "/query", body={"query": "ANNOTATE LocusLink WITH GO"}
        )
        assert status == 503
        assert "deadline" in payload["error"]
        assert int(headers["Retry-After"]) >= 1

    def test_header_timeout_sheds_one_request(self, paper_genmapper):
        app = create_app(paper_genmapper)
        status, __, headers = call_with_headers(
            app,
            "POST",
            "/query",
            body={"query": "ANNOTATE LocusLink WITH GO"},
            headers={"X-Request-Timeout": "0.000000001"},
        )
        assert status == 503
        assert "Retry-After" in headers
        # Without the header the same query is fine.
        status, payload, __ = call_with_headers(
            app, "POST", "/query", body={"query": "ANNOTATE LocusLink WITH GO"}
        )
        assert status == 200
        assert payload["row_count"] >= 1

    def test_header_cannot_extend_server_budget(self, paper_genmapper):
        app = create_app(paper_genmapper, request_timeout=1e-9)
        status, __, __ = call_with_headers(
            app,
            "POST",
            "/query",
            body={"query": "ANNOTATE LocusLink WITH GO"},
            headers={"X-Request-Timeout": "3600"},
        )
        assert status == 503

    def test_invalid_timeout_header_is_400(self, paper_genmapper):
        app = create_app(paper_genmapper)
        for bad in ("abc", "-1", "0"):
            status, payload, __ = call_with_headers(
                app,
                "GET",
                "/sources",
                headers={"X-Request-Timeout": bad},
            )
            assert status == 400
            assert "X-Request-Timeout" in payload["error"]

    def test_circuit_open_is_503_with_retry_after(self, paper_genmapper):
        gm = paper_genmapper
        gm.breaker = CircuitBreaker(
            failure_threshold=1, recovery_time=30.0, registry=MetricsRegistry()
        )
        gm.breaker.record_failure()
        app = create_app(gm)
        status, payload, headers = call_with_headers(
            app, "GET", "/map", query="source=LocusLink&target=Unigene"
        )
        assert status == 503
        assert "circuit" in payload["error"]
        assert int(headers["Retry-After"]) >= 1

    def test_degraded_response_flagged(self, paper_genmapper):
        gm = paper_genmapper
        app = create_app(gm)
        status, fresh, __ = call_with_headers(
            app, "GET", "/map", query="source=LocusLink&target=GO"
        )
        assert status == 200 and "degraded" not in fresh
        gm.db.execute(
            "INSERT INTO meta (key, value) VALUES ('poke', '1')"
            " ON CONFLICT (key) DO UPDATE SET value = value"
        )
        break_storage(gm)
        status, payload, __ = call_with_headers(
            app, "GET", "/map", query="source=LocusLink&target=GO"
        )
        assert status == 200
        assert payload["degraded"] is True
        assert payload["degraded_reasons"]
        assert payload["associations"] == fresh["associations"]
