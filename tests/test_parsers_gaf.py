"""Tests for the GAF (GO annotation file) parser."""

import pytest

from repro.eav.model import NAME_TARGET
from repro.gam.enums import RelType
from repro.gam.errors import ParseError
from repro.parsers.gaf import EVIDENCE_VALUES, GafParser


def gaf_row(object_id="S001", symbol="APRT", qualifier="", go="GO:0009116",
            evidence="IDA", name="adenine phosphoribosyltransferase"):
    columns = [
        "SGD", object_id, symbol, qualifier, go, "PMID:1", evidence, "",
        "P", name, "APRT1", "gene", "taxon:9606", "20031001", "SGD",
    ]
    return "\t".join(columns)


HEADER = "!gaf-version: 1.0\n"


class TestGafParser:
    def test_basic_annotation(self):
        rows = GafParser().parse_text(HEADER + gaf_row() + "\n").rows
        go = [r for r in rows if r.target == "GO"]
        assert len(go) == 1
        assert go[0].entity == "S001"
        assert go[0].accession == "GO:0009116"
        assert go[0].evidence == 1.0

    def test_symbol_and_name_extracted(self):
        rows = GafParser().parse_text(HEADER + gaf_row() + "\n").rows
        targets = {r.target for r in rows}
        assert "Hugo" in targets
        assert NAME_TARGET in targets

    def test_comment_lines_skipped(self):
        dataset = GafParser().parse_text(
            "!comment\n!another\n" + gaf_row() + "\n"
        )
        assert len(dataset.entities()) == 1

    def test_not_qualifier_skipped(self):
        text = HEADER + gaf_row(qualifier="NOT") + "\n"
        rows = GafParser().parse_text(text).rows
        assert all(r.target != "GO" for r in rows)

    def test_compound_not_qualifier_skipped(self):
        text = HEADER + gaf_row(qualifier="NOT|contributes_to") + "\n"
        rows = GafParser().parse_text(text).rows
        assert all(r.target != "GO" for r in rows)

    def test_positive_qualifier_kept(self):
        text = HEADER + gaf_row(qualifier="contributes_to") + "\n"
        rows = GafParser().parse_text(text).rows
        assert any(r.target == "GO" for r in rows)

    @pytest.mark.parametrize("code,expected", sorted(EVIDENCE_VALUES.items()))
    def test_evidence_codes_mapped(self, code, expected):
        text = HEADER + gaf_row(evidence=code) + "\n"
        go = [r for r in GafParser().parse_text(text).rows if r.target == "GO"]
        assert go[0].evidence == pytest.approx(expected)

    def test_unknown_evidence_defaults_to_iea_level(self):
        text = HEADER + gaf_row(evidence="XXX") + "\n"
        go = [r for r in GafParser().parse_text(text).rows if r.target == "GO"]
        assert go[0].evidence == pytest.approx(0.7)

    def test_name_emitted_once_per_object(self):
        text = HEADER + gaf_row() + "\n" + gaf_row(go="GO:0007155") + "\n"
        rows = GafParser().parse_text(text).rows
        names = [r for r in rows if r.target == NAME_TARGET]
        assert len(names) == 1

    def test_short_row_rejected(self):
        with pytest.raises(ParseError, match="columns"):
            GafParser().parse_text("A\tB\tC\n")

    def test_bad_go_id_rejected(self):
        with pytest.raises(ParseError, match="GO id"):
            GafParser().parse_text(HEADER + gaf_row(go="0009116") + "\n")


class TestGafImport:
    def test_iea_annotations_become_similarity_mapping(self, genmapper):
        text = HEADER + gaf_row(evidence="IEA") + "\n"
        genmapper.integrate_text(text, "GOA")
        mapping = genmapper.map("GOA", "GO")
        assert mapping.rel_type is RelType.SIMILARITY
        assert mapping.associations[0].evidence == pytest.approx(0.7)

    def test_experimental_annotations_stay_facts(self, genmapper):
        text = HEADER + gaf_row(evidence="IDA") + "\n"
        genmapper.integrate_text(text, "GOA")
        mapping = genmapper.map("GOA", "GO")
        assert mapping.rel_type is RelType.FACT

    def test_evidence_filter_on_imported_gaf(self, genmapper):
        text = (
            HEADER
            + gaf_row(object_id="S001", evidence="IDA") + "\n"
            + gaf_row(object_id="S002", go="GO:0007155", evidence="IEA") + "\n"
        )
        genmapper.integrate_text(text, "GOA")
        mapping = genmapper.map("GOA", "GO")
        trusted = mapping.filter_evidence(0.9)
        assert trusted.domain() == {"S001"}
