"""Tests for the WSGI JSON API (repro.web)."""

import io
import json

import pytest

from repro.web.app import create_app


def call(app, method, path, query="", body=None):
    """Invoke a WSGI app directly; returns (status_code, decoded_json)."""
    raw = json.dumps(body).encode() if body is not None else b""
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(headers)

    chunks = app(environ, start_response)
    payload = json.loads(b"".join(chunks).decode("utf-8"))
    return captured["status"], payload


@pytest.fixture()
def app(paper_genmapper):
    return create_app(paper_genmapper)


class TestSourcesEndpoints:
    def test_list_sources(self, app):
        status, payload = call(app, "GET", "/sources")
        assert status == 200
        names = {source["name"] for source in payload["sources"]}
        assert {"LocusLink", "GO", "Unigene"} <= names

    def test_source_detail_includes_coverage(self, app):
        status, payload = call(app, "GET", "/sources/LocusLink")
        assert status == 200
        assert payload["objects"] == 1
        targets = {entry["target"] for entry in payload["coverage"]}
        assert "GO" in targets

    def test_unknown_source_is_400(self, app):
        status, payload = call(app, "GET", "/sources/Nope")
        assert status == 400
        assert "unknown source" in payload["error"]

    def test_objects_pagination(self, app):
        status, payload = call(
            app, "GET", "/sources/GO/objects", query="limit=2&offset=1"
        )
        assert status == 200
        assert payload["total"] == 3
        assert len(payload["objects"]) == 2


class TestObjectEndpoint:
    def test_object_info(self, app):
        status, payload = call(app, "GET", "/objects/LocusLink/353")
        assert status == 200
        partners = {a["partner"] for a in payload["annotations"]}
        assert {"Hugo", "GO", "OMIM"} <= partners

    def test_unknown_object_is_400(self, app):
        status, payload = call(app, "GET", "/objects/LocusLink/999")
        assert status == 400
        assert "unknown object" in payload["error"]


class TestMapAndPaths:
    def test_map_stored(self, app):
        status, payload = call(
            app, "GET", "/map", query="source=LocusLink&target=GO"
        )
        assert status == 200
        assert payload["rel_type"] == "Fact"
        assert ["353", "GO:0009116", 1.0] in payload["associations"]

    def test_map_composes_automatically(self, app):
        status, payload = call(
            app, "GET", "/map", query="source=Unigene&target=GO"
        )
        assert status == 200
        assert payload["rel_type"] == "Composed"

    def test_missing_parameter_is_400(self, app):
        status, payload = call(app, "GET", "/map", query="source=GO")
        assert status == 400
        assert "target" in payload["error"]

    def test_paths(self, app):
        status, payload = call(
            app, "GET", "/paths", query="source=Unigene&target=GO&k=2"
        )
        assert status == 200
        assert ["Unigene", "LocusLink", "GO"] in payload["paths"]


class TestQueryEndpoints:
    def test_query_with_language_body(self, app):
        status, payload = call(
            app, "POST", "/query",
            body={"query": "ANNOTATE LocusLink WITH Hugo AND GO"},
        )
        assert status == 200
        assert payload["columns"] == ["LocusLink", "Hugo", "GO"]
        assert ["353", "APRT", "GO:0009116"] in payload["rows"]

    def test_query_with_structured_body(self, app):
        status, payload = call(
            app, "POST", "/query",
            body={
                "source": "LocusLink",
                "accessions": ["353"],
                "targets": [
                    {"name": "GO"},
                    {"name": "OMIM", "negated": True},
                ],
                "combine": "AND",
            },
        )
        assert status == 200
        assert payload["row_count"] == 0  # 353 has an OMIM annotation

    def test_explain_endpoint(self, app):
        status, payload = call(
            app, "POST", "/query/explain",
            body={"query": "ANNOTATE Unigene WITH GO"},
        )
        assert status == 200
        assert payload["executable"] is True
        assert payload["targets"][0]["kind"] == "composed"
        assert payload["targets"][0]["path"] == ["Unigene", "LocusLink", "GO"]

    def test_empty_body_is_400(self, app):
        status, payload = call(app, "POST", "/query")
        assert status == 400
        assert "body" in payload["error"]

    def test_invalid_json_is_400(self, app, paper_genmapper):
        raw = b"{not json"
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/query",
            "QUERY_STRING": "",
            "CONTENT_LENGTH": str(len(raw)),
            "wsgi.input": io.BytesIO(raw),
        }
        captured = {}
        app_ = create_app(paper_genmapper)
        chunks = app_(environ, lambda s, h: captured.setdefault("status", s))
        assert captured["status"].startswith("400")
        assert b"invalid JSON" in b"".join(chunks)

    def test_malformed_spec_is_400(self, app):
        status, payload = call(
            app, "POST", "/query", body={"source": "LocusLink"}
        )
        assert status == 400
        assert "malformed" in payload["error"]

    def test_bad_query_language_is_400(self, app):
        status, payload = call(
            app, "POST", "/query", body={"query": "SELECT * FROM genes"}
        )
        assert status == 400

    def test_non_object_json_bodies_are_400_not_500(self, app):
        # Valid JSON that isn't an object used to crash field access (500).
        for body in (["ANNOTATE LocusLink WITH GO"], "just a string", 42):
            status, payload = call(app, "POST", "/query", body=body)
            assert status == 400, f"body {body!r} gave {status}"
            assert "JSON object" in payload["error"]

    def test_non_object_body_on_explain_is_400(self, app):
        status, payload = call(app, "POST", "/query/explain", body=[1, 2])
        assert status == 400
        assert "JSON object" in payload["error"]

    def test_non_string_query_field_is_400(self, app):
        for bad in (["ANNOTATE"], {"q": 1}, 7):
            status, payload = call(
                app, "POST", "/query", body={"query": bad}
            )
            assert status == 400
            assert "must be a string" in payload["error"]


@pytest.fixture()
def cached_app():
    """The paper app with the cache force-enabled so these tests hold
    under the CI ``REPRO_CACHE=off`` guard run."""
    from repro.core.genmapper import GenMapper
    from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD, UNIGENE_MINI

    with GenMapper(enable_cache=True) as gm:
        gm.integrate_text(LOCUS_353_RECORD, "LocusLink")
        gm.integrate_text(GO_MINI_OBO, "GO")
        gm.integrate_text(UNIGENE_MINI, "Unigene")
        yield create_app(gm)


class TestCacheSurface:
    def test_metrics_includes_cache_block(self, cached_app):
        status, payload = call(cached_app, "GET", "/metrics")
        assert status == 200
        cache = payload["cache"]
        for field in ("hits", "misses", "evictions", "invalidations",
                      "entries", "hit_ratio", "generation"):
            assert field in cache

    def test_metrics_cache_is_null_when_disabled(self):
        from repro.core.genmapper import GenMapper

        with GenMapper(enable_cache=False) as gm:
            status, payload = call(create_app(gm), "GET", "/metrics")
        assert status == 200
        assert payload["cache"] is None

    def test_explain_reports_cache_status(self, cached_app):
        body = {"query": "ANNOTATE LocusLink WITH GO"}
        status, payload = call(cached_app, "POST", "/query/explain", body=body)
        assert status == 200
        cache = payload["cache"]
        assert cache["enabled"] is True
        assert cache["targets"] == [{
            "target": "GO",
            "cached": False,
            "dependencies": None,
            "required_generation": None,
        }]
        assert cache["view_cached"] is False
        assert cache["generation_vector"]["floor"] >= 0
        # Running the query warms both the mapping and the rendered view;
        # the loader's capture makes the entry's dependencies known.
        status, __ = call(cached_app, "POST", "/query", body=body)
        assert status == 200
        __, payload = call(cached_app, "POST", "/query/explain", body=body)
        cache = payload["cache"]
        (target,) = cache["targets"]
        assert target["target"] == "GO"
        assert target["cached"] is True
        assert target["dependencies"] == ["GO", "LocusLink"]
        assert target["required_generation"] == max(
            cache["generation_vector"]["sources"].get(name, 0)
            for name in ("GO", "LocusLink")
        )
        assert cache["view_cached"] is True
        assert cache["stats"]["entries"] >= 2

    def test_explain_cache_block_when_disabled(self):
        from repro.core.genmapper import GenMapper
        from tests.conftest import GO_MINI_OBO, LOCUS_353_RECORD

        with GenMapper(enable_cache=False) as gm:
            gm.integrate_text(LOCUS_353_RECORD, "LocusLink")
            gm.integrate_text(GO_MINI_OBO, "GO")
            status, payload = call(
                create_app(gm), "POST", "/query/explain",
                body={"query": "ANNOTATE LocusLink WITH GO"},
            )
        assert status == 200
        assert payload["cache"] == {"enabled": False}

    def test_explain_probe_matches_via_paths(self, cached_app):
        body = {
            "source": "Unigene",
            "targets": [{"name": "GO", "via": ["LocusLink"]}],
            "combine": "OR",
        }
        __, payload = call(cached_app, "POST", "/query/explain", body=body)
        (target,) = payload["cache"]["targets"]
        assert (target["target"], target["cached"]) == ("GO", False)
        call(cached_app, "POST", "/query", body=body)
        __, payload = call(cached_app, "POST", "/query/explain", body=body)
        (target,) = payload["cache"]["targets"]
        assert (target["target"], target["cached"]) == ("GO", True)
        # The composed path records every source the chain touched,
        # including the via intermediate.
        assert target["dependencies"] == ["GO", "LocusLink", "Unigene"]


class TestStatsAndErrors:
    def test_stats(self, app):
        status, payload = call(app, "GET", "/stats")
        assert status == 200
        assert payload["sources"] > 0
        assert payload["associations"] > 0

    def test_unknown_route_is_404(self, app):
        status, payload = call(app, "GET", "/nope")
        assert status == 404

    def test_unknown_method_is_405(self, app):
        status, __ = call(app, "DELETE", "/sources")
        assert status == 405

    def test_unhandled_error_returns_json_500(self, app, monkeypatch):
        import repro.web.app as web_app

        def explode(genmapper, environ, registry, tracer):
            raise RuntimeError("route exploded")

        monkeypatch.setattr(web_app, "_route", explode)
        status, payload = call(app, "GET", "/stats")
        assert status == 500
        assert "internal server error" in payload["error"]
        assert "route exploded" in payload["error"]

    def test_content_type_json(self, paper_genmapper):
        app_ = create_app(paper_genmapper)
        captured = {}

        def start_response(status, headers):
            captured["headers"] = dict(headers)

        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": "/stats",
            "QUERY_STRING": "",
            "wsgi.input": io.BytesIO(b""),
        }
        list(app_(environ, start_response))
        assert captured["headers"]["Content-Type"].startswith(
            "application/json"
        )
