"""Tests for query specifications and the ANNOTATE query language."""

import pytest

from repro.gam.enums import CombineMethod
from repro.gam.errors import QuerySpecError
from repro.query.language import parse_query
from repro.query.spec import QuerySpec, QueryTarget


class TestQuerySpec:
    def test_build_with_plain_names(self):
        spec = QuerySpec.build("LocusLink", ["Hugo", "GO"])
        assert [target.name for target in spec.targets] == ["Hugo", "GO"]
        assert spec.combine is CombineMethod.AND

    def test_requires_source(self):
        with pytest.raises(QuerySpecError, match="source"):
            QuerySpec(source="", accessions=None,
                      targets=(QueryTarget("GO"),))

    def test_requires_targets(self):
        with pytest.raises(QuerySpecError, match="target"):
            QuerySpec.build("LocusLink", [])

    def test_rejects_duplicate_targets(self):
        with pytest.raises(QuerySpecError, match="duplicate"):
            QuerySpec.build("LocusLink", ["GO", "GO"])

    def test_rejects_source_as_target(self):
        with pytest.raises(QuerySpecError, match="cannot also be"):
            QuerySpec.build("GO", ["GO"])

    def test_target_spec_conversion(self):
        target = QueryTarget(
            "GO", accessions=frozenset({"GO:1"}), negated=True,
            via=("LocusLink",),
        )
        spec = target.to_target_spec()
        assert spec.name == "GO"
        assert spec.restrict == frozenset({"GO:1"})
        assert spec.negated is True
        assert spec.via == ("LocusLink",)

    def test_describe_readable(self):
        spec = QuerySpec.build(
            "LocusLink",
            [
                QueryTarget("GO", frozenset({"GO:1"})),
                QueryTarget("OMIM", negated=True),
            ],
            accessions=["353"],
            combine="AND",
        )
        text = spec.describe()
        assert "ANNOTATE LocusLink" in text
        assert "NOT OMIM" in text
        assert "GO IN (GO:1)" in text


class TestQueryLanguage:
    def test_minimal_query(self):
        spec = parse_query("ANNOTATE LocusLink WITH Hugo")
        assert spec.source == "LocusLink"
        assert spec.accessions is None
        assert spec.targets[0].name == "Hugo"

    def test_objects_list(self):
        spec = parse_query("ANNOTATE LocusLink OBJECTS 353, 354 WITH Hugo")
        assert spec.accessions == frozenset({"353", "354"})

    def test_paper_motivating_query(self):
        # "Given a set of LocusLink genes, identify those located at given
        # cytogenetic positions, annotated with given GO functions, but not
        # associated with given OMIM diseases."
        spec = parse_query(
            "ANNOTATE LocusLink OBJECTS 353 "
            "WITH Location IN (16q24) "
            "AND GO IN (GO:0009116) "
            "AND NOT OMIM IN (102600)"
        )
        assert spec.combine is CombineMethod.AND
        assert len(spec.targets) == 3
        omim = spec.targets[2]
        assert omim.negated
        assert omim.accessions == frozenset({"102600"})

    def test_or_combination(self):
        spec = parse_query("ANNOTATE X WITH A OR B")
        assert spec.combine is CombineMethod.OR

    def test_mixed_connectors_rejected(self):
        with pytest.raises(QuerySpecError, match="mix"):
            parse_query("ANNOTATE X WITH A AND B OR C")

    def test_via_path(self):
        spec = parse_query("ANNOTATE NetAffx WITH GO VIA Unigene -> LocusLink")
        assert spec.targets[0].via == ("Unigene", "LocusLink")

    def test_keywords_case_insensitive(self):
        spec = parse_query("annotate X with not A in (v1, v2)")
        assert spec.targets[0].negated
        assert spec.targets[0].accessions == frozenset({"v1", "v2"})

    def test_empty_query_rejected(self):
        with pytest.raises(QuerySpecError, match="empty"):
            parse_query("   ")

    def test_missing_with_rejected(self):
        with pytest.raises(QuerySpecError, match="WITH"):
            parse_query("ANNOTATE X Hugo")

    def test_empty_in_list_rejected(self):
        with pytest.raises(QuerySpecError, match="empty IN"):
            parse_query("ANNOTATE X WITH A IN ()")

    def test_empty_objects_rejected(self):
        with pytest.raises(QuerySpecError, match="OBJECTS"):
            parse_query("ANNOTATE X OBJECTS WITH A")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QuerySpecError, match="trailing"):
            parse_query("ANNOTATE X WITH A ) junk")

    def test_keyword_as_name_rejected(self):
        with pytest.raises(QuerySpecError, match="name"):
            parse_query("ANNOTATE WITH WITH A")

    def test_round_trip_with_describe(self):
        spec = parse_query(
            "ANNOTATE LocusLink OBJECTS 353 WITH Hugo AND NOT OMIM"
        )
        reparsed = parse_query(spec.describe().replace("[1 objects]",
                                                       "OBJECTS 353"))
        assert reparsed.source == spec.source
        assert [t.name for t in reparsed.targets] == ["Hugo", "OMIM"]
