"""Chaos suite: the system under injected storage faults.

Two end-to-end properties proven here:

1. **Fault equivalence** — concurrent imports and queries under a 5%
   injected SQLITE_BUSY rate produce a GAM snapshot byte-identical to a
   fault-free run, with zero caller-visible storage errors (the retry
   layer absorbs every injected fault).
2. **Crash resume** — an import killed deterministically mid-run resumes
   with ``resume=True`` and converges to the same snapshot as an
   uninterrupted import, without redoing checkpointed sources.

Faults are injected at the statement boundary *before* execution, so a
retried statement can never double-apply; that is what makes blind
retries sound and these equivalence checks meaningful.
"""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.core.genmapper import GenMapper
from repro.gam.dump import canonical_snapshot
from repro.gam.errors import GenMapperError
from repro.obs import MetricsRegistry
from repro.reliability import FaultInjector, FaultRule, ImportJournal, RetryPolicy


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """These tests inject their own faults with fixed seeds; ambient
    ``REPRO_FAULTS`` (the CI chaos job) must not perturb them."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)


def fast_retry(registry=None, **overrides):
    """Generous attempts, sub-millisecond real backoff: chaos-fast."""
    defaults = dict(
        max_attempts=10,
        base_delay=0.0002,
        max_delay=0.001,
        max_elapsed=None,
        registry=registry or MetricsRegistry(),
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def snapshot_of_clean_import(universe_dir) -> str:
    with GenMapper() as gm:
        gm.integrate_directory(universe_dir)
        return canonical_snapshot(gm.repository)


@pytest.fixture(scope="module")
def clean_snapshot(universe_dir):
    """The fault-free reference snapshot of the synthetic universe."""
    return snapshot_of_clean_import(universe_dir)


class TestChaosEquivalence:
    def test_import_under_busy_faults_matches_fault_free_run(
        self, universe_dir, clean_snapshot
    ):
        registry = MetricsRegistry()
        with GenMapper() as gm:
            gm.db.retry_policy = fast_retry(registry)
            gm.db.fault_injector = FaultInjector(
                [FaultRule("busy", probability=0.05, times=None)],
                seed=1234,
                registry=registry,
            )
            gm.integrate_directory(universe_dir)
            injected = gm.db.fault_injector.fired
            gm.db.fault_injector = None
            assert canonical_snapshot(gm.repository) == clean_snapshot
        assert injected > 0, "chaos run injected no faults at all"
        counters = registry.snapshot()["counters"]
        assert counters["reliability.retry.attempts"] >= injected
        assert "reliability.retry.giveups" not in counters

    def test_concurrent_imports_and_queries_under_faults(
        self, universe_dir, clean_snapshot
    ):
        registry = MetricsRegistry()
        with GenMapper() as gm:
            gm.db.retry_policy = fast_retry(registry)
            gm.db.fault_injector = FaultInjector(
                [FaultRule("busy", probability=0.05, times=None)],
                seed=99,
                registry=registry,
            )
            storage_errors: list[BaseException] = []
            import_done = threading.Event()

            def importer():
                try:
                    gm.integrate_directory(universe_dir, workers=3)
                finally:
                    import_done.set()

            def querier():
                while not import_done.is_set():
                    try:
                        gm.map("LocusLink", "GO")
                        gm.repository.list_sources()
                    except GenMapperError:
                        # Domain errors mid-import (source not there yet,
                        # no mapping yet, open breaker) are expected.
                        pass
                    except sqlite3.Error as exc:  # pragma: no cover
                        storage_errors.append(exc)
                        return

            threads = [threading.Thread(target=importer)]
            threads += [threading.Thread(target=querier) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert import_done.is_set()
            assert not storage_errors, f"storage errors leaked: {storage_errors}"
            injected = gm.db.fault_injector.fired
            gm.db.fault_injector = None
            assert canonical_snapshot(gm.repository) == clean_snapshot
        assert injected > 0
        assert registry.snapshot()["counters"]["reliability.retry.attempts"] > 0

    def test_latency_faults_slow_but_do_not_corrupt(
        self, universe_dir, clean_snapshot
    ):
        with GenMapper() as gm:
            gm.db.fault_injector = FaultInjector(
                [FaultRule("latency", probability=0.02, seconds=0.0005)],
                seed=5,
                registry=MetricsRegistry(),
            )
            gm.integrate_directory(universe_dir)
            gm.db.fault_injector = None
            assert canonical_snapshot(gm.repository) == clean_snapshot


class TestChaosWideEvents:
    def test_wide_events_stay_well_formed_under_busy_faults(
        self, universe_dir, tmp_path
    ):
        """Every wide event written during a chaotic import is a complete
        JSONL record, and the injected faults show up as retry counts
        inside the events rather than corrupting them."""
        from repro.obs import WideEventLog, set_event_log

        registry = MetricsRegistry()
        path = tmp_path / "events.jsonl"
        log = WideEventLog(path, registry=registry)
        previous = set_event_log(log)
        try:
            with GenMapper() as gm:
                gm.db.retry_policy = fast_retry(registry)
                gm.db.fault_injector = FaultInjector(
                    [FaultRule("busy", probability=0.02, times=None)],
                    seed=321,
                    registry=registry,
                )
                gm.integrate_directory(universe_dir)
                injected = gm.db.fault_injector.fired
                gm.db.fault_injector = None
        finally:
            set_event_log(previous)
            log.close()
        assert injected > 0, "chaos run injected no faults at all"
        assert log.stats()["dropped"] == 0

        records = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        imports = [r for r in records if r["event"] == "import"]
        assert len(imports) >= 5
        for record in records:
            assert record["trace_id"]
            assert record["duration_ms"] >= 0
        for record in imports:
            assert record["source"]
            assert record["sql_count"] >= 1
        # The retry layer annotated the events it saved.
        assert sum(r.get("retries", 0) for r in records) >= 1


class TestCrashResume:
    def count_guarded_statements(self, universe_dir) -> int:
        """How many guarded statements a clean import executes."""
        with GenMapper() as gm:
            counter = FaultInjector(
                [FaultRule("latency", seconds=0.0)], registry=MetricsRegistry()
            )
            gm.db.fault_injector = counter
            gm.integrate_directory(universe_dir)
            return counter.fired

    def test_killed_import_resumes_to_identical_snapshot(
        self, universe_dir, clean_snapshot
    ):
        total = self.count_guarded_statements(universe_dir)
        assert total > 100
        with GenMapper() as gm:
            # Deterministic mid-run "kill": after half the statements a
            # clean import needs, every further one fails, with no retry.
            gm.db.retry_policy = RetryPolicy(max_attempts=1)
            gm.db.fault_injector = FaultInjector(
                [FaultRule("ioerror", after=total // 2, times=None)],
                registry=MetricsRegistry(),
            )
            with pytest.raises(sqlite3.OperationalError):
                gm.integrate_directory(universe_dir)
            # Some sources finished and were checkpointed; some were not.
            journal = ImportJournal(gm.db)
            gm.db.fault_injector = None
            done = len(journal.entries())
            assert 0 < done < 11
            # The interrupted source's transaction rolled back: nothing
            # half-imported is visible.
            partial = canonical_snapshot(gm.repository)
            assert partial != clean_snapshot
            # Resume with faults cleared: converges to the clean result.
            reports = gm.integrate_directory(universe_dir, resume=True)
            assert canonical_snapshot(gm.repository) == clean_snapshot
            # Checkpointed sources were skipped, not redone.
            skipped = [r for r in reports if r.new_objects == 0]
            assert len(skipped) >= done

    def test_resume_after_faultless_kill_is_pure_skip(self, universe_dir):
        with GenMapper() as gm:
            gm.integrate_directory(universe_dir)
            before = canonical_snapshot(gm.repository)
            reports = gm.integrate_directory(universe_dir, resume=True)
            assert all(report.new_objects == 0 for report in reports)
            assert all(report.total_associations == 0 for report in reports)
            assert canonical_snapshot(gm.repository) == before


class TestChaosRateLimit:
    def test_rate_limited_edge_under_faults_stays_well_behaved(
        self, universe_dir
    ):
        """Concurrent clients hammering a rate-limited edge under injected
        storage faults see only 200/304/429/503 — never a 500 — and every
        client eventually gets through once its bucket refills."""
        import io

        from repro.reliability.ratelimit import RateLimiter
        from repro.web.app import create_app

        registry = MetricsRegistry()
        clock = {"now": 0.0}
        clock_lock = threading.Lock()

        def fake_clock():
            with clock_lock:
                return clock["now"]

        with GenMapper() as gm:
            gm.integrate_directory(universe_dir)
            gm.db.retry_policy = fast_retry(registry)
            gm.db.fault_injector = FaultInjector(
                [FaultRule("busy", probability=0.02, times=None)],
                seed=4242,
                registry=registry,
            )
            limiter = RateLimiter(
                rate=5.0, burst=10.0, clock=fake_clock, registry=registry
            )
            app = create_app(
                gm,
                registry=registry,
                rate_limiter=limiter,
                event_log=None,
                slow_log=None,
                slo=None,
            )

            def hit(client: str, path: str, query: str = "") -> int:
                environ = {
                    "REQUEST_METHOD": "GET",
                    "PATH_INFO": path,
                    "QUERY_STRING": query,
                    "REMOTE_ADDR": client,
                    "wsgi.input": io.BytesIO(b""),
                }
                captured = {}

                def start_response(status, headers, exc_info=None):
                    captured["status"] = int(status.split()[0])

                body = app(environ, start_response)
                b"".join(body)
                close = getattr(body, "close", None)
                if close is not None:
                    close()
                return captured["status"]

            statuses: dict[str, list[int]] = {}
            lock = threading.Lock()

            def client_thread(client: str) -> None:
                seen = []
                for _ in range(30):
                    seen.append(hit(client, "/map", "source=LocusLink&target=GO"))
                with lock:
                    statuses[client] = seen

            threads = [
                threading.Thread(target=client_thread, args=(f"10.0.0.{i}",))
                for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            gm.db.fault_injector = None

            all_statuses = [s for seen in statuses.values() for s in seen]
            assert len(all_statuses) == 120
            assert set(all_statuses) <= {200, 429, 503}, sorted(set(all_statuses))
            for client, seen in statuses.items():
                assert 200 in seen, f"{client} never got through"
                assert 429 in seen, f"{client} was never limited (burst 10, 30 hits)"
            # Shed clients recover: refill the buckets and retry.
            with clock_lock:
                clock["now"] += 10.0
            assert all(
                hit(f"10.0.0.{i}", "/stats") == 200 for i in range(4)
            )
            counters = registry.snapshot()["counters"]
            assert counters["edge.rate_limited"] > 0
            assert counters["edge.rate_allowed"] > 0
