"""Tests for GAM schema creation and validation."""

import sqlite3

import pytest

from repro.gam import schema
from repro.gam.errors import GamSchemaError


@pytest.fixture()
def connection():
    conn = sqlite3.connect(":memory:")
    yield conn
    conn.close()


class TestCreateSchema:
    def test_creates_all_four_gam_tables(self, connection):
        schema.create_schema(connection)
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert set(schema.GAM_TABLES) <= tables

    def test_is_idempotent(self, connection):
        schema.create_schema(connection)
        schema.create_schema(connection)
        assert schema.schema_exists(connection)

    def test_records_schema_version(self, connection):
        schema.create_schema(connection)
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        assert int(row[0]) == schema.SCHEMA_VERSION

    def test_source_name_is_unique(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('GO', 'Other', 'Network')"
        )
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO source (name, content, structure)"
                " VALUES ('GO', 'Other', 'Network')"
            )

    def test_content_enum_is_enforced(self, connection):
        schema.create_schema(connection)
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO source (name, content, structure)"
                " VALUES ('X', 'Genome', 'Flat')"
            )

    def test_rel_type_enum_is_enforced(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('A', 'Gene', 'Flat')"
        )
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO source_rel (source1_id, source2_id, type)"
                " VALUES (1, 1, 'Equals')"
            )

    def test_object_accession_unique_per_source(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('A', 'Gene', 'Flat')"
        )
        connection.execute(
            "INSERT INTO object (source_id, accession) VALUES (1, '353')"
        )
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO object (source_id, accession) VALUES (1, '353')"
            )

    def test_same_accession_allowed_in_different_sources(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('A', 'Gene', 'Flat')"
        )
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('B', 'Gene', 'Flat')"
        )
        connection.execute(
            "INSERT INTO object (source_id, accession) VALUES (1, '353')"
        )
        connection.execute(
            "INSERT INTO object (source_id, accession) VALUES (2, '353')"
        )


class TestIndexUpgrade:
    def _index_sql(self, connection) -> str:
        return connection.execute(
            "SELECT sql FROM sqlite_master"
            " WHERE type = 'index' AND name = 'idx_object_rel_obj2'"
        ).fetchone()[0]

    def test_fresh_obj2_index_covers_object1(self, connection):
        schema.create_schema(connection)
        assert "object1_id" in self._index_sql(connection)

    def test_legacy_narrow_obj2_index_is_rebuilt(self, connection):
        """Databases created before the index covered ``object1_id``
        (their recursive-closure joins degraded to per-step full scans)
        are upgraded in place on the next open."""
        schema.create_schema(connection)
        connection.execute("DROP INDEX idx_object_rel_obj2")
        connection.execute(
            "CREATE INDEX idx_object_rel_obj2"
            " ON object_rel (src_rel_id, object2_id)"
        )
        connection.commit()
        schema.create_schema(connection)
        assert "object1_id" in self._index_sql(connection)

    def test_closure_join_uses_covering_index(self, connection):
        schema.create_schema(connection)
        plan = " ".join(
            row[3]
            for row in connection.execute(
                "EXPLAIN QUERY PLAN"
                " WITH RECURSIVE closure(ancestor, descendant) AS ("
                "   SELECT object2_id, object1_id FROM object_rel"
                "    WHERE src_rel_id IN (1)"
                "   UNION"
                "   SELECT closure.ancestor, edge.object1_id"
                "     FROM closure JOIN object_rel edge"
                "       ON edge.object2_id = closure.descendant"
                "      AND edge.src_rel_id IN (1)"
                " ) SELECT count(*) FROM closure"
            )
        )
        assert "idx_object_rel_obj2 (src_rel_id=? AND object2_id=?)" in plan


class TestValidateSchema:
    def test_accepts_fresh_schema(self, connection):
        schema.create_schema(connection)
        schema.validate_schema(connection)

    def test_rejects_empty_database(self, connection):
        with pytest.raises(GamSchemaError, match="GAM tables"):
            schema.validate_schema(connection)

    def test_rejects_wrong_version(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
        )
        with pytest.raises(GamSchemaError, match="version"):
            schema.validate_schema(connection)

    def test_rejects_missing_version_record(self, connection):
        schema.create_schema(connection)
        connection.execute("DELETE FROM meta WHERE key = 'schema_version'")
        with pytest.raises(GamSchemaError, match="version"):
            schema.validate_schema(connection)
