"""Tests for GAM schema creation and validation."""

import sqlite3

import pytest

from repro.gam import schema
from repro.gam.errors import GamSchemaError


@pytest.fixture()
def connection():
    conn = sqlite3.connect(":memory:")
    yield conn
    conn.close()


class TestCreateSchema:
    def test_creates_all_four_gam_tables(self, connection):
        schema.create_schema(connection)
        tables = {
            row[0]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        assert set(schema.GAM_TABLES) <= tables

    def test_is_idempotent(self, connection):
        schema.create_schema(connection)
        schema.create_schema(connection)
        assert schema.schema_exists(connection)

    def test_records_schema_version(self, connection):
        schema.create_schema(connection)
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        assert int(row[0]) == schema.SCHEMA_VERSION

    def test_source_name_is_unique(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('GO', 'Other', 'Network')"
        )
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO source (name, content, structure)"
                " VALUES ('GO', 'Other', 'Network')"
            )

    def test_content_enum_is_enforced(self, connection):
        schema.create_schema(connection)
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO source (name, content, structure)"
                " VALUES ('X', 'Genome', 'Flat')"
            )

    def test_rel_type_enum_is_enforced(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('A', 'Gene', 'Flat')"
        )
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO source_rel (source1_id, source2_id, type)"
                " VALUES (1, 1, 'Equals')"
            )

    def test_object_accession_unique_per_source(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('A', 'Gene', 'Flat')"
        )
        connection.execute(
            "INSERT INTO object (source_id, accession) VALUES (1, '353')"
        )
        with pytest.raises(sqlite3.IntegrityError):
            connection.execute(
                "INSERT INTO object (source_id, accession) VALUES (1, '353')"
            )

    def test_same_accession_allowed_in_different_sources(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('A', 'Gene', 'Flat')"
        )
        connection.execute(
            "INSERT INTO source (name, content, structure) VALUES ('B', 'Gene', 'Flat')"
        )
        connection.execute(
            "INSERT INTO object (source_id, accession) VALUES (1, '353')"
        )
        connection.execute(
            "INSERT INTO object (source_id, accession) VALUES (2, '353')"
        )


class TestValidateSchema:
    def test_accepts_fresh_schema(self, connection):
        schema.create_schema(connection)
        schema.validate_schema(connection)

    def test_rejects_empty_database(self, connection):
        with pytest.raises(GamSchemaError, match="GAM tables"):
            schema.validate_schema(connection)

    def test_rejects_wrong_version(self, connection):
        schema.create_schema(connection)
        connection.execute(
            "UPDATE meta SET value = '99' WHERE key = 'schema_version'"
        )
        with pytest.raises(GamSchemaError, match="version"):
            schema.validate_schema(connection)

    def test_rejects_missing_version_record(self, connection):
        schema.create_schema(connection)
        connection.execute("DELETE FROM meta WHERE key = 'schema_version'")
        with pytest.raises(GamSchemaError, match="version"):
            schema.validate_schema(connection)
