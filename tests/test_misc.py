"""Small remaining-coverage tests: web __main__, CLI parser tree."""

import pytest


class TestTimerShimRemoved:
    def test_timer_is_gone(self):
        import repro.util

        assert not hasattr(repro.util, "Timer")
        with pytest.raises(ModuleNotFoundError):
            import repro.util.timer  # noqa: F401


class TestWebMain:
    def test_demo_server_starts_and_stops(self, monkeypatch, capsys):
        from repro.web import __main__ as web_main

        started = {}

        class FakeServer:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return None

            def serve_forever(self):
                started["yes"] = True
                raise KeyboardInterrupt  # simulate ctrl-C

        def fake_make_server(host, port, app, quiet=False):
            started["host"] = host
            started["port"] = port
            started["app"] = app
            return FakeServer()

        monkeypatch.setattr(web_main, "make_threading_server", fake_make_server)
        code = web_main.main(["--demo", "--port", "9999"])
        assert code == 0
        assert started["port"] == 9999
        assert callable(started["app"])
        out = capsys.readouterr().out
        assert "demo universe loaded" in out


class TestCliParserTree:
    def test_every_command_has_a_handler(self):
        import argparse

        from repro import cli

        parser = cli.build_parser()
        subparsers = next(
            action
            for action in parser._actions
            if isinstance(action, argparse._SubParsersAction)
        )
        commands = set(subparsers.choices)
        # _dispatch's handler table must cover every declared command.
        import inspect

        source = inspect.getsource(cli._dispatch)
        for command in commands:
            assert f'"{command}"' in source, f"no handler for {command}"

    def test_help_text_renders(self, capsys):
        from repro import cli

        with pytest.raises(SystemExit) as excinfo:
            cli.build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "GenMapper" in capsys.readouterr().out
