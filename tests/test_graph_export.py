"""Tests for source-graph export (DOT / GraphML / JSON) and the CLI."""

import json

import networkx as nx
import pytest

from repro.pathfinder.export import to_dot, to_json, write_graphml
from repro.pathfinder.graph import build_source_graph


@pytest.fixture()
def graph(paper_genmapper):
    return build_source_graph(paper_genmapper.repository)


class TestDot:
    def test_contains_all_sources(self, graph):
        dot = to_dot(graph)
        for name in graph.nodes:
            assert f'"{name}"' in dot

    def test_edges_labeled_with_type_and_size(self, graph):
        dot = to_dot(graph)
        assert "Fact (" in dot

    def test_network_sources_are_boxes(self, graph):
        dot = to_dot(graph)
        assert '"GO" [shape=box' in dot
        assert '"LocusLink" [shape=ellipse' in dot

    def test_self_loops_omitted(self, paper_genmapper):
        paper_genmapper.derive_subsumed("GO")
        dot = to_dot(build_source_graph(paper_genmapper.repository))
        assert '"GO" -- "GO"' not in dot

    def test_quoting_of_hostile_names(self):
        graph = nx.MultiGraph()
        graph.add_node('we"ird')
        dot = to_dot(graph)
        assert '"we\\"ird"' in dot

    def test_valid_structure(self, graph):
        dot = to_dot(graph)
        assert dot.startswith("graph ")
        assert dot.rstrip().endswith("}")


class TestGraphml:
    def test_round_trip_via_networkx(self, graph, tmp_path):
        path = write_graphml(graph, tmp_path / "sources.graphml")
        loaded = nx.read_graphml(path)
        assert set(loaded.nodes) == set(graph.nodes)
        # Attributes preserved as strings.
        assert loaded.nodes["GO"]["structure"] == "Network"

    def test_edge_attributes_preserved(self, graph, tmp_path):
        path = write_graphml(graph, tmp_path / "sources.graphml")
        loaded = nx.read_graphml(path)
        edge_types = {
            data["rel_type"] for __, __2, data in loaded.edges(data=True)
        }
        assert "Fact" in edge_types


class TestJson:
    def test_shape(self, graph):
        decoded = json.loads(to_json(graph))
        assert {node["name"] for node in decoded["nodes"]} == set(graph.nodes)
        assert all("rel_type" in edge for edge in decoded["edges"])

    def test_edge_sizes_counted(self, graph):
        decoded = json.loads(to_json(graph))
        ll_go = [
            edge
            for edge in decoded["edges"]
            if {edge["source"], edge["target"]} == {"LocusLink", "GO"}
        ]
        assert ll_go and ll_go[0]["size"] >= 1


class TestCliGraph:
    @pytest.fixture()
    def db_path(self, tmp_path):
        from repro.cli import main
        from tests.conftest import LOCUS_353_RECORD

        db = tmp_path / "gam.db"
        ll = tmp_path / "ll.txt"
        ll.write_text(LOCUS_353_RECORD)
        main(["--db", str(db), "import", str(ll), "--source", "LocusLink"])
        return db

    def test_dot_to_stdout(self, db_path, capsys):
        from repro.cli import main

        assert main(["--db", str(db_path), "graph"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("graph ")
        assert "LocusLink" in out

    def test_json_to_file(self, db_path, tmp_path, capsys):
        from repro.cli import main

        out_file = tmp_path / "graph.json"
        code = main(["--db", str(db_path), "graph", "--format", "json",
                     "--out", str(out_file)])
        assert code == 0
        decoded = json.loads(out_file.read_text())
        assert decoded["nodes"]

    def test_graphml_requires_out(self, db_path, capsys):
        from repro.cli import main

        assert main(["--db", str(db_path), "graph",
                     "--format", "graphml"]) == 1

    def test_graphml_to_file(self, db_path, tmp_path):
        from repro.cli import main

        out_file = tmp_path / "graph.graphml"
        code = main(["--db", str(db_path), "graph", "--format", "graphml",
                     "--out", str(out_file)])
        assert code == 0
        assert nx.read_graphml(out_file).number_of_nodes() > 0
