"""Tests for the synthetic universe: generation, emission, round trips."""

import numpy as np
import pytest

from repro.datagen.emit import (
    SOURCE_FILES,
    emit_go_obo,
    emit_locuslink,
    emit_netaffx,
    write_universe,
)
from repro.datagen.expression import generate_expression
from repro.datagen.go_gen import generate_go
from repro.datagen.universe import generate_universe
from repro.parsers.go_obo import GoOboParser
from repro.parsers.locuslink import LocusLinkParser
from repro.parsers.netaffx import NetAffxParser
from repro.taxonomy.dag import Taxonomy


class TestGoGenerator:
    @pytest.fixture(scope="class")
    def go(self):
        return generate_go(np.random.default_rng(1), n_terms=90, max_depth=4)

    def test_term_count(self, go):
        assert len(go) == 90

    def test_three_namespaces(self, go):
        assert {t.namespace for t in go.terms} == {
            "biological_process", "molecular_function", "cellular_component",
        }

    def test_accessions_unique_and_go_style(self, go):
        accessions = go.accessions()
        assert len(set(accessions)) == len(accessions)
        assert all(a.startswith("GO:") and len(a) == 10 for a in accessions)

    def test_is_a_pairs_form_a_dag(self, go):
        taxonomy = Taxonomy(go.is_a_pairs())  # raises on cycles
        assert taxonomy.max_depth() <= 4

    def test_one_root_per_namespace(self, go):
        roots = [t for t in go.terms if not t.parents]
        assert len(roots) == 3

    def test_parents_are_shallower(self, go):
        by_accession = go.by_accession()
        for term in go.terms:
            for parent in term.parents:
                assert by_accession[parent].depth < term.depth

    def test_deterministic_for_seed(self):
        first = generate_go(np.random.default_rng(5), n_terms=30)
        second = generate_go(np.random.default_rng(5), n_terms=30)
        assert first == second

    def test_too_few_terms_rejected(self):
        with pytest.raises(ValueError):
            generate_go(np.random.default_rng(1), n_terms=3)

    def test_leaf_accessions(self, go):
        leaves = set(go.leaf_accessions())
        parents = {p for t in go.terms for p in t.parents}
        assert leaves.isdisjoint(parents)


class TestUniverseGeneration:
    def test_deterministic_for_seed(self, universe):
        again = generate_universe(universe.config)
        assert again.genes == universe.genes
        assert again.probes == universe.probes

    def test_gene_count(self, universe):
        assert len(universe.genes) == universe.config.n_genes

    def test_loci_unique(self, universe):
        loci = [g.locus for g in universe.genes]
        assert len(set(loci)) == len(loci)

    def test_every_gene_has_go_terms(self, universe):
        assert all(g.go_terms for g in universe.genes)

    def test_go_terms_exist_in_taxonomy(self, universe):
        valid = set(universe.go.accessions())
        for gene in universe.genes:
            assert set(gene.go_terms) <= valid

    def test_coverage_fractions_respected(self, universe):
        genes = universe.genes
        unigene_fraction = sum(g.unigene is not None for g in genes) / len(genes)
        assert abs(unigene_fraction - universe.config.unigene_coverage) < 0.15

    def test_every_probe_targets_a_gene(self, universe):
        loci = {g.locus for g in universe.genes}
        assert all(p.locus in loci for p in universe.probes)

    def test_published_links_subset_of_truth(self, universe):
        for probe in universe.probes:
            if probe.published_locus is not None:
                assert probe.published_locus == probe.locus

    def test_proteins_only_for_swissprot_genes(self, universe):
        covered = {g.locus for g in universe.genes if g.swissprot}
        assert {p.locus for p in universe.proteins} == covered

    def test_ground_truth_mappings_consistent(self, universe):
        truth = universe.true_probe_to_go()
        locus_go = universe.true_locus_to_go()
        probe_locus = universe.true_probe_to_locus()
        rebuilt = {
            (probe, term)
            for probe, locus in probe_locus
            for locus2, term in locus_go
            if locus2 == locus
        }
        assert truth == rebuilt


class TestEmission:
    def test_all_source_files_written(self, universe, tmp_path):
        write_universe(universe, tmp_path)
        for file_name, __ in SOURCE_FILES:
            assert (tmp_path / file_name).exists()
        assert (tmp_path / "manifest.tsv").exists()

    def test_locuslink_round_trip(self, universe):
        dataset = LocusLinkParser().parse_text(emit_locuslink(universe))
        assert set(dataset.entities()) == {g.locus for g in universe.genes}
        go_rows = {
            (r.entity, r.accession) for r in dataset.rows_for_target("GO")
        }
        assert go_rows == universe.true_locus_to_go()

    def test_go_obo_round_trip(self, universe):
        dataset = GoOboParser().parse_text(emit_go_obo(universe))
        is_a = {
            (r.entity, r.accession) for r in dataset.rows_for_target("IS_A")
        }
        assert is_a == set(universe.go.is_a_pairs())

    def test_netaffx_round_trip_respects_gaps(self, universe):
        dataset = NetAffxParser().parse_text(emit_netaffx(universe))
        published = {
            (r.entity, r.accession)
            for r in dataset.rows_for_target("LocusLink")
        }
        expected = {
            (p.probe_id, p.published_locus)
            for p in universe.probes
            if p.published_locus is not None
        }
        assert published == expected


class TestExpressionStudy:
    @pytest.fixture(scope="class")
    def study(self, universe):
        return generate_expression(universe)

    def test_matrix_shape(self, universe, study):
        assert study.values.shape == (len(universe.probes), study.n_samples)

    def test_expressed_fraction_near_half(self, universe, study):
        loci = {p.locus for p in universe.probes}
        expressed_loci = {
            p.locus
            for p in universe.probes
            if p.probe_id in study.expressed_probes
        }
        fraction = len(expressed_loci) / len(loci)
        assert 0.35 <= fraction <= 0.65

    def test_differential_probes_are_expressed(self, study):
        assert study.differential_probes <= study.expressed_probes

    def test_expressed_probes_have_higher_signal(self, study):
        index = study.probe_index()
        expressed_rows = [index[p] for p in study.expressed_probes]
        silent_rows = [
            i for i in range(len(study.probe_ids)) if i not in set(expressed_rows)
        ]
        assert (
            study.values[expressed_rows].mean()
            > study.values[silent_rows].mean() + 2.0
        )

    def test_differential_shift_between_species(self, study):
        index = study.probe_index()
        human = study.sample_indices("human")
        chimp = study.sample_indices("chimp")
        shifts = [
            abs(
                study.values[index[p], chimp].mean()
                - study.values[index[p], human].mean()
            )
            for p in study.differential_probes
        ]
        assert min(shifts) > 1.0

    def test_deterministic_for_seed(self, universe):
        first = generate_expression(universe, seed=99)
        second = generate_expression(universe, seed=99)
        assert np.array_equal(first.values, second.values)
        assert first.differential_loci == second.differential_loci

    def test_planted_terms_annotated_in_universe(self, universe, study):
        annotated = {t for g in universe.genes for t in g.go_terms}
        taxonomy = Taxonomy(universe.go.is_a_pairs())
        for term in study.planted_terms:
            closure = {term} | (
                taxonomy.descendants(term) if term in taxonomy else set()
            )
            assert closure & annotated


class TestGoaEmission:
    def test_goa_round_trip(self, universe):
        from repro.datagen.emit import emit_goa
        from repro.parsers.gaf import GafParser

        dataset = GafParser().parse_text(emit_goa(universe))
        entities = set(dataset.entities())
        assert entities == {p.accession for p in universe.proteins}
        go_pairs = {
            (r.entity, r.accession) for r in dataset.rows_for_target("GO")
        }
        expected = {
            (p.accession, t) for p in universe.proteins for t in p.go_terms
        }
        assert go_pairs == expected

    def test_goa_mixes_evidence_codes(self, universe):
        from repro.datagen.emit import emit_goa
        from repro.parsers.gaf import GafParser

        rows = GafParser().parse_text(emit_goa(universe)).rows
        evidences = {r.evidence for r in rows if r.target == "GO"}
        assert 1.0 in evidences      # IDA
        assert 0.7 in evidences      # IEA

    def test_goa_imports_as_similarity(self, loaded_genmapper):
        from repro.gam.enums import RelType

        mapping = loaded_genmapper.map("GOA", "GO")
        assert mapping.rel_type is RelType.SIMILARITY
        assert 0.0 < mapping.min_evidence() < 1.0
