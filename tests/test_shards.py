"""Tests for the source-sharded storage engine (repro.gam.shards).

Covers the engine contract end to end: routing and id striding, the
ATTACH-limit bucket fallback, deadlock freedom for opposite-order
cross-shard writers, zero-downtime image flips with scoped generation
bumps, in-place migration with crash/resume, layout auto-detection, the
application-level referential sweep that replaces SQLite foreign keys
across shard files, and the CLI/HTTP surfaces that report placement.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.genmapper import GenMapper
from repro.gam.database import GamDatabase
from repro.gam.dump import canonical_snapshot
from repro.gam.errors import GamSchemaError
from repro.gam.integrity import check as integrity_check
from repro.gam.maintenance import delete_source
from repro.gam.repository import GamRepository
from repro.gam.schema import ID_STRIDE
from repro.gam.shards import (
    ShardCatalog,
    ShardedGamDatabase,
    ShardRoutingError,
    migrate_to_shards,
)
from repro.gam import shards as shards_module


def _populate(repo: GamRepository, names, objects=12, links=6) -> None:
    """A small deterministic multi-source dataset with cross-source rels."""
    for name in names:
        repo.add_source(name)
        repo.add_objects(
            repo.get_source(name),
            [(f"{name.lower()}-{i}", f"text{i}", float(i)) for i in range(objects)],
        )
    for left, right in zip(names, names[1:]):
        rel = repo.ensure_source_rel(left, right, "Fact")
        repo.add_associations(
            rel,
            [
                (f"{left.lower()}-{i}", f"{right.lower()}-{i}", 0.9)
                for i in range(links)
            ],
        )


@pytest.fixture()
def sharded_db(tmp_path):
    db = ShardedGamDatabase(str(tmp_path / "g.db"))
    yield db
    db.close()


class TestShardedEngine:
    def test_memory_path_rejected(self):
        with pytest.raises(GamSchemaError):
            ShardedGamDatabase(":memory:")

    def test_snapshot_matches_monolithic(self, tmp_path, sharded_db):
        mono = GamDatabase(str(tmp_path / "mono.db"))
        names = ["Alpha", "Beta", "Gamma"]
        _populate(GamRepository(mono), names)
        _populate(GamRepository(sharded_db), names)
        assert canonical_snapshot(GamRepository(sharded_db)) == (
            canonical_snapshot(GamRepository(mono))
        )
        mono.close()

    def test_ids_allocate_from_per_slot_strides(self, sharded_db):
        repo = GamRepository(sharded_db)
        _populate(repo, ["Alpha", "Beta"], objects=3, links=0)
        placement = sharded_db.shard_placement(["Alpha", "Beta"])
        assert placement == {"Alpha": 0, "Beta": 1}
        for name, slot in placement.items():
            src = repo.get_source(name)
            rows = sharded_db.execute_read(
                "SELECT object_id FROM object WHERE source_id = ?",
                (src.source_id,),
            ).fetchall()
            base = (slot + 1) * ID_STRIDE
            assert all(base < row[0] <= base + ID_STRIDE for row in rows)

    def test_unscoped_shard_write_raises(self, sharded_db):
        repo = GamRepository(sharded_db)
        repo.add_source("Alpha")
        src = repo.get_source("Alpha")
        with pytest.raises(ShardRoutingError):
            with sharded_db.write_scope(), sharded_db.transaction():
                sharded_db.execute(
                    "INSERT INTO object (source_id, accession) VALUES (?, ?)",
                    (src.source_id, "a-1"),
                )

    def test_mid_transaction_escalation_raises(self, sharded_db):
        repo = GamRepository(sharded_db)
        repo.add_source("Alpha")
        repo.add_source("Beta")
        alpha = repo.get_source("Alpha")
        beta = repo.get_source("Beta")
        with pytest.raises(ShardRoutingError):
            with sharded_db.write_scope("Alpha"), sharded_db.transaction():
                sharded_db.execute(
                    "INSERT INTO object (source_id, accession) VALUES (?, ?)",
                    (alpha.source_id, "a-1"),
                )
                # Beta's shard lock was never acquired by this scope.
                with sharded_db.write_scope("Beta"):
                    sharded_db.execute(
                        "INSERT INTO object (source_id, accession)"
                        " VALUES (?, ?)",
                        (beta.source_id, "b-1"),
                    )

    def test_storage_info_and_placement_report(self, sharded_db):
        repo = GamRepository(sharded_db)
        _populate(repo, ["Alpha", "Beta"], objects=2, links=1)
        report = repo.placement_report()
        assert report["layout"] == "sharded"
        assert report["placement"] == {"Alpha": 0, "Beta": 1}
        images = report["shards"]["images"]
        assert images["0"]["image"] == 0
        assert images["0"]["sources"] == 1


class TestBucketFallback:
    def test_attach_limit_groups_sources_into_buckets(self, tmp_path):
        """More sources than shard slots share buckets, same results."""
        mono = GamDatabase(str(tmp_path / "mono.db"))
        db = ShardedGamDatabase(str(tmp_path / "g.db"), max_shards=3)
        names = [f"Src{c}" for c in "ABCDEFGHIJK"]  # 11 > 3 slots
        _populate(GamRepository(mono), names, objects=4, links=2)
        _populate(GamRepository(db), names, objects=4, links=2)
        placement = db.shard_placement(names)
        assert set(placement.values()) == {0, 1, 2}
        # Least-populated placement keeps buckets balanced.
        population = {}
        for slot in placement.values():
            population[slot] = population.get(slot, 0) + 1
        assert max(population.values()) - min(population.values()) <= 1
        assert canonical_snapshot(GamRepository(db)) == (
            canonical_snapshot(GamRepository(mono))
        )
        mono.close()
        db.close()

    def test_catalog_placement_is_sticky(self, tmp_path):
        db = ShardedGamDatabase(str(tmp_path / "g.db"), max_shards=2)
        repo = GamRepository(db)
        for name in ["A", "B", "C"]:
            repo.add_source(name)
        before = db.shard_placement(["A", "B", "C"])
        db.close()
        reopened = GamDatabase.open(str(tmp_path / "g.db"))
        assert reopened.sharded
        assert reopened.shard_placement(["A", "B", "C"]) == before
        reopened.close()


class TestConcurrency:
    def test_opposite_order_cross_shard_writers_do_not_deadlock(
        self, sharded_db
    ):
        repo = GamRepository(sharded_db)
        repo.add_source("Alpha")
        repo.add_source("Beta")
        alpha = repo.get_source("Alpha")
        beta = repo.get_source("Beta")
        errors = []
        barrier = threading.Barrier(2)

        def writer(order, accession_prefix, source):
            try:
                barrier.wait(timeout=10)
                for i in range(20):
                    with sharded_db.write_scope(*order), (
                        sharded_db.transaction()
                    ):
                        sharded_db.execute(
                            "INSERT OR IGNORE INTO object"
                            " (source_id, accession) VALUES (?, ?)",
                            (source.source_id, f"{accession_prefix}{i}"),
                        )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(
                target=writer, args=(("Alpha", "Beta"), "a", alpha)
            ),
            threading.Thread(
                target=writer, args=(("Beta", "Alpha"), "b", beta)
            ),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)
        count = sharded_db.execute_read(
            "SELECT count(*) FROM object"
        ).fetchone()[0]
        assert count == 40

    def test_disjoint_source_writers_commit_in_parallel(self, sharded_db):
        """Writers on different shards overlap inside their transactions."""
        repo = GamRepository(sharded_db)
        names = ["Alpha", "Beta", "Gamma", "Delta"]
        sources = {}
        for name in names:
            repo.add_source(name)
            sources[name] = repo.get_source(name)
        in_txn = threading.Semaphore(0)
        release = threading.Event()
        overlap = {"seen": False}
        errors = []

        def writer(name):
            try:
                with sharded_db.write_scope(name), sharded_db.transaction():
                    sharded_db.execute(
                        "INSERT INTO object (source_id, accession)"
                        " VALUES (?, ?)",
                        (sources[name].source_id, f"{name.lower()}-x"),
                    )
                    in_txn.release()
                    # Hold the shard transaction open until all four
                    # writers are inside one simultaneously.
                    if not release.wait(timeout=30):
                        raise TimeoutError("writers never overlapped")
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(name,)) for name in names
        ]
        for thread in threads:
            thread.start()
        for _ in names:
            assert in_txn.acquire(timeout=30)
        overlap["seen"] = True
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert overlap["seen"]


class TestImageFlip:
    def test_flip_replaces_image_and_bumps_only_that_source(
        self, tmp_path, sharded_db
    ):
        repo = GamRepository(sharded_db)
        _populate(repo, ["Alpha", "Beta"], objects=4, links=2)
        gen_alpha = sharded_db.generation_of(["Alpha"])
        gen_beta = sharded_db.generation_of(["Beta"])
        alpha = repo.get_source("Alpha")
        with sharded_db.image_flip("Alpha"):
            with sharded_db.write_scope("Alpha"), sharded_db.transaction():
                sharded_db.execute(
                    "INSERT INTO object (source_id, accession)"
                    " VALUES (?, ?)",
                    (alpha.source_id, "alpha-new"),
                )
        info = sharded_db.storage_info()
        assert info["shards"]["images"]["0"]["image"] == 1
        assert not (tmp_path / "g.db.shard00.g0.db").exists()
        assert (tmp_path / "g.db.shard00.g1.db").exists()
        assert sharded_db.generation_of(["Alpha"]) > gen_alpha
        assert sharded_db.generation_of(["Beta"]) == gen_beta
        row = sharded_db.execute_read(
            "SELECT count(*) FROM object WHERE accession = 'alpha-new'"
        ).fetchone()
        assert row[0] == 1

    def test_flip_rolls_back_on_error(self, tmp_path, sharded_db):
        repo = GamRepository(sharded_db)
        _populate(repo, ["Alpha"], objects=3, links=0)
        alpha = repo.get_source("Alpha")
        with pytest.raises(RuntimeError):
            with sharded_db.image_flip("Alpha"):
                with sharded_db.write_scope("Alpha"), (
                    sharded_db.transaction()
                ):
                    sharded_db.execute(
                        "INSERT INTO object (source_id, accession)"
                        " VALUES (?, ?)",
                        (alpha.source_id, "doomed"),
                    )
                raise RuntimeError("import failed")
        assert sharded_db.storage_info()["shards"]["images"]["0"]["image"] == 0
        assert not list(tmp_path.glob("*.g1.db"))
        count = sharded_db.execute_read(
            "SELECT count(*) FROM object WHERE accession = 'doomed'"
        ).fetchone()[0]
        assert count == 0

    def test_readers_see_old_complete_or_new_complete(self, sharded_db):
        """Zero-downtime contract: a concurrent reader never observes a
        partially re-imported source."""
        repo = GamRepository(sharded_db)
        repo.add_source("Alpha")
        alpha = repo.get_source("Alpha")
        with sharded_db.write_scope("Alpha"), sharded_db.transaction():
            for i in range(10):
                sharded_db.execute(
                    "INSERT INTO object (source_id, accession)"
                    " VALUES (?, ?)",
                    (alpha.source_id, f"old-{i}"),
                )
        stop = threading.Event()
        observed = set()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    rows = sharded_db.execute_read(
                        "SELECT accession FROM object WHERE source_id = ?"
                        " ORDER BY accession",
                        (alpha.source_id,),
                    ).fetchall()
                    observed.add(
                        tuple(sorted(row[0] for row in rows))
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            with sharded_db.image_flip("Alpha"):
                with sharded_db.write_scope("Alpha"), (
                    sharded_db.transaction()
                ):
                    sharded_db.execute(
                        "DELETE FROM object WHERE source_id = ?",
                        (alpha.source_id,),
                    )
                    for i in range(10):
                        sharded_db.execute(
                            "INSERT INTO object (source_id, accession)"
                            " VALUES (?, ?)",
                            (alpha.source_id, f"new-{i}"),
                        )
            # Give the reader a chance to sample the flipped image
            # before stopping it (it loops continuously, so one extra
            # scheduling quantum is enough).
            deadline = threading.Event()
            old = tuple(sorted(f"old-{i}" for i in range(10)))
            new = tuple(sorted(f"new-{i}" for i in range(10)))
            for _ in range(200):
                if new in observed:
                    break
                deadline.wait(0.01)
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not errors
        assert observed <= {old, new}
        assert new in observed

@pytest.fixture()
def sharded_genmapper(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "on")
    with GenMapper(str(tmp_path / "g.db")) as gm:
        assert gm.db.sharded
        yield gm


class TestPipelineFlip:
    def test_reimport_flips_image_and_preserves_reads(
        self, sharded_genmapper, tmp_path
    ):
        """A changed manifest source re-imports through an image flip."""
        gm = sharded_genmapper
        record = ">>353\nOFFICIAL_SYMBOL: APRT\nGO: GO:0000001|one\n"
        data_dir = tmp_path / "data"
        data_dir.mkdir()
        (data_dir / "locus.txt").write_text(record)
        (data_dir / "manifest.tsv").write_text(
            "# file\tsource\trelease\nlocus.txt\tLocusLink\tr1\n"
        )
        gm.integrate_directory(data_dir)
        placement = gm.db.shard_placement(["LocusLink"])
        slot = str(placement["LocusLink"])
        image_before = gm.db.storage_info()["shards"]["images"][slot]["image"]
        (data_dir / "locus.txt").write_text(record + "OMIM: 102600\n")
        (data_dir / "manifest.tsv").write_text(
            "# file\tsource\trelease\nlocus.txt\tLocusLink\tr2\n"
        )
        gm.integrate_directory(data_dir)
        image_after = gm.db.storage_info()["shards"]["images"][slot]["image"]
        assert image_after == image_before + 1
        objects = gm.objects("LocusLink")
        assert any(obj.accession == "353" for obj in objects)


class TestMigration:
    def _build_monolithic(self, path, names=("A", "B", "C")):
        db = GamDatabase(str(path))
        _populate(GamRepository(db), list(names), objects=8, links=4)
        return db

    def test_migrate_then_reopen_detects_sharded(self, tmp_path):
        db = self._build_monolithic(tmp_path / "mono.db")
        snapshot = canonical_snapshot(GamRepository(db))
        summary = migrate_to_shards(db)
        db.close()
        assert summary["migrated"] == 3
        assert summary["layout"] == "sharded"
        reopened = GamDatabase.open(str(tmp_path / "mono.db"))
        assert isinstance(reopened, ShardedGamDatabase)
        assert canonical_snapshot(GamRepository(reopened)) == snapshot
        # Shard-resident rows are gone from the coordinator file.
        import sqlite3

        raw = sqlite3.connect(str(tmp_path / "mono.db"))
        assert raw.execute("SELECT count(*) FROM object").fetchone()[0] == 0
        raw.close()
        reopened.close()

    def test_crash_before_finalize_leaves_monolithic_intact(self, tmp_path):
        db = self._build_monolithic(tmp_path / "mono.db")
        snapshot = canonical_snapshot(GamRepository(db))

        def boom(connection):
            raise RuntimeError("simulated crash before finalize")

        original = shards_module.gam_schema.create_catalog_schema
        shards_module.gam_schema.create_catalog_schema = boom
        try:
            with pytest.raises(RuntimeError):
                migrate_to_shards(db)
        finally:
            shards_module.gam_schema.create_catalog_schema = original
        db.close()
        reopened = GamDatabase.open(str(tmp_path / "mono.db"))
        assert not reopened.sharded
        assert canonical_snapshot(GamRepository(reopened)) == snapshot
        # Resume skips the already-copied (checkpointed + verified) sources.
        summary = migrate_to_shards(reopened)
        assert summary["skipped"] == 3
        assert summary["migrated"] == 0
        reopened.close()
        final = GamDatabase.open(str(tmp_path / "mono.db"))
        assert final.sharded
        assert canonical_snapshot(GamRepository(final)) == snapshot
        final.close()

    def test_no_resume_recopies_everything(self, tmp_path):
        db = self._build_monolithic(tmp_path / "mono.db")
        # Pre-seed checkpoints as a finished-copy run would have.
        for name in ("A", "B", "C"):
            with db.write_scope(), db.transaction():
                db.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    (f"migrate_ckpt:{name}", json.dumps({"object": 0})),
                )
        summary = migrate_to_shards(db, resume=False)
        assert summary["migrated"] == 3
        assert summary["skipped"] == 0
        db.close()

    def test_migrate_rejects_sharded_and_memory(self, tmp_path):
        sharded = ShardedGamDatabase(str(tmp_path / "g.db"))
        with pytest.raises(GamSchemaError):
            migrate_to_shards(sharded)
        sharded.close()
        memory = GamDatabase(":memory:")
        with pytest.raises(GamSchemaError):
            migrate_to_shards(memory)
        memory.close()

    def test_migrated_ids_survive_watermark_placement(self, tmp_path):
        """Migrated rows keep pre-stride ids; watermarks still resolve
        through catalog placement, not id arithmetic."""
        db = self._build_monolithic(tmp_path / "mono.db", names=("A", "B"))
        migrate_to_shards(db)
        db.close()
        reopened = GamDatabase.open(str(tmp_path / "mono.db"))
        marks = reopened.table_watermarks({"object": "object_id"})
        assert set(marks["object"]) == {"0", "1"}
        assert all(mark > 0 for mark in marks["object"].values())
        reopened.close()


class TestOpenLayoutSelection:
    def test_env_var_creates_sharded(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "on")
        db = GamDatabase.open(str(tmp_path / "new.db"))
        assert db.sharded
        db.close()

    def test_env_var_off_creates_monolithic(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "off")
        db = GamDatabase.open(str(tmp_path / "new.db"))
        assert not db.sharded
        db.close()

    def test_detection_beats_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "on")
        mono = GamDatabase(str(tmp_path / "mono.db"))
        GamRepository(mono).add_source("A")
        mono.close()
        reopened = GamDatabase.open(str(tmp_path / "mono.db"))
        assert not reopened.sharded
        reopened.close()

    def test_memory_always_monolithic(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "on")
        db = GamDatabase.open(":memory:")
        assert not db.sharded
        db.close()


class TestShardedIntegrity:
    def test_delete_source_leaves_no_dangling_rows(self, sharded_db):
        repo = GamRepository(sharded_db)
        _populate(repo, ["Alpha", "Beta", "Gamma"], objects=6, links=3)
        delete_source(repo, "Beta")
        report = integrity_check(sharded_db)
        assert report.ok, str(report)
        # Relationships from either side of Beta are gone even though
        # they lived in different shard files.
        count = sharded_db.execute_read(
            "SELECT count(*) FROM source_rel"
        ).fetchone()[0]
        assert count == 0

    def test_integrity_detects_cross_shard_dangles(self, sharded_db):
        """The app-level sweep catches what SQLite FKs cannot see."""
        repo = GamRepository(sharded_db)
        _populate(repo, ["Alpha", "Beta"], objects=3, links=2)
        # Surgically delete Beta's source row only (bypassing the
        # cascade): Alpha's shard still holds rels pointing at Beta.
        beta = repo.get_source("Beta")
        with sharded_db.write_scope(), sharded_db.transaction():
            sharded_db.execute(
                "DELETE FROM source WHERE source_id = ?", (beta.source_id,)
            )
        report = integrity_check(sharded_db)
        assert not report.ok
        rules = {violation.rule for violation in report.violations}
        assert "source-rel-source-fk" in rules


class TestWebSurface:
    def test_health_reports_storage_layout(self, tmp_path, monkeypatch):
        from tests.test_web_api import call
        from repro.web.app import create_app

        monkeypatch.setenv("REPRO_SHARDS", "on")
        with GenMapper(str(tmp_path / "g.db")) as gm:
            _populate(GamRepository(gm.db), ["Alpha"], objects=1, links=0)
            status, payload = call(create_app(gm), "GET", "/health")
        assert status == 200
        assert payload["storage"]["layout"] == "sharded"
        assert payload["storage"]["shards"]["slots"] == 1

    def test_explain_reports_shard_placement(self, tmp_path, monkeypatch):
        from tests.test_web_api import call
        from repro.web.app import create_app

        monkeypatch.setenv("REPRO_SHARDS", "on")
        record = ">>353\nOFFICIAL_SYMBOL: APRT\nGO: GO:0000001|one\n"
        with GenMapper(str(tmp_path / "g.db")) as gm:
            gm.integrate_text(record, "LocusLink")
            status, payload = call(
                create_app(gm),
                "POST",
                "/query/explain",
                body={"query": "ANNOTATE LocusLink WITH GO"},
            )
        assert status == 200
        assert "shards" in payload
        assert "LocusLink" in payload["shards"]


class TestShardCatalogUnit:
    def test_place_prefers_dedicated_then_least_populated(self, tmp_path):
        catalog = ShardCatalog(tmp_path, "g.db", max_shards=2)
        __, placements = shards_module._plan_migration(
            catalog,
            [
                type("S", (), {"name": name, "source_id": i})()
                for i, name in enumerate(["A", "B", "C", "D"])
            ],
        )
        assert placements["A"] == 0
        assert placements["B"] == 1
        assert sorted(placements.values()) == [0, 0, 1, 1]
