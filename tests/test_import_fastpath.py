"""The bulk-ingest fast path: indexed datasets, counted writes, pushdown
derivation and parallel manifest import (see ``docs/performance.md``).

Locks the contracts the acceleration layer must keep: dataset indexes
agree with naive scans and invalidate on mutation, insert counts come
from the write cursor (concurrency-safe), the bulk accession cache stays
coherent across targets, both derivation engines store identical
associations, and a parallel manifest import produces the same reports
as a serial one.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.genmapper import GenMapper
from repro.datagen.emit import write_universe
from repro.datagen.universe import UniverseConfig, generate_universe
from repro.derived.composed import derive_composed
from repro.derived.subsumed import derive_subsumed
from repro.eav.model import (
    CONTAINS_TARGET,
    IS_A_TARGET,
    NAME_TARGET,
    EavRow,
)
from repro.eav.store import EavDataset, EavRowsView
from repro.gam.database import GamDatabase
from repro.gam.enums import RelType
from repro.gam.errors import (
    GamIntegrityError,
    ImportError_,
    UnknownMappingError,
)
from repro.gam.repository import GamRepository
from repro.importer.importer import GamImporter


def _sample_dataset() -> EavDataset:
    return EavDataset(
        "S",
        [
            EavRow("a", NAME_TARGET, "a", text="gene a"),
            EavRow("a", "GO", "GO:1", evidence=0.5),
            EavRow("b", "GO", "GO:1"),
            EavRow("b", "GO", "GO:2"),
            EavRow("b", "OMIM", "1234"),
            EavRow("S.part", CONTAINS_TARGET, "a"),
            EavRow("S.part", CONTAINS_TARGET, "b"),
        ],
    )


class TestDatasetIndexes:
    def test_indexes_agree_with_naive_scans(self):
        dataset = _sample_dataset()
        for target in dataset.targets():
            naive = [row for row in dataset if row.target == target]
            assert list(dataset.rows_for_target(target)) == naive
        for entity in dataset.entities():
            naive = [row for row in dataset if row.entity == entity]
            assert list(dataset.rows_for_entity(entity)) == naive

    def test_orderings_are_first_seen(self):
        dataset = _sample_dataset()
        assert dataset.entities() == ["a", "b", "S.part"]
        assert dataset.targets() == [NAME_TARGET, "GO", "OMIM", CONTAINS_TARGET]
        assert dataset.annotation_targets() == ["GO", "OMIM"]

    def test_missing_keys_return_empty(self):
        dataset = _sample_dataset()
        assert dataset.rows_for_target("nope") == ()
        assert dataset.rows_for_entity("nope") == ()

    def test_partition_entities(self):
        dataset = _sample_dataset()
        assert dataset.partition_entities() == {"S.part"}

    def test_entity_with_contains_and_annotation_is_not_partition(self):
        dataset = _sample_dataset()
        dataset.append(EavRow("S.part", "GO", "GO:3"))
        assert dataset.partition_entities() == frozenset()

    def test_has_reduced_evidence(self):
        dataset = _sample_dataset()
        assert dataset.has_reduced_evidence("GO")
        assert not dataset.has_reduced_evidence("OMIM")

    def test_append_invalidates_indexes(self):
        dataset = _sample_dataset()
        assert len(dataset.rows_for_target("GO")) == 3
        dataset.append(EavRow("c", "GO", "GO:9"))
        assert len(dataset.rows_for_target("GO")) == 4
        assert "c" in dataset.entities()

    def test_extend_invalidates_indexes(self):
        dataset = _sample_dataset()
        assert not dataset.has_reduced_evidence("OMIM")
        dataset.extend([EavRow("d", "OMIM", "99", evidence=0.1)])
        assert dataset.has_reduced_evidence("OMIM")

    def test_target_counts(self):
        dataset = _sample_dataset()
        assert dataset.target_counts()["GO"] == 3
        assert dataset.target_counts()[CONTAINS_TARGET] == 2


class TestRowsView:
    def test_view_is_not_a_copy(self):
        dataset = _sample_dataset()
        assert dataset.rows is dataset.rows  # stable object, no per-access copy

    def test_view_is_live(self):
        dataset = _sample_dataset()
        view = dataset.rows
        before = len(view)
        dataset.append(EavRow("z", "GO", "GO:8"))
        assert len(view) == before + 1
        assert view[-1].entity == "z"

    def test_view_supports_sequence_protocol(self):
        dataset = _sample_dataset()
        view = dataset.rows
        assert isinstance(view, EavRowsView)
        assert view[0].entity == "a"
        assert [row.entity for row in view[:2]] == ["a", "a"]
        assert view == list(view)
        assert list(reversed(view))[0] == view[-1]
        assert view.count(view[0]) == 1
        assert view.index(view[1]) == 1

    def test_view_rejects_mutation(self):
        view = _sample_dataset().rows
        with pytest.raises(TypeError):
            view[0] = None
        with pytest.raises(AttributeError):
            view.append(EavRow("x", "GO", "GO:1"))


class TestCountedWrites:
    def test_executemany_counted_counts_only_inserts(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            sql = (
                "INSERT OR IGNORE INTO object (source_id, accession)"
                " VALUES (?, ?)"
            )
            assert db.executemany_counted(sql, [(1, "x"), (1, "y")]) == 2
            assert db.executemany_counted(sql, [(1, "x"), (1, "z")]) == 1
            assert db.executemany_counted(sql, [(1, "x"), (1, "y")]) == 0

    def test_executemany_counted_streams_generators_in_chunks(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            rows = ((1, f"acc{i}") for i in range(25))
            count = db.executemany_counted(
                "INSERT OR IGNORE INTO object (source_id, accession)"
                " VALUES (?, ?)",
                rows,
                chunk_size=4,
            )
            assert count == 25
            assert repo.count_objects("A") == 25

    def test_executemany_counted_rolls_back_on_error(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")

            def bad_rows():
                yield (1, "ok")
                raise RuntimeError("boom")

            with pytest.raises(RuntimeError):
                db.executemany_counted(
                    "INSERT OR IGNORE INTO object (source_id, accession)"
                    " VALUES (?, ?)",
                    bad_rows(),
                    chunk_size=1,
                )
            assert repo.count_objects("A") == 0

    def test_strict_error_rolls_back_partial_association_chunks(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            repo.add_objects("A", [("a1",), ("a2",)])
            rel = repo.ensure_source_rel("A", "A", RelType.FACT)
            rows = [("a1", "a2"), ("a2", "a1"), ("a1", "ghost")]
            with pytest.raises(GamIntegrityError, match="ghost"):
                repo.add_associations(rel, rows)
            assert repo.count_associations(rel) == 0

    def test_add_objects_upsert_semantics_preserved(self):
        # The split insert/update passes must behave exactly like the old
        # single upsert, including within-batch duplicate sequences.
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            inserted = repo.add_objects(
                "A", [("x", "first"), ("x", None, 5.0), ("x", "second")]
            )
            assert inserted == 1
            obj = repo.get_object("A", "x")
            assert obj.text == "second"
            assert obj.number == 5.0
            # Re-offering with nulls keeps stored values; with new text
            # overwrites.
            assert repo.add_objects("A", [("x",)]) == 0
            assert repo.get_object("A", "x").text == "second"
            assert repo.add_objects("A", [("x", "third")]) == 0
            assert repo.get_object("A", "x").text == "third"


class TestBulkImportCache:
    def test_cache_updates_incrementally(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            with repo.bulk_import():
                repo.add_objects("A", [("a1",), ("a2",)])
                # The cached map must already contain the fresh inserts.
                assert set(repo.accessions_of("A")) == {"a1", "a2"}
                rel = repo.ensure_source_rel("A", "A", RelType.FACT)
                assert repo.add_associations(rel, [("a1", "a2")]) == 1

    def test_nested_scopes_share_the_outer_cache(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            with repo.bulk_import():
                repo.add_objects("A", [("a1",)])
                with repo.bulk_import():
                    assert repo.accessions_of("A") == {"a1"}
                # The inner exit must not tear the outer scope down.
                assert repo._bulk_ids() is not None
            assert repo._bulk_ids() is None

    def test_cache_is_dropped_outside_the_scope(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            with repo.bulk_import():
                repo.add_objects("A", [("a1",)])
            # Outside the scope, lookups hit the database again.
            db.execute(
                "INSERT INTO object (source_id, accession) VALUES (1, 'a2')"
            )
            assert repo.accessions_of("A") == {"a1", "a2"}


class TestConcurrentImportCounts:
    def test_two_threads_importing_distinct_sources_count_exactly(self):
        """Regression: COUNT(*)-delta accounting let a pool-sibling writer
        skew another import's reported insert counts."""
        with GamDatabase() as db:
            def dataset_for(name: str) -> EavDataset:
                rows = [
                    EavRow(f"{name}-e{i}", "GO", f"GO:{i % 7}")
                    for i in range(200)
                ]
                return EavDataset(name, rows)

            importer = GamImporter(GamRepository(db))
            reports = {}
            errors = []

            def run(name: str) -> None:
                try:
                    reports[name] = importer.import_dataset(dataset_for(name))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(name,))
                for name in ("SrcA", "SrcB")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            for name in ("SrcA", "SrcB"):
                assert reports[name].new_objects == 200
                assert reports[name].new_associations["GO"] == 200
            # GO target objects are shared: exactly 7 exist, and the two
            # reports' inserted counts add up to exactly that.
            repo = GamRepository(db)
            assert repo.count_objects("GO") == 7
            assert (
                reports["SrcA"].new_target_objects["GO"]
                + reports["SrcB"].new_target_objects["GO"]
                == 7
            )


class TestReimportSemantics:
    def _dataset(self) -> EavDataset:
        return EavDataset(
            "S",
            [
                EavRow("a", NAME_TARGET, "a", text="gene a"),
                EavRow("a", "GO", "GO:1"),
                EavRow("a", "GO", "GO:1"),  # in-batch duplicate
                EavRow("b", "GO", "GO:2"),
                EavRow("b", IS_A_TARGET, "a"),
                EavRow("S.part", CONTAINS_TARGET, "a"),
                EavRow("S.part", CONTAINS_TARGET, "ghost"),
            ],
        )

    def test_second_import_inserts_nothing(self):
        with GamDatabase() as db:
            importer = GamImporter(GamRepository(db))
            first = importer.import_dataset(self._dataset())
            assert first.new_objects == 2
            assert first.new_associations["GO"] == 2  # duplicate row deduped
            assert first.new_associations[IS_A_TARGET] == 1
            assert first.new_associations["S.part"] == 1
            assert first.skipped_rows == 1  # the ghost member
            second = importer.import_dataset(self._dataset())
            assert second.new_objects == 0
            assert second.total_associations == 0
            assert second.new_target_objects["GO"] == 0
            # Skip accounting reflects offered rows, not stored state.
            assert second.skipped_rows == 1

    def test_partition_entity_never_becomes_an_object(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            importer = GamImporter(repo)
            importer.import_dataset(self._dataset())
            assert repo.accessions_of("S") == {"a", "b"}
            assert repo.find_object("S", "S.part") is None
            # The partition itself exists as a source holding every
            # offered member (only the ghost's membership is skipped).
            assert repo.accessions_of("S.part") == {"a", "ghost"}

    def test_strict_false_skips_unknown_accessions(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            repo.add_source("A")
            repo.add_objects("A", [("a1",), ("a2",)])
            rel = repo.ensure_source_rel("A", "A", RelType.FACT)
            inserted = repo.add_associations(
                rel,
                [("a1", "a2"), ("a1", "ghost"), ("ghost", "a2"), ("a2", "a1")],
                strict=False,
            )
            assert inserted == 2
            assert repo.count_associations(rel) == 2


class TestDerivationPushdown:
    def test_composed_engines_store_identical_associations(self, paper_genmapper):
        repo = paper_genmapper.repository
        path = ["Unigene", "LocusLink", "GO"]
        sql_mapping = derive_composed(repo, path, engine="sql")
        sql_rel = repo.find_source_rels("Unigene", "GO", RelType.COMPOSED)[0]
        sql_stored = set(repo.associations_of(sql_rel))
        # Wipe and re-derive through the Python path.
        repo.db.execute(
            "DELETE FROM object_rel WHERE src_rel_id = ?", (sql_rel.src_rel_id,)
        )
        memory_mapping = derive_composed(repo, path, engine="memory")
        memory_stored = set(repo.associations_of(sql_rel))
        assert sql_stored == memory_stored
        assert sql_mapping.pair_set() == memory_mapping.pair_set()

    def test_composed_sql_materialization_idempotent(self, paper_genmapper):
        repo = paper_genmapper.repository
        path = ["Unigene", "LocusLink", "GO"]
        derive_composed(repo, path, engine="sql")
        rel = repo.find_source_rels("Unigene", "GO", RelType.COMPOSED)[0]
        count = repo.count_associations(rel)
        derive_composed(repo, path, engine="sql")
        assert repo.count_associations(rel) == count

    def test_composed_engine_validation(self, paper_genmapper):
        repo = paper_genmapper.repository
        with pytest.raises(ValueError, match="unknown derive engine"):
            derive_composed(repo, ["Unigene", "LocusLink", "GO"], engine="turbo")
        with pytest.raises(ValueError, match="named combiner"):
            derive_composed(
                repo,
                ["Unigene", "LocusLink", "GO"],
                combiner=lambda a, b: a * b,
                engine="sql",
            )

    def test_subsumed_engines_store_identical_associations(self, paper_genmapper):
        repo = paper_genmapper.repository
        rel, inserted = derive_subsumed(repo, "GO", engine="sql")
        sql_stored = set(repo.associations_of(rel))
        assert inserted == len(sql_stored) == 3
        repo.db.execute(
            "DELETE FROM object_rel WHERE src_rel_id = ?", (rel.src_rel_id,)
        )
        __, memory_inserted = derive_subsumed(repo, "GO", engine="memory")
        assert memory_inserted == 3
        assert set(repo.associations_of(rel)) == sql_stored

    def test_subsumed_sql_requires_is_a_structure(self, paper_genmapper):
        with pytest.raises(UnknownMappingError):
            derive_subsumed(
                paper_genmapper.repository, "LocusLink", engine="sql"
            )

    def test_subsumed_sql_rejects_cycles(self):
        with GamDatabase() as db:
            repo = GamRepository(db)
            importer = GamImporter(repo)
            importer.import_dataset(
                EavDataset(
                    "Cyc",
                    [
                        EavRow("a", IS_A_TARGET, "b"),
                        EavRow("b", IS_A_TARGET, "a"),
                    ],
                )
            )
            with pytest.raises(GamIntegrityError, match="cycle"):
                derive_subsumed(repo, "Cyc", engine="sql")
            # The failed derivation must leave nothing behind.
            rel = repo.find_source_rels("Cyc", "Cyc", RelType.SUBSUMED)
            assert not rel or repo.count_associations(rel[0]) == 0


@pytest.fixture(scope="module")
def universe_dir(tmp_path_factory):
    universe = generate_universe(UniverseConfig(seed=5, n_genes=40, n_go_terms=30))
    directory = tmp_path_factory.mktemp("fastpath_universe")
    write_universe(universe, directory)
    return directory


class TestParallelDirectoryImport:
    def test_parallel_matches_serial(self, universe_dir):
        """The stored database must be identical to a serial run.

        Per-report *attribution* of shared target objects legitimately
        depends on completion order (whichever import reaches the GO
        source first inserts its objects), so the invariants are the
        stored state and the per-mapping association counts, which each
        belong to exactly one source's import.
        """
        def snapshot(gm):
            repo = gm.repository
            state = {"tables": gm.db.counts()}
            for source in repo.list_sources():
                state[f"objects:{source.name}"] = repo.accessions_of(source)
            for rel in repo.find_source_rels():
                names = (
                    repo.get_source(rel.source1_id).name,
                    repo.get_source(rel.source2_id).name,
                    rel.type.value,
                )
                state[f"rel:{names}"] = repo.count_associations(rel)
            return state

        with GenMapper() as serial_gm:
            serial_reports = serial_gm.integrate_directory(universe_dir)
            serial_state = snapshot(serial_gm)
        with GenMapper() as parallel_gm:
            parallel_reports = parallel_gm.integrate_directory(
                universe_dir, workers=4
            )
            parallel_state = snapshot(parallel_gm)
        assert parallel_state == serial_state
        # Reports come back in manifest order regardless of completion
        # order, and each source's association counts are deterministic.
        assert [r.source.name for r in parallel_reports] == [
            r.source.name for r in serial_reports
        ]
        for parallel_report, serial_report in zip(
            parallel_reports, serial_reports
        ):
            assert (
                parallel_report.new_associations
                == serial_report.new_associations
            )
            assert parallel_report.skipped_rows == serial_report.skipped_rows

    def test_workers_env_default(self, universe_dir, monkeypatch):
        monkeypatch.setenv("REPRO_IMPORT_WORKERS", "4")
        with GenMapper() as gm:
            reports = gm.integrate_directory(universe_dir)
        assert len(reports) > 1
        assert all(report.new_objects >= 0 for report in reports)

    def test_parallel_missing_file_fails_before_importing(self, tmp_path):
        (tmp_path / "manifest.tsv").write_text(
            "# file\tsource\trelease\nmissing.txt\tLocusLink\t\n",
            encoding="utf-8",
        )
        with GenMapper() as gm:
            with pytest.raises(ImportError_, match="missing file"):
                gm.integrate_directory(tmp_path, workers=4)
            assert gm.sources() == []
