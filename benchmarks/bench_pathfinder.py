"""Experiment A-paths (paper Section 5.1): mapping-path search.

GenMapper keeps a graph of all sources/mappings and finds paths with a
shortest-path algorithm; users can force intermediates or enumerate
alternatives.  This bench measures graph construction from the database
and the three search modes, plus search scaling on synthetic source graphs
much denser than the benchmark universe.
"""

import networkx as nx
import numpy as np
import pytest

from repro.pathfinder.graph import build_source_graph
from repro.pathfinder.search import (
    k_shortest_paths,
    shortest_path,
    shortest_path_via,
)


def random_source_graph(n_sources, mean_degree, seed=7):
    """A connected random multigraph shaped like a big deployment."""
    rng = np.random.default_rng(seed)
    graph = nx.MultiGraph()
    names = [f"Source{i}" for i in range(n_sources)]
    graph.add_nodes_from(names)
    # A spanning chain keeps it connected; extra random edges add density.
    for i in range(1, n_sources):
        graph.add_edge(names[i - 1], names[i], weight=1.0)
    extra_edges = int(n_sources * (mean_degree - 2) / 2)
    for __ in range(max(extra_edges, 0)):
        a, b = rng.integers(0, n_sources, size=2)
        if a != b:
            graph.add_edge(names[a], names[b], weight=1.0)
    return graph, names


def test_bench_graph_construction(benchmark, bench_genmapper):
    graph = benchmark(build_source_graph, bench_genmapper.repository)
    assert graph.number_of_nodes() >= 15
    benchmark.extra_info["experiment"] = "Section 5.1: build source graph"
    benchmark.extra_info["mappings"] = graph.number_of_edges()


def test_bench_shortest_path_on_universe(benchmark, bench_genmapper):
    graph = bench_genmapper.source_graph()
    path = benchmark(shortest_path, graph, "NetAffx", "OMIM")
    assert path[0] == "NetAffx" and path[-1] == "OMIM"
    benchmark.extra_info["experiment"] = "Section 5.1: shortest path"
    benchmark.extra_info["path"] = " -> ".join(path)


def test_bench_via_search(benchmark, bench_genmapper):
    graph = bench_genmapper.source_graph()
    path = benchmark(
        shortest_path_via, graph, "NetAffx", "GO", "Unigene"
    )
    assert "Unigene" in path
    benchmark.extra_info["experiment"] = "Section 5.1: via-constrained path"


def test_bench_k_alternatives(benchmark, bench_genmapper):
    graph = bench_genmapper.source_graph()
    paths = benchmark(k_shortest_paths, graph, "NetAffx", "GO", 5)
    assert paths
    benchmark.extra_info["experiment"] = "Section 5.1: k alternative paths"
    benchmark.extra_info["alternatives"] = len(paths)


@pytest.mark.parametrize("n_sources", [60, 250, 1000])
def test_bench_search_scaling(benchmark, n_sources):
    """Shortest-path cost as the deployment grows to paper scale (60
    sources) and beyond."""
    graph, names = random_source_graph(n_sources, mean_degree=6)
    result = benchmark(shortest_path, graph, names[0], names[-1])
    assert result[0] == names[0]
    benchmark.extra_info["experiment"] = (
        f"Section 5.1: search over {n_sources} sources"
    )
