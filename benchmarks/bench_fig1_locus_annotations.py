"""Experiment F1 (paper Figure 1): all annotations of one locus.

Figure 1 shows the LocusLink page for locus 353 with its Hugo, Alias,
Chr/Location, OMIM, Enzyme and GO annotations.  After integration, the same
display is the object-information lookup; the bench measures it per object
and for a batch of loci.
"""


def test_figure1_annotation_kinds_present(bench_genmapper, bench_universe):
    gene = bench_universe.genes[0]
    info = bench_genmapper.object_info("LocusLink", gene.locus)
    partners = {partner for partner, __, __a in info}
    assert {"Hugo", "GO", "Location", "Chromosome"} <= partners
    go_terms = {
        assoc.target_accession
        for partner, __, assoc in info
        if partner == "GO"
    }
    assert go_terms == set(gene.go_terms)


def test_bench_single_object_info(benchmark, bench_genmapper, bench_universe):
    locus = bench_universe.genes[0].locus
    info = benchmark(bench_genmapper.object_info, "LocusLink", locus)
    assert info
    benchmark.extra_info["experiment"] = "Figure 1: one locus page"


def test_bench_batch_object_info(benchmark, bench_genmapper, bench_universe):
    loci = [gene.locus for gene in bench_universe.genes[:100]]

    def lookup_batch():
        return [
            bench_genmapper.object_info("LocusLink", locus) for locus in loci
        ]

    results = benchmark(lookup_batch)
    assert all(results)
    benchmark.extra_info["experiment"] = "Figure 1: 100 locus pages"
