"""Experiment F5 (paper Figure 5): the GenerateView algorithm.

Sweeps the algorithm's inputs — combine method (AND vs OR), negation, and
the number of targets m — over the benchmark universe.  Shape expectation:
cost grows roughly linearly in m (one join per target, as in the
pseudo-code), and AND views are never larger than OR views for the same
spec.
"""

import pytest

from repro.operators.generate_view import TargetSpec

ALL_TARGETS = ["Hugo", "GO", "Location", "OMIM", "Unigene", "Ensembl"]


def test_and_view_never_larger_than_or_view(bench_genmapper):
    for targets in (["Hugo"], ["Hugo", "GO"], ["GO", "OMIM", "Location"]):
        and_view = bench_genmapper.generate_view(
            "LocusLink", targets, combine="AND"
        )
        or_view = bench_genmapper.generate_view(
            "LocusLink", targets, combine="OR"
        )
        assert set(and_view.rows) <= set(or_view.rows)


def test_negation_partitions_the_source(bench_genmapper):
    positive = bench_genmapper.generate_view(
        "LocusLink", ["OMIM"], combine="AND"
    )
    negative = bench_genmapper.generate_view(
        "LocusLink", [TargetSpec.of("OMIM", negated=True)], combine="AND"
    )
    all_loci = bench_genmapper.accessions("LocusLink")
    assert set(positive.source_objects()) | set(
        negative.source_objects()
    ) == all_loci
    assert not set(positive.source_objects()) & set(negative.source_objects())


@pytest.mark.parametrize("combine", ["AND", "OR"])
@pytest.mark.parametrize("n_targets", [1, 2, 4, 6])
def test_bench_scaling_in_targets(
    benchmark, bench_genmapper, combine, n_targets
):
    targets = ALL_TARGETS[:n_targets]
    view = benchmark(
        bench_genmapper.generate_view, "LocusLink", targets, combine=combine
    )
    assert view.columns == ("LocusLink", *targets)
    benchmark.extra_info["experiment"] = (
        f"Figure 5: m={n_targets} targets, {combine}"
    )
    benchmark.extra_info["rows"] = len(view)


def test_bench_negated_target(benchmark, bench_genmapper):
    view = benchmark(
        bench_genmapper.generate_view,
        "LocusLink",
        ["GO", TargetSpec.of("OMIM", negated=True)],
        combine="AND",
    )
    benchmark.extra_info["experiment"] = "Figure 5: GO AND NOT OMIM"
    benchmark.extra_info["rows"] = len(view)


def test_bench_restricted_targets(benchmark, bench_genmapper, bench_universe):
    go_subset = set(bench_universe.go.accessions()[:30])
    view = benchmark(
        bench_genmapper.generate_view,
        "LocusLink",
        [TargetSpec.of("GO", restrict=go_subset), "Hugo"],
        combine="AND",
    )
    benchmark.extra_info["experiment"] = "Figure 5: restricted GO IN (...)"
    benchmark.extra_info["rows"] = len(view)
