"""Ablation: in-memory GenerateView vs SQL compilation.

Paper Section 4.2 notes the operators "leave room for optimizations in the
implementation".  This ablation compares the two execution engines on the
same specifications: the in-memory engine loads each target's mapping and
joins in Python; the SQL engine compiles the whole view (including Compose
paths and negation) into one CTE statement the backend executes.

Shape expectation: both return identical rows; the SQL engine avoids
materializing per-target mappings in Python, which pays off as the number
of targets and the mapping sizes grow.
"""

import pytest

from repro.operators.generate_view import TargetSpec

SPECS = {
    "1 stored target": (["Hugo"], "AND"),
    "4 stored targets": (["Hugo", "GO", "Location", "OMIM"], "OR"),
    "negated target": (["GO", TargetSpec.of("OMIM", negated=True)], "AND"),
}


@pytest.fixture(scope="module", params=sorted(SPECS))
def spec(request):
    return request.param, *SPECS[request.param]


def test_engines_identical_on_bench_universe(bench_genmapper):
    for name, (targets, combine) in SPECS.items():
        memory = bench_genmapper.generate_view(
            "LocusLink", targets, combine=combine, engine="memory"
        )
        sql = bench_genmapper.generate_view(
            "LocusLink", targets, combine=combine, engine="sql"
        )
        assert set(sql.rows) == set(memory.rows), name


def test_bench_memory_engine(benchmark, bench_genmapper, spec):
    name, targets, combine = spec
    view = benchmark(
        bench_genmapper.generate_view, "LocusLink", targets,
        combine=combine, engine="memory",
    )
    benchmark.extra_info["experiment"] = f"Engine ablation (memory): {name}"
    benchmark.extra_info["rows"] = len(view)


def test_bench_sql_engine(benchmark, bench_genmapper, spec):
    name, targets, combine = spec
    view = benchmark(
        bench_genmapper.generate_view, "LocusLink", targets,
        combine=combine, engine="sql",
    )
    benchmark.extra_info["experiment"] = f"Engine ablation (sql): {name}"
    benchmark.extra_info["rows"] = len(view)


def test_bench_sql_engine_composed_path(benchmark, bench_genmapper):
    """A 3-hop Compose executed entirely inside the database."""
    view = benchmark(
        bench_genmapper.generate_view,
        "NetAffx",
        [TargetSpec.of("GO", via=("Unigene", "LocusLink"))],
        combine="AND",
        engine="sql",
    )
    assert len(view) > 0
    benchmark.extra_info["experiment"] = "Engine ablation (sql): 3-hop compose"
    benchmark.extra_info["rows"] = len(view)
