"""Experiment T1 (paper Table 1): the Parse step.

Regenerates Table 1 — the EAV rows parsed from LocusLink's locus 353 page —
and measures parser throughput on the benchmark universe's full LocusLink
dump.  The paper's claim behind this table is qualitative: Parse is "a
small portion of source-specific code" whose output is a uniform EAV
format; the assertions pin the exact Table 1 rows.
"""


from repro.datagen.emit import emit_locuslink
from repro.eav.model import EavRow
from repro.parsers.locuslink import LocusLinkParser

#: The paper's Table 1, verbatim (minus the trailing "..." row).
TABLE_1_ROWS = [
    EavRow("353", "Hugo", "APRT", "adenine phosphoribosyltransferase"),
    EavRow("353", "Location", "16q24"),
    EavRow("353", "Enzyme", "2.4.2.7"),
    EavRow("353", "GO", "GO:0009116", "nucleoside metabolism"),
]

LOCUS_353 = """\
>>353
OFFICIAL_SYMBOL: APRT|adenine phosphoribosyltransferase
MAP: 16q24
ECNUM: 2.4.2.7
GO: GO:0009116|nucleoside metabolism
"""


def test_table1_rows_regenerated():
    """The parsed record reproduces Table 1 row for row."""
    rows = LocusLinkParser().parse_text(LOCUS_353).rows
    assert rows == TABLE_1_ROWS


def test_bench_parse_locus_353(benchmark):
    parser = LocusLinkParser()
    result = benchmark(parser.parse_text, LOCUS_353)
    assert result.rows == TABLE_1_ROWS
    benchmark.extra_info["experiment"] = "Table 1"


def test_bench_parse_full_locuslink_dump(benchmark, bench_universe):
    text = emit_locuslink(bench_universe)
    parser = LocusLinkParser()
    dataset = benchmark(parser.parse_text, text)
    assert len(dataset.entities()) == len(bench_universe.genes)
    benchmark.extra_info["experiment"] = "Table 1 (full dump)"
    benchmark.extra_info["records"] = len(bench_universe.genes)
    benchmark.extra_info["eav_rows"] = len(dataset)
