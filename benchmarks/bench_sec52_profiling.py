"""Experiment S52-profiling (paper Section 5.2): large-scale gene
functional profiling.

The paper: ~40,000 genes measured on Affymetrix arrays, ~20,000 detected
as expressed, ~2,500 differentially expressed between human and
chimpanzee; annotations were obtained by mapping Affymetrix probes to
UniGene, deriving GO annotations through LocusLink, and rolling statistics
up the GO taxonomy (IS_A/Subsumed).

Shape checks:
* the headline proportions (~50% expressed, ~12.5% of those differential)
  hold on the scaled universe,
* the pipeline recovers the planted differential probes,
* enrichment with the taxonomy rollup recovers the planted GO signal,
* the same methodology runs against the Enzyme taxonomy (the paper's
  "also applicable to other taxonomies" claim).
"""

import pytest

from repro.analysis.diffexpr import detect_differential, detect_expressed
from repro.analysis.profiling import FunctionalProfiler
from repro.taxonomy.dag import Taxonomy


@pytest.fixture(scope="module")
def report(bench_genmapper, bench_study):
    return FunctionalProfiler(bench_genmapper).run(bench_study)


def test_headline_proportions_match_paper_shape(report):
    expressed_fraction = len(report.expressed_probes) / report.n_probes
    assert 0.35 <= expressed_fraction <= 0.65  # paper: 20k / 40k
    differential_fraction = len(report.differential) / len(
        report.expressed_probes
    )
    assert 0.05 <= differential_fraction <= 0.25  # paper: 2.5k / 20k


def test_planted_differential_probes_recovered(report, bench_study):
    found = report.differential_probes
    truth = bench_study.differential_probes
    overlap = len(found & truth)
    assert overlap / max(len(truth), 1) >= 0.7
    assert overlap / max(len(found), 1) >= 0.7


def test_enrichment_recovers_planted_terms(
    report, bench_study, bench_universe
):
    taxonomy = Taxonomy(bench_universe.go.is_a_pairs())
    planted_and_ancestors = set(bench_study.planted_terms)
    for term in bench_study.planted_terms:
        if term in taxonomy:
            planted_and_ancestors |= taxonomy.ancestors(term)
    hits = {r.term for r in report.significant_terms(fdr=0.10)}
    assert hits & planted_and_ancestors


def test_bench_full_profiling_pipeline(benchmark, bench_genmapper, bench_study):
    profiler = FunctionalProfiler(bench_genmapper)
    result = benchmark(profiler.run, bench_study)
    assert result.enrichment
    benchmark.extra_info["experiment"] = "Section 5.2: full pipeline"
    benchmark.extra_info["probes"] = result.n_probes
    benchmark.extra_info["expressed"] = len(result.expressed_probes)
    benchmark.extra_info["differential"] = len(result.differential)


def test_bench_expression_statistics_only(benchmark, bench_study):
    def statistics():
        expressed = detect_expressed(bench_study)
        return detect_differential(bench_study, expressed=expressed)

    results = benchmark(statistics)
    assert results
    benchmark.extra_info["experiment"] = "Section 5.2: t-tests + FDR"


def test_bench_annotation_mapping_only(benchmark, bench_genmapper):
    profiler = FunctionalProfiler(bench_genmapper)

    def mapping_steps():
        probe_gene = profiler.probe_to_gene()
        annotation = profiler.gene_annotation()
        return probe_gene, annotation

    probe_gene, annotation = benchmark(mapping_steps)
    assert len(probe_gene) > 0 and len(annotation) > 0
    benchmark.extra_info["experiment"] = "Section 5.2: mapping steps"


def test_enzyme_taxonomy_methodology(bench_genmapper, bench_study):
    """The paper: "the methodology is also applicable to other
    taxonomies, e.g. Enzyme"."""
    profiler = FunctionalProfiler(
        bench_genmapper,
        gene_source="Unigene",
        locus_source="LocusLink",
        taxonomy_source="Enzyme",
    )
    result = profiler.run(bench_study)
    assert result.taxonomy_source == "Enzyme"
    # EC classes roll up: tested terms include non-leaf classes.
    tested = {r.term for r in result.enrichment}
    assert any(term.count(".") < 3 for term in tested)
