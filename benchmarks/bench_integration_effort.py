"""Experiment A-integration: the cost of adding a new source.

The paper's central maintainability claim: with the generic GAM model,
"the integration of a new source [is] relatively easy, mainly consisting
of the effort to write a new parser" — no schema change, ever.  Classic
warehouses with an application-specific global schema need schema
evolution for every unanticipated source or attribute.

Measured: integrating a brand-new vendor source with unanticipated
attributes into (a) GenMapper — zero DDL — and (b) the star-schema
warehouse baseline — one DDL statement per new table.  Plus integration
cost as more and more sources are added, the paper's scalability-to-many-
sources argument.
"""

import pytest

from repro.baselines.warehouse import StarWarehouse
from repro.core.genmapper import GenMapper
from repro.eav.model import EavRow
from repro.eav.store import EavDataset
from repro.gam.schema import GAM_TABLES


def vendor_dataset(n_probes=200):
    """A new vendor source with two attributes no schema anticipated."""
    rows = []
    for i in range(n_probes):
        probe = f"VX{i}"
        rows.append(EavRow(probe, "LocusLink", str(100 + i % 50)))
        rows.append(EavRow(probe, "SpotQuality", f"q{i % 5}"))
        rows.append(EavRow(probe, "ArrayBatch", f"b{i % 3}"))
    return EavDataset("VendorX", rows)


def count_tables(db):
    # sqlite_stat* are SQLite's internal ANALYZE bookkeeping, not schema.
    return len(
        db.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
            " AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
    )


def test_genmapper_needs_zero_schema_changes(bench_universe_dir):
    with GenMapper() as gm:
        gm.integrate_directory(bench_universe_dir)
        tables_before = count_tables(gm.db)
        gm.integrate_dataset(vendor_dataset())
        tables_after = count_tables(gm.db)
        assert tables_before == tables_after == len(GAM_TABLES) + 1  # + meta
        # The new source and its unanticipated attributes are queryable
        # immediately, through the same operators.
        mapping = gm.map("VendorX", "SpotQuality")
        assert len(mapping) > 0


def test_warehouse_needs_schema_evolution():
    warehouse = StarWarehouse()
    warehouse.design("LocusLink")
    warehouse.integrate(
        EavDataset("LocusLink", [EavRow("100", "GO", "GO:1")])
    )
    assert warehouse.schema_changes == 0
    warehouse.integrate(vendor_dataset(), auto_evolve=True)
    # One entity table + three unanticipated bridge tables.
    assert warehouse.schema_changes == 4


def test_bench_genmapper_new_source(benchmark, bench_universe_dir):
    gm = GenMapper()
    gm.integrate_directory(bench_universe_dir)
    counter = iter(range(10_000))

    def integrate_vendor():
        dataset = vendor_dataset()
        dataset.source_name = f"VendorX{next(counter)}"
        return gm.integrate_dataset(dataset)

    report = benchmark(integrate_vendor)
    assert report.new_objects > 0
    benchmark.extra_info["experiment"] = "Integration effort: GenMapper"
    benchmark.extra_info["schema_changes"] = 0
    gm.close()


def test_bench_warehouse_new_source(benchmark):
    counter = iter(range(10_000))

    def integrate_vendor():
        warehouse = StarWarehouse()
        warehouse.design("LocusLink")
        dataset = vendor_dataset()
        dataset.source_name = f"VendorX{next(counter)}"
        warehouse.integrate(dataset, auto_evolve=True)
        return warehouse

    warehouse = benchmark(integrate_vendor)
    benchmark.extra_info["experiment"] = "Integration effort: warehouse"
    benchmark.extra_info["schema_changes"] = warehouse.schema_changes


@pytest.mark.parametrize("n_sources", [5, 20, 60])
def test_bench_many_generic_sources(benchmark, n_sources):
    """Scalability to many sources: GAM table count stays constant."""

    def integrate_many():
        with GenMapper() as gm:
            for i in range(n_sources):
                rows = [
                    EavRow(f"obj{i}_{j}", "LocusLink", str(100 + j))
                    for j in range(50)
                ]
                gm.integrate_dataset(EavDataset(f"Source{i}", rows))
            return count_tables(gm.db), gm.stats()

    tables, stats = benchmark.pedantic(integrate_many, rounds=3, iterations=1)
    assert tables == len(GAM_TABLES) + 1
    assert stats["sources"] >= n_sources
    benchmark.extra_info["experiment"] = (
        f"Integration effort: {n_sources} sources, constant schema"
    )
