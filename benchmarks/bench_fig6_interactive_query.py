"""Experiment F6 (paper Figure 6): the interactive query workflow.

Reenacts the screenshot sequence for UniGene objects: select source,
upload accessions, pick targets (with an automatically suggested mapping
path), run the query, inspect object information and export the result —
then measures the complete round trip.
"""

from repro.query.session import QuerySession


def run_figure6_workflow(genmapper, accessions, export_path):
    session = QuerySession(genmapper)
    session.select_source("Unigene")
    session.upload_accessions(accessions)
    path = session.suggest_path("GO")
    assert path[0] == "Unigene" and path[-1] == "GO"
    session.add_target("GO", via=path[1:-1])
    session.add_target("Hugo")
    session.combine_with("OR")
    view = session.run()
    info = session.object_info(accessions[0])
    session.export(export_path)
    return view, info


def test_figure6_workflow_produces_view_and_info(
    bench_genmapper, bench_universe, tmp_path
):
    clusters = [
        gene.unigene for gene in bench_universe.genes[:20] if gene.unigene
    ]
    view, info = run_figure6_workflow(
        bench_genmapper, clusters, tmp_path / "view.tsv"
    )
    assert view.columns == ("Unigene", "GO", "Hugo")
    assert set(view.source_objects()) == set(clusters)
    assert info  # Figure 6c: object information is available
    assert (tmp_path / "view.tsv").exists()


def test_bench_interactive_round_trip(
    benchmark, bench_genmapper, bench_universe, tmp_path
):
    clusters = [
        gene.unigene for gene in bench_universe.genes[:50] if gene.unigene
    ]
    view, __ = benchmark(
        run_figure6_workflow, bench_genmapper, clusters, tmp_path / "v.tsv"
    )
    assert len(view) > 0
    benchmark.extra_info["experiment"] = "Figure 6: interactive round trip"
    benchmark.extra_info["uploaded_accessions"] = len(clusters)


def test_bench_refinement_query(benchmark, bench_genmapper, bench_universe):
    clusters = [
        gene.unigene for gene in bench_universe.genes[:50] if gene.unigene
    ]

    def refine_flow():
        session = QuerySession(bench_genmapper)
        session.select_source("Unigene").upload_accessions(clusters)
        session.add_target("LocusLink").run()
        chosen = session.last_view().source_objects()[:10]
        session.refine(chosen).add_target("GO")
        return session.run()

    view = benchmark(refine_flow)
    assert len(view.source_objects()) <= 10
    benchmark.extra_info["experiment"] = "Figure 6: refinement query"
