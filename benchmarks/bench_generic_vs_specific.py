"""Ablation: the price (and payoff) of the generic GAM representation.

The paper claims the generic model supports "flexible, high performance
analysis" while classic warehouses buy raw speed with an inflexible
application-specific schema.  This ablation makes the trade measurable on
the identical data and the identical query (all GO annotations of
LocusLink loci):

* the star-schema warehouse answers from a dedicated bridge table — the
  fastest possible representation, but one that exists only because the
  schema anticipated the attribute;
* GenMapper answers through the generic OBJECT_REL join — somewhat
  slower per query, and the same machinery answers for *any* source and
  attribute, including ones integrated five minutes ago.

Shape expectation: the warehouse wins the single-attribute lookup by a
small constant factor; GenMapper's factor stays flat as attributes grow
while the warehouse needs one more table (schema change) per attribute.
"""

import pytest

from repro.baselines.warehouse import StarWarehouse
from repro.datagen.emit import emit_locuslink
from repro.operators.simple import map_
from repro.parsers.locuslink import LocusLinkParser


@pytest.fixture(scope="module")
def warehouse(bench_universe):
    dataset = LocusLinkParser().parse_text(emit_locuslink(bench_universe))
    wh = StarWarehouse()
    wh.design("LocusLink")
    wh.integrate(dataset, auto_evolve=True)
    return wh


def test_same_answers(bench_genmapper, warehouse):
    generic = map_(bench_genmapper.repository, "LocusLink", "GO").pair_set()
    specific = warehouse.annotations("LocusLink", "GO")
    assert generic == specific


def test_bench_generic_gam_query(benchmark, bench_genmapper):
    mapping = benchmark(
        map_, bench_genmapper.repository, "LocusLink", "GO"
    )
    benchmark.extra_info["experiment"] = "Ablation: generic GAM query"
    benchmark.extra_info["associations"] = len(mapping)


def test_bench_specific_schema_query(benchmark, warehouse):
    pairs = benchmark(warehouse.annotations, "LocusLink", "GO")
    benchmark.extra_info["experiment"] = "Ablation: specific-schema query"
    benchmark.extra_info["associations"] = len(pairs)


def test_bench_generic_unanticipated_attribute(benchmark, bench_genmapper):
    """The flexibility payoff: the generic query works for an attribute
    nobody designed for (Tissue annotations from UniGene) at the same
    cost profile."""
    mapping = benchmark(
        map_, bench_genmapper.repository, "Unigene", "Tissue"
    )
    benchmark.extra_info["experiment"] = (
        "Ablation: generic query, unanticipated attribute"
    )
    benchmark.extra_info["associations"] = len(mapping)
