"""Experiment F4 (paper Figure 4): genericity of the GAM data model.

Figure 4 is the schema itself; the measurable claim is that *every* source
— flat gene lists, taxonomies, vendor CSVs, protein entries — lands in the
same four tables with no schema change.  The shape assertions verify the
table census after a heterogeneous import; the bench measures per-source
import cost into an already-populated database (the paper's re-import
scenario).
"""

from repro.core.genmapper import GenMapper
from repro.gam.enums import RelType, SourceStructure
from repro.gam.schema import GAM_TABLES


def test_heterogeneous_sources_share_four_tables(bench_genmapper):
    db = bench_genmapper.db
    tables = {
        row[0]
        for row in db.execute(
            # sqlite_stat* are SQLite's internal ANALYZE bookkeeping, not
            # part of the schema the paper's genericity claim is about.
            "SELECT name FROM sqlite_master WHERE type = 'table'"
            " AND name NOT LIKE 'sqlite_%'"
        )
    }
    # Only the GAM tables plus the meta key-value store exist, no matter
    # how many sources were integrated.
    assert tables == set(GAM_TABLES) | {"meta"}


def test_every_rel_family_represented(bench_genmapper):
    repo = bench_genmapper.repository
    present = {rel.type for rel in repo.find_source_rels()}
    assert RelType.FACT in present
    assert RelType.IS_A in present
    assert RelType.CONTAINS in present


def test_network_and_flat_sources_coexist(bench_genmapper):
    structures = {
        source.structure for source in bench_genmapper.sources()
    }
    assert structures == {SourceStructure.FLAT, SourceStructure.NETWORK}


def test_bench_incremental_source_import(benchmark, bench_universe_dir):
    """Import one more source into an already-populated database."""
    gm = GenMapper()
    gm.integrate_directory(bench_universe_dir)
    vendor_file = bench_universe_dir / "netaffx.csv"

    def reimport():
        return gm.integrate_file(vendor_file, source_name="NetAffx")

    report = benchmark(reimport)
    # Duplicate elimination: nothing new on re-import.
    assert report.new_objects == 0
    benchmark.extra_info["experiment"] = "Figure 4: re-import (dedup) cost"
    gm.close()


def test_bench_fresh_source_import(benchmark, bench_universe_dir):
    """Import a brand-new source (fresh DB each round)."""
    locuslink = bench_universe_dir / "locuslink.txt"

    def fresh_import():
        with GenMapper() as gm:
            return gm.integrate_file(locuslink, source_name="LocusLink")

    report = benchmark.pedantic(fresh_import, rounds=5, iterations=1)
    assert report.new_objects > 0
    benchmark.extra_info["experiment"] = "Figure 4: fresh import cost"
