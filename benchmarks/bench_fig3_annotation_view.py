"""Experiment F3 (paper Figure 3): the annotation view for LocusLink genes.

Figure 3 shows a tabular view of LocusLink loci with Hugo, GO, Location
and OMIM attributes.  The shape assertions check the regenerated view has
exactly that structure and the ground-truth annotations per gene; the
bench sweeps the number of annotated loci.
"""

import pytest


def figure3_view(genmapper, loci):
    return genmapper.generate_view(
        "LocusLink",
        ["Hugo", "GO", "Location", "OMIM"],
        source_objects=loci,
        combine="OR",
    )


def test_figure3_view_shape(bench_genmapper, bench_universe):
    genes = bench_universe.genes[:10]
    view = figure3_view(bench_genmapper, [gene.locus for gene in genes])
    assert view.columns == ("LocusLink", "Hugo", "GO", "Location", "OMIM")
    for gene in genes:
        profile = view.annotation_profile(gene.locus)
        assert profile["Hugo"] == [gene.symbol]
        assert profile["GO"] == sorted(gene.go_terms)
        assert profile["Location"] == [gene.location]

    rendered = view.render()
    assert rendered.splitlines()[0].startswith("LocusLink")


@pytest.mark.parametrize("n_loci", [10, 100, 500])
def test_bench_figure3_view(benchmark, bench_genmapper, bench_universe, n_loci):
    loci = [gene.locus for gene in bench_universe.genes[:n_loci]]
    view = benchmark(figure3_view, bench_genmapper, loci)
    assert set(view.source_objects()) == set(loci)
    benchmark.extra_info["experiment"] = f"Figure 3: view over {n_loci} loci"
    benchmark.extra_info["rows"] = len(view)
