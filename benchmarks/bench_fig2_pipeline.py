"""Experiment F2 (paper Figure 2): the two-phase architecture.

Measures the full Data Import phase (parse + import of all ten sources)
and the View Generation phase (Compose + GenerateView) separately, the
split Figure 2 draws.
"""

from repro.core.genmapper import GenMapper


def test_bench_data_import_phase(benchmark, bench_universe_dir):
    def import_everything():
        with GenMapper() as gm:
            reports = gm.integrate_directory(bench_universe_dir)
            return gm.stats(), reports

    (stats, reports) = benchmark.pedantic(
        import_everything, rounds=3, iterations=1
    )
    assert stats["sources"] >= 15
    assert len(reports) == 11
    benchmark.extra_info["experiment"] = "Figure 2: data import phase"
    benchmark.extra_info["objects"] = stats["objects"]
    benchmark.extra_info["associations"] = stats["associations"]


def test_bench_view_generation_phase(benchmark, bench_genmapper):
    def generate():
        return bench_genmapper.generate_view(
            "LocusLink", ["Hugo", "GO", "Location", "OMIM"], combine="OR"
        )

    view = benchmark(generate)
    assert len(view) > 0
    benchmark.extra_info["experiment"] = "Figure 2: view generation phase"
    benchmark.extra_info["rows"] = len(view)


def test_bench_end_to_end(benchmark, bench_universe_dir):
    """The whole Figure 2 flow: import then annotate."""

    def pipeline():
        with GenMapper() as gm:
            gm.integrate_directory(bench_universe_dir)
            return gm.generate_view(
                "NetAffx", ["Unigene", "GO"], combine="OR"
            )

    view = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert len(view) > 0
    benchmark.extra_info["experiment"] = "Figure 2: end to end"
