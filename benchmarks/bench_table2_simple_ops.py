"""Experiment T2 (paper Table 2): the simple GAM operations.

Verifies the Table 2 examples verbatim, then measures each operation at
the benchmark-universe scale (Map hits the database; the others operate on
the loaded mapping, matching their ``SELECT ... FROM map`` definitions).
"""

from repro.operators.mapping import Mapping
from repro.operators.simple import domain, map_, range_, restrict_domain, restrict_range


def test_table2_examples_verbatim():
    """map = Map(S, T) = {s1<->t1, s2<->t2}; Domain/Range/Restrict as shown."""
    mapping = Mapping.build("S", "T", [("s1", "t1"), ("s2", "t2")])
    assert domain(mapping) == {"s1", "s2"}
    assert range_(mapping) == {"t1", "t2"}
    assert restrict_domain(mapping, {"s1"}).pair_set() == {("s1", "t1")}
    assert restrict_range(mapping, {"t2"}).pair_set() == {("s2", "t2")}


def test_bench_map(benchmark, bench_genmapper):
    repo = bench_genmapper.repository
    mapping = benchmark(map_, repo, "LocusLink", "GO")
    assert len(mapping) > 0
    benchmark.extra_info["experiment"] = "Table 2: Map(LocusLink, GO)"
    benchmark.extra_info["associations"] = len(mapping)


def test_bench_domain(benchmark, bench_genmapper):
    mapping = map_(bench_genmapper.repository, "LocusLink", "GO")
    result = benchmark(domain, mapping)
    assert result
    benchmark.extra_info["experiment"] = "Table 2: Domain"


def test_bench_range(benchmark, bench_genmapper):
    mapping = map_(bench_genmapper.repository, "LocusLink", "GO")
    result = benchmark(range_, mapping)
    assert result
    benchmark.extra_info["experiment"] = "Table 2: Range"


def test_bench_restrict_domain(benchmark, bench_genmapper, bench_universe):
    mapping = map_(bench_genmapper.repository, "LocusLink", "GO")
    subset = {gene.locus for gene in bench_universe.genes[:50]}
    restricted = benchmark(restrict_domain, mapping, subset)
    assert restricted.domain() <= subset
    benchmark.extra_info["experiment"] = "Table 2: RestrictDomain"


def test_bench_restrict_range(benchmark, bench_genmapper, bench_universe):
    mapping = map_(bench_genmapper.repository, "LocusLink", "GO")
    subset = set(bench_universe.go.accessions()[:40])
    restricted = benchmark(restrict_range, mapping, subset)
    assert restricted.range() <= subset
    benchmark.extra_info["experiment"] = "Table 2: RestrictRange"
