"""Ablation: threaded read throughput of the pooled storage layer.

The storage layer hands every thread its own SQLite connection from a
pool and keeps on-disk databases in WAL mode, so concurrent readers never
serialize behind a shared connection (see ``docs/storage.md``).  This
bench runs the same mixed read workload — annotation views, map lookups
and count queries — from N threads against two configurations of the
*same* on-disk database:

* ``pooled``: the default pool (one connection per worker thread);
* ``shared``: ``pool_size=1``, which degrades every thread to one shared
  connection — the pre-pool seed behaviour.

Shape expectation: with WAL and per-thread connections the threaded
workload completes faster than on the single shared connection, and the
gap widens with thread count.
"""

import threading

import pytest

from repro.core.genmapper import GenMapper

N_THREADS = 4
READS_PER_THREAD = 6


@pytest.fixture(scope="module")
def bench_db_path(bench_universe_dir, tmp_path_factory):
    """The benchmark universe integrated once into an on-disk database."""
    path = tmp_path_factory.mktemp("bench_concurrency") / "gam.db"
    gm = GenMapper(path)
    try:
        gm.integrate_directory(bench_universe_dir)
    finally:
        gm.close()
    return path


@pytest.fixture(
    scope="module",
    params=["pooled", "shared connection (pool_size=1)"],
    ids=["pooled", "shared"],
)
def configured_genmapper(request, bench_db_path):
    pool_size = None if request.param == "pooled" else 1
    gm = GenMapper(bench_db_path, pool_size=pool_size)
    yield request.param, gm
    gm.close()


def _mixed_reads(genmapper, worker_id):
    for i in range(READS_PER_THREAD):
        which = (worker_id + i) % 3
        if which == 0:
            genmapper.generate_view(
                "LocusLink", ["Hugo", "GO"], combine="AND", engine="sql"
            )
        elif which == 1:
            genmapper.map("LocusLink", "GO")
        else:
            genmapper.db.counts()


def _threaded_workload(genmapper):
    threads = [
        threading.Thread(target=_mixed_reads, args=(genmapper, n))
        for n in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_bench_threaded_reads(benchmark, configured_genmapper):
    name, genmapper = configured_genmapper
    benchmark(_threaded_workload, genmapper)
    benchmark.extra_info["experiment"] = (
        f"Concurrent read throughput ({name}): "
        f"{N_THREADS} threads x {READS_PER_THREAD} mixed reads, on-disk WAL"
    )
    benchmark.extra_info["threads"] = N_THREADS


# -- sharded engine: readers during an in-flight image flip ------------------
#
# The zero-downtime claim of docs/storage.md, measured: while one source
# is being re-imported through a copy-on-write image flip, readers of a
# *different* source (a different shard file) keep answering at their
# usual latency — they never queue behind the flip and never observe a
# partially rebuilt image.  Latency is compared as medians with a
# generous factor: on a single-core runner the flip's copy work steals
# CPU from readers, which is scheduler contention, not lock contention.

FLIP_READS = 60
MAX_FLIP_READ_SLOWDOWN = 5.0


def _sharded_two_source_db(tmp_path_factory):
    from repro.gam.repository import GamRepository
    from repro.gam.shards import ShardedGamDatabase

    directory = tmp_path_factory.mktemp("bench_flip")
    db = ShardedGamDatabase(str(directory / "g.db"))
    repo = GamRepository(db)
    for name in ("Flipping", "Steady"):
        repo.add_source(name)
        src = repo.get_source(name)
        repo.add_objects(
            src,
            [(f"{name.lower()}-{i}", f"text {i}", float(i)) for i in range(2000)],
        )
    return db, repo


def _read_latencies(db, source_id, n_reads):
    import time as _time

    latencies = []
    for i in range(n_reads):
        start = _time.perf_counter()
        db.execute_read(
            "SELECT count(*), max(accession) FROM object WHERE source_id = ?",
            (source_id,),
        ).fetchone()
        latencies.append(_time.perf_counter() - start)
    return latencies


def test_readers_unaffected_by_inflight_flip(tmp_path_factory):
    import statistics
    import threading as _threading

    db, repo = _sharded_two_source_db(tmp_path_factory)
    try:
        steady = repo.get_source("Steady")
        flipping = repo.get_source("Flipping")
        idle = _read_latencies(db, steady.source_id, FLIP_READS)

        stop = _threading.Event()
        flip_errors = []

        def flipper():
            try:
                while not stop.is_set():
                    with db.image_flip("Flipping"):
                        with db.write_scope("Flipping"), db.transaction():
                            db.execute(
                                "DELETE FROM object WHERE source_id = ?"
                                " AND accession LIKE 'refresh-%'",
                                (flipping.source_id,),
                            )
                            for i in range(50):
                                db.execute(
                                    "INSERT INTO object"
                                    " (source_id, accession)"
                                    " VALUES (?, ?)",
                                    (flipping.source_id, f"refresh-{i}"),
                                )
            except Exception as exc:  # pragma: no cover - failure detail
                flip_errors.append(exc)

        thread = _threading.Thread(target=flipper)
        thread.start()
        try:
            during = _read_latencies(db, steady.source_id, FLIP_READS)
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not flip_errors
        idle_median = statistics.median(idle)
        during_median = statistics.median(during)
        slowdown = during_median / idle_median if idle_median else 1.0
        assert slowdown <= MAX_FLIP_READ_SLOWDOWN, (
            f"steady-shard read latency {slowdown:.1f}x worse during an"
            f" in-flight flip (idle {idle_median * 1e6:.0f}us,"
            f" during {during_median * 1e6:.0f}us)"
        )
    finally:
        db.close()
