"""Ablation: threaded read throughput of the pooled storage layer.

The storage layer hands every thread its own SQLite connection from a
pool and keeps on-disk databases in WAL mode, so concurrent readers never
serialize behind a shared connection (see ``docs/storage.md``).  This
bench runs the same mixed read workload — annotation views, map lookups
and count queries — from N threads against two configurations of the
*same* on-disk database:

* ``pooled``: the default pool (one connection per worker thread);
* ``shared``: ``pool_size=1``, which degrades every thread to one shared
  connection — the pre-pool seed behaviour.

Shape expectation: with WAL and per-thread connections the threaded
workload completes faster than on the single shared connection, and the
gap widens with thread count.
"""

import threading

import pytest

from repro.core.genmapper import GenMapper

N_THREADS = 4
READS_PER_THREAD = 6


@pytest.fixture(scope="module")
def bench_db_path(bench_universe_dir, tmp_path_factory):
    """The benchmark universe integrated once into an on-disk database."""
    path = tmp_path_factory.mktemp("bench_concurrency") / "gam.db"
    gm = GenMapper(path)
    try:
        gm.integrate_directory(bench_universe_dir)
    finally:
        gm.close()
    return path


@pytest.fixture(
    scope="module",
    params=["pooled", "shared connection (pool_size=1)"],
    ids=["pooled", "shared"],
)
def configured_genmapper(request, bench_db_path):
    pool_size = None if request.param == "pooled" else 1
    gm = GenMapper(bench_db_path, pool_size=pool_size)
    yield request.param, gm
    gm.close()


def _mixed_reads(genmapper, worker_id):
    for i in range(READS_PER_THREAD):
        which = (worker_id + i) % 3
        if which == 0:
            genmapper.generate_view(
                "LocusLink", ["Hugo", "GO"], combine="AND", engine="sql"
            )
        elif which == 1:
            genmapper.map("LocusLink", "GO")
        else:
            genmapper.db.counts()


def _threaded_workload(genmapper):
    threads = [
        threading.Thread(target=_mixed_reads, args=(genmapper, n))
        for n in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_bench_threaded_reads(benchmark, configured_genmapper):
    name, genmapper = configured_genmapper
    benchmark(_threaded_workload, genmapper)
    benchmark.extra_info["experiment"] = (
        f"Concurrent read throughput ({name}): "
        f"{N_THREADS} threads x {READS_PER_THREAD} mixed reads, on-disk WAL"
    )
    benchmark.extra_info["threads"] = N_THREADS
