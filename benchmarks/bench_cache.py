"""Experiment: the query acceleration layer (docs/performance.md).

Two claims are measured and enforced here:

1. **Warm cache wins big** — a warm ``Map``/``Compose``/``GenerateView``
   call served from the generation-aware mapping cache must be at least
   5x faster than the cold database load (in practice it is orders of
   magnitude: a dict probe versus a multi-join load).
2. **SQL pushdown beats the Python fold** — composing a multi-hop path
   as one grouped aggregation inside SQLite must not lose to loading
   every leg and joining in Python dicts.

The bench bodies run through pytest-benchmark so CI snapshots land in the
combined ``BENCH_*.json`` artifact next to ``bench_compose.py``'s numbers.
"""

from __future__ import annotations

import time

import pytest

from repro.core.genmapper import GenMapper
from repro.operators.compose import compose

#: The multi-hop composition path of the pushdown experiment.
PUSHDOWN_PATH = ["NetAffx", "Unigene", "LocusLink", "GO"]

#: Minimum warm/cold speedup the cache must deliver (conservative: the
#: observed ratio is in the hundreds).
MIN_WARM_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def nocache_genmapper(bench_universe_dir):
    """The benchmark universe with the mapping cache switched off —
    every call pays the full load, like the pre-cache seed."""
    gm = GenMapper(enable_cache=False)
    gm.integrate_directory(bench_universe_dir)
    yield gm
    gm.close()


@pytest.fixture(scope="module")
def cached_genmapper(bench_universe_dir):
    """The benchmark universe with the cache force-enabled, so the warm
    benches hold even when the suite runs under ``REPRO_CACHE=off``."""
    gm = GenMapper(enable_cache=True)
    gm.integrate_directory(bench_universe_dir)
    yield gm
    gm.close()


def _best_of(fn, repetitions: int = 7) -> float:
    best = float("inf")
    for __ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- claim 1: warm cache speedup ------------------------------------------


def test_warm_map_speedup(cached_genmapper, nocache_genmapper):
    cold = _best_of(lambda: nocache_genmapper.map("NetAffx", "GO"))
    cached_genmapper.map("NetAffx", "GO")  # prime
    warm = _best_of(lambda: cached_genmapper.map("NetAffx", "GO"), 20)
    assert cold / warm >= MIN_WARM_SPEEDUP


def test_warm_compose_speedup(cached_genmapper, nocache_genmapper):
    cold = _best_of(lambda: nocache_genmapper.compose(PUSHDOWN_PATH))
    cached_genmapper.compose(PUSHDOWN_PATH)  # prime
    warm = _best_of(lambda: cached_genmapper.compose(PUSHDOWN_PATH), 20)
    assert cold / warm >= MIN_WARM_SPEEDUP


def test_warm_view_speedup(cached_genmapper, nocache_genmapper):
    targets = ["LocusLink", "GO"]
    cold = _best_of(
        lambda: nocache_genmapper.generate_view(
            "NetAffx", targets, combine="OR"
        ),
        3,
    )
    cached_genmapper.generate_view("NetAffx", targets, combine="OR")  # prime
    warm = _best_of(
        lambda: cached_genmapper.generate_view("NetAffx", targets, combine="OR"),
        10,
    )
    assert cold / warm >= MIN_WARM_SPEEDUP


def test_bench_map_cold(benchmark, nocache_genmapper):
    mapping = benchmark(nocache_genmapper.map, "NetAffx", "GO")
    benchmark.extra_info["experiment"] = "Cache: Map cold (cache off)"
    benchmark.extra_info["associations"] = len(mapping)


def test_bench_map_warm(benchmark, cached_genmapper):
    cached_genmapper.map("NetAffx", "GO")
    mapping = benchmark(cached_genmapper.map, "NetAffx", "GO")
    benchmark.extra_info["experiment"] = "Cache: Map warm (generation hit)"
    benchmark.extra_info["associations"] = len(mapping)
    stats = cached_genmapper.cache_stats()
    benchmark.extra_info["cache_hit_ratio"] = stats["hit_ratio"]


def test_bench_view_warm(benchmark, cached_genmapper):
    targets = ["LocusLink", "GO"]
    cached_genmapper.generate_view("NetAffx", targets, combine="OR")
    view = benchmark(
        cached_genmapper.generate_view, "NetAffx", targets, combine="OR"
    )
    benchmark.extra_info["experiment"] = "Cache: GenerateView warm"
    benchmark.extra_info["rows"] = len(view)


# -- claim 2: SQL pushdown vs Python fold ----------------------------------


def test_sql_pushdown_beats_python_fold(cached_genmapper):
    repository = cached_genmapper.repository
    sql = _best_of(lambda: compose(repository, PUSHDOWN_PATH, engine="sql"))
    memory = _best_of(
        lambda: compose(repository, PUSHDOWN_PATH, engine="memory")
    )
    assert sql < memory


def test_pushdown_and_fold_agree(cached_genmapper):
    repository = cached_genmapper.repository
    sql = compose(repository, PUSHDOWN_PATH, engine="sql")
    memory = compose(repository, PUSHDOWN_PATH, engine="memory")
    assert sql.pair_set() == memory.pair_set()


@pytest.mark.parametrize("engine", ["sql", "memory"])
def test_bench_compose_engine(benchmark, cached_genmapper, engine):
    repository = cached_genmapper.repository
    mapping = benchmark(compose, repository, PUSHDOWN_PATH, engine=engine)
    benchmark.extra_info["experiment"] = f"Compose pushdown: engine={engine}"
    benchmark.extra_info["path"] = " -> ".join(PUSHDOWN_PATH)
    benchmark.extra_info["associations"] = len(mapping)


# -- invalidation overhead -------------------------------------------------


def test_bench_generation_probe(benchmark, cached_genmapper):
    """The per-lookup cost of the generation check (PRAGMA data_version)
    — the price every cached call pays for write safety."""
    benchmark(cached_genmapper.db.data_generation)
    benchmark.extra_info["experiment"] = "Cache: generation probe overhead"


# -- scoped invalidation under a mixed read/write workload ------------------

#: Minimum warm hit-rate the untouched pairs must keep while another
#: source is being re-imported (pre-vector, every write nuked the whole
#: cache and this would be ~0).
MIN_MIXED_HIT_RATE = 0.9


def test_mixed_workload_untouched_hit_rate(cached_genmapper):
    """Re-importing one source must not cool warm entries of untouched
    source pairs: reads of other mappings keep hitting while writes land.

    This is the generation-vector payoff (docs/performance.md): before
    scoped invalidation every committed write bumped the one global
    generation and the first read of *any* key afterwards reloaded.
    """
    gm = cached_genmapper
    # Pairs disjoint from the re-imported mapping's endpoint sources
    # (NetAffx and Unigene) — these must stay warm throughout.
    untouched_pairs = [
        ("LocusLink", "GO"),
        ("LocusLink", "Hugo"),
        ("LocusLink", "Location"),
    ]
    for pair in untouched_pairs:
        gm.map(*pair)  # prime
    rel = gm.repository.ensure_source_rel("NetAffx", "Unigene", "FACT")
    probes = [assoc for assoc in gm.map("NetAffx", "Unigene")][:20]

    before = gm.cache_stats()
    # Interleave: each write batch simulates one chunk of a NetAffx
    # re-import; between chunks, readers keep querying untouched pairs.
    for round_number in range(10):
        gm.repository.add_associations(
            rel,
            [
                (
                    assoc.source_accession,
                    assoc.target_accession,
                    min(1.0, assoc.evidence + round_number * 1e-6),
                )
                for assoc in probes
            ],
        )
        for pair in untouched_pairs:
            gm.map(*pair)
    after = gm.cache_stats()

    reads = 10 * len(untouched_pairs)
    hits = after["hits"] - before["hits"]
    hit_rate = hits / reads
    assert hit_rate >= MIN_MIXED_HIT_RATE, (
        f"untouched-pair hit rate {hit_rate:.2f} under mixed workload"
        f" (expected >= {MIN_MIXED_HIT_RATE}); scoped invalidation broken"
    )
    # And the touched pair itself must NOT be served stale.
    refreshed = gm.map("NetAffx", "Unigene")
    assert len(refreshed) >= len(probes)
