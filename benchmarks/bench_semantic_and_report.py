"""Extension benches: semantic similarity and the profiling report.

Both build directly on GenMapper-stored knowledge: the semantic index uses
the GO taxonomy plus the LocusLink ↔ GO mapping; the report assembles the
full Section 5.2 study artifact.  Shape checks: genes annotated with the
same GO term are more functionally similar than random pairs, and the
report renders all four study sections.
"""

import pytest

from repro.analysis.profiling import FunctionalProfiler
from repro.analysis.report import render_report
from repro.taxonomy.semantic import SemanticIndex


@pytest.fixture(scope="module")
def semantic_index(bench_genmapper):
    taxonomy = bench_genmapper.taxonomy("GO")
    annotation = bench_genmapper.map("LocusLink", "GO")
    return SemanticIndex(taxonomy, annotation)


def test_shared_term_genes_more_similar_than_random(
    semantic_index, bench_universe
):
    by_term: dict[str, list[str]] = {}
    for gene in bench_universe.genes:
        for term in gene.go_terms:
            by_term.setdefault(term, []).append(gene.locus)
    shared_pairs = [
        (genes[0], genes[1])
        for genes in by_term.values()
        if len(genes) >= 2
    ][:30]
    disjoint_pairs = []
    genes = bench_universe.genes
    for i in range(0, len(genes) - 1, 7):
        a, b = genes[i], genes[i + 1]
        if not set(a.go_terms) & set(b.go_terms):
            disjoint_pairs.append((a.locus, b.locus))
        if len(disjoint_pairs) >= 30:
            break
    shared_mean = sum(
        semantic_index.gene_similarity(a, b) for a, b in shared_pairs
    ) / len(shared_pairs)
    disjoint_mean = sum(
        semantic_index.gene_similarity(a, b) for a, b in disjoint_pairs
    ) / len(disjoint_pairs)
    assert shared_mean > disjoint_mean + 0.2


def test_bench_semantic_index_build(benchmark, bench_genmapper):
    taxonomy = bench_genmapper.taxonomy("GO")
    annotation = bench_genmapper.map("LocusLink", "GO")
    index = benchmark(SemanticIndex, taxonomy, annotation)
    assert index.corpus_size > 0
    benchmark.extra_info["experiment"] = "Semantic: index build"
    benchmark.extra_info["corpus"] = index.corpus_size


def test_bench_gene_similarity_queries(benchmark, semantic_index,
                                       bench_universe):
    loci = [gene.locus for gene in bench_universe.genes[:30]]

    def pairwise():
        return [
            semantic_index.gene_similarity(a, b)
            for a in loci[:10]
            for b in loci[10:20]
        ]

    scores = benchmark(pairwise)
    assert len(scores) == 100
    benchmark.extra_info["experiment"] = "Semantic: 100 gene-pair queries"


def test_bench_most_similar_genes(benchmark, semantic_index, bench_universe):
    locus = bench_universe.genes[0].locus
    ranking = benchmark(semantic_index.most_similar_genes, locus, None, 5)
    assert len(ranking) == 5
    benchmark.extra_info["experiment"] = "Semantic: nearest-gene search"


def test_bench_render_full_report(benchmark, bench_genmapper, bench_study,
                                  bench_universe):
    profiler = FunctionalProfiler(bench_genmapper)
    report = profiler.run(bench_study)
    annotation = profiler.gene_annotation()
    taxonomy = bench_genmapper.taxonomy("GO")
    names = {t.accession: t.name for t in bench_universe.go.terms}

    text = benchmark(
        render_report, report, annotation, taxonomy, names, 0.10
    )
    for section in ("Expression summary", "Enriched terms",
                    "Conserved vs changed"):
        assert section in text
    benchmark.extra_info["experiment"] = "Report: full study document"
