"""Experiment A-compose: deriving new mappings by composition.

The paper's key derived-mapping example is Unigene ↔ GO from
Unigene ↔ LocusLink and LocusLink ↔ GO, with the caveat that "Compose may
lead to wrong associations when the transitivity assumption does not
hold".  This bench measures composition cost versus path length and checks
correctness against the universe's ground truth: over cross-reference
paths whose transitivity *does* hold, precision stays 1.0 while recall
decays with every hop (each hop loses the objects whose link is
unpublished) — quantifying why the paper composes along the shortest
available path.
"""

import pytest

PATHS = {
    2: ["NetAffx", "LocusLink"],
    3: ["NetAffx", "LocusLink", "GO"],
    4: ["NetAffx", "Unigene", "LocusLink", "GO"],
    5: ["NetAffx", "Unigene", "LocusLink", "Ensembl", "Hugo"],
}


def precision_recall(derived, truth):
    if not derived:
        return 0.0, 0.0
    overlap = len(derived & truth)
    return overlap / len(derived), overlap / len(truth)


def test_composition_preserves_precision(bench_genmapper, bench_universe):
    truth = bench_universe.true_probe_to_go()
    short = bench_genmapper.compose(PATHS[3]).pair_set()
    long = bench_genmapper.compose(PATHS[4]).pair_set()
    precision_short, recall_short = precision_recall(short, truth)
    precision_long, recall_long = precision_recall(long, truth)
    assert precision_short == 1.0
    assert precision_long == 1.0
    # The longer path composes through one more incomplete mapping and
    # must not recover *more* than the shorter one.
    assert recall_long <= recall_short
    assert recall_short > 0.7


def test_derived_unigene_go_matches_paper_example(bench_genmapper):
    mapping = bench_genmapper.compose(["Unigene", "LocusLink", "GO"])
    assert mapping.source == "Unigene"
    assert mapping.target == "GO"
    assert len(mapping) > 0


@pytest.mark.parametrize("length", sorted(PATHS))
def test_bench_compose_by_path_length(benchmark, bench_genmapper, length):
    path = PATHS[length]
    mapping = benchmark(bench_genmapper.compose, path)
    benchmark.extra_info["experiment"] = f"Compose: path length {length}"
    benchmark.extra_info["path"] = " -> ".join(path)
    benchmark.extra_info["associations"] = len(mapping)


def test_bench_compose_with_min_combiner(benchmark, bench_genmapper):
    from repro.operators.compose import min_evidence

    mapping = benchmark(
        bench_genmapper.compose, PATHS[4], min_evidence
    )
    benchmark.extra_info["experiment"] = "Compose: min-evidence combiner"
    benchmark.extra_info["associations"] = len(mapping)
