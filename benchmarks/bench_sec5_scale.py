"""Experiment S5-scale (paper Section 5 deployment statistics).

The deployed GenMapper held ~2 million objects from 60+ sources with ~5
million associations in 500+ mappings.  This bench builds a scaled-down
universe (scale factor recorded in ``extra_info``), checks the *ratios*
match the deployment shape (associations ≈ 2-3x objects, tens of
mappings), and measures import throughput and query latency at that scale.
"""

import pytest

from repro.core.genmapper import GenMapper
from repro.datagen.emit import write_universe
from repro.datagen.universe import UniverseConfig, generate_universe

#: Genes in the scale universe.  At 2000 genes the database holds ~15k
#: objects; the paper's 2M objects correspond to ~250k genes — raise this
#: to approach the deployment (import stays linear).
SCALE_GENES = 2000


@pytest.fixture(scope="module")
def scale_dir(tmp_path_factory):
    universe = generate_universe(
        UniverseConfig(seed=1337, n_genes=SCALE_GENES, n_go_terms=400)
    )
    directory = tmp_path_factory.mktemp("scale_universe")
    write_universe(universe, directory)
    return directory


@pytest.fixture(scope="module")
def scale_genmapper(scale_dir):
    gm = GenMapper()
    gm.integrate_directory(scale_dir)
    yield gm
    gm.close()


def test_deployment_shape(scale_genmapper):
    stats = scale_genmapper.stats()
    # Paper: 2M objects / 60 sources / 5M associations / 500 mappings.
    # The ratios that characterize the deployment:
    assert stats["associations"] / stats["objects"] > 1.5
    assert stats["sources"] >= 15
    assert stats["mappings"] >= 25
    assert scale_genmapper.check_integrity().ok


def test_bench_bulk_import_throughput(benchmark, scale_dir):
    def import_all():
        with GenMapper() as gm:
            gm.integrate_directory(scale_dir)
            return gm.stats()

    stats = benchmark.pedantic(import_all, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "Section 5: bulk import"
    benchmark.extra_info["objects"] = stats["objects"]
    benchmark.extra_info["associations"] = stats["associations"]
    benchmark.extra_info["scale_factor_vs_paper"] = round(
        2_000_000 / stats["objects"]
    )


def test_bench_map_latency_at_scale(benchmark, scale_genmapper):
    mapping = benchmark(scale_genmapper.map, "LocusLink", "GO")
    benchmark.extra_info["experiment"] = "Section 5: Map at scale"
    benchmark.extra_info["associations"] = len(mapping)


def test_bench_view_latency_at_scale(benchmark, scale_genmapper):
    view = benchmark(
        scale_genmapper.generate_view,
        "LocusLink",
        ["Hugo", "GO", "Location", "OMIM"],
        combine="OR",
    )
    benchmark.extra_info["experiment"] = "Section 5: GenerateView at scale"
    benchmark.extra_info["rows"] = len(view)


def test_bench_persistent_database(benchmark, scale_dir, tmp_path_factory):
    """Import into an on-disk database (the deployment configuration)."""
    base = tmp_path_factory.mktemp("disk_db")
    counter = iter(range(10_000))

    def import_to_disk():
        path = base / f"gam_{next(counter)}.db"
        with GenMapper(path) as gm:
            gm.integrate_directory(scale_dir)
            return gm.stats()

    stats = benchmark.pedantic(import_to_disk, rounds=3, iterations=1)
    assert stats["objects"] > 0
    benchmark.extra_info["experiment"] = "Section 5: on-disk import"
