"""Ablation: Compose under violated transitivity (noise sweep).

Paper Section 4.2's caveat — "Compose may lead to wrong associations when
the transitivity assumption does not hold" — and its future-work note on
reduced-evidence mappings, quantified:

* precision of a 2-hop composition as the first leg's rewiring rate grows
  (expected: precision ≈ 1 - rate),
* the evidence-filter countermeasure: rewired associations carry reduced
  evidence, so filtering the composed mapping by evidence restores
  precision at a recall cost.
"""

import numpy as np
import pytest

from repro.datagen.noise import rewire
from repro.operators.compose import compose_pair
from repro.operators.mapping import Mapping

N = 1000


@pytest.fixture(scope="module")
def legs():
    ab = Mapping.build("A", "B", [(f"a{i}", f"b{i}") for i in range(N)])
    bc = Mapping.build("B", "C", [(f"b{i}", f"c{i}") for i in range(N)])
    truth = {(f"a{i}", f"c{i}") for i in range(N)}
    return ab, bc, truth


def _precision(composed, truth):
    if not len(composed):
        return 0.0
    return len(composed.pair_set() & truth) / len(composed)


@pytest.mark.parametrize("rate", [0.0, 0.1, 0.3, 0.5])
def test_precision_tracks_noise_rate(legs, rate):
    ab, bc, truth = legs
    rng = np.random.default_rng(11)
    noisy_ab, __ = rewire(ab, rate, rng)
    composed = compose_pair(noisy_ab, bc)
    precision = _precision(composed, truth)
    assert abs(precision - (1.0 - rate)) < 0.07


def test_evidence_filter_restores_precision(legs):
    ab, bc, truth = legs
    rng = np.random.default_rng(13)
    noisy_ab, __ = rewire(ab, 0.3, rng, evidence=0.5)
    composed = compose_pair(noisy_ab, bc)
    filtered = composed.filter_evidence(0.9)
    assert _precision(filtered, truth) == 1.0
    # The cost: recall drops to the clean fraction.
    recall = len(filtered.pair_set() & truth) / len(truth)
    assert 0.6 <= recall <= 0.8


@pytest.mark.parametrize("rate", [0.0, 0.3])
def test_bench_compose_under_noise(benchmark, legs, rate):
    ab, bc, truth = legs
    rng = np.random.default_rng(17)
    noisy_ab, __ = rewire(ab, rate, rng)

    composed = benchmark(compose_pair, noisy_ab, bc)
    benchmark.extra_info["experiment"] = f"Compose noise ablation: rate={rate}"
    benchmark.extra_info["precision"] = round(_precision(composed, truth), 3)


def test_bench_noise_injection(benchmark, legs):
    ab, __, __t = legs
    rng = np.random.default_rng(19)
    noisy, corrupted = benchmark(rewire, ab, 0.3, rng)
    assert corrupted
    benchmark.extra_info["experiment"] = "Noise injection (rewire 30%)"
