"""Experiment: the bulk-ingest fast path (docs/performance.md).

Two claims are measured and enforced here:

1. **The indexed ingest path is ≥3x faster end-to-end** on a ~100k-row
   multi-target import than the pre-PR path (full row-list scans per
   entity/target lookup, quadratic partition-entity detection, before/
   after ``COUNT(*)`` insert accounting, per-target accession→id
   reloads).  The legacy path is replicated verbatim below so the
   comparison stays honest as the production code evolves.
2. **Both paths produce byte-identical import reports** — same inserted
   object/association counts per target, same skipped rows, on the first
   import and on a dedup-only re-import (the golden comparison).

The bench bodies run through pytest-benchmark so CI snapshots land in the
``BENCH_pr4_import.json``-style artifact next to the other benches.
"""

from __future__ import annotations

import random
import time

from repro.eav.model import CONTAINS_TARGET, IS_A_TARGET, NAME_TARGET, EavRow
from repro.eav.store import EavDataset
from repro.gam.database import GamDatabase
from repro.gam.enums import RelType
from repro.gam.errors import GamIntegrityError
from repro.gam.records import Source
from repro.gam.repository import GamRepository
from repro.importer.importer import GamImporter, ImportReport

#: Minimum end-to-end speedup the indexed ingest path must deliver over
#: the replicated pre-PR path (observed: well above this floor; the
#: legacy partition check alone is O(entities × rows)).
MIN_IMPORT_SPEEDUP = 3.0

#: Shape of the benchmark dataset: ~100k rows across 8 annotation
#: targets, Name rows, an IS_A family layer and two CONTAINS partitions.
N_ENTITIES = 1000
N_TARGETS = 8
ROWS_PER_TARGET = 12
ACCESSION_POOL = 2000


def build_import_dataset(
    n_entities: int = N_ENTITIES,
    n_targets: int = N_TARGETS,
    rows_per_target: int = ROWS_PER_TARGET,
) -> EavDataset:
    """A deterministic multi-target EAV dataset of ~100k rows.

    Accessions are drawn with replacement from a bounded pool per target,
    so the importer's association/object dedup does real work; the last
    target carries reduced evidence (flips its mapping to Similarity);
    two CONTAINS partitions cover the entities and reference a few ghost
    members that must land in ``skipped_rows``.
    """
    rng = random.Random(20040315)
    dataset = EavDataset("BenchSource", release="bench-1")
    targets = [f"Ref{chr(ord('A') + i)}" for i in range(n_targets)]
    for index in range(n_entities):
        entity = f"E{index:05d}"
        dataset.append(EavRow(entity, NAME_TARGET, entity, text=f"entity {index}"))
        for t_index, target in enumerate(targets):
            reduced = t_index == n_targets - 1
            for __ in range(rows_per_target):
                accession = f"ACC_{target}_{rng.randrange(ACCESSION_POOL):05d}"
                dataset.append(
                    EavRow(
                        entity,
                        target,
                        accession,
                        evidence=0.8 if reduced else 1.0,
                    )
                )
        if index < 100:
            dataset.append(
                EavRow(entity, IS_A_TARGET, f"FAM_{index % 10:02d}")
            )
    for p_index in range(2):
        partition = f"BenchSource.P{p_index}"
        for index in range(p_index, n_entities, 2):
            dataset.append(EavRow(partition, CONTAINS_TARGET, f"E{index:05d}"))
        for ghost in range(5):
            dataset.append(
                EavRow(partition, CONTAINS_TARGET, f"GHOST_{p_index}_{ghost}")
            )
    return dataset


# -- the replicated pre-PR (seed) ingest path -------------------------------
#
# These subclasses restore, line for line, the code the fast path replaced:
# full row-list scans per lookup, the quadratic partition-entity check,
# COUNT(*)-delta insert accounting and per-target accession→id reloads.


def _scan_rows_for_target(dataset: EavDataset, target: str) -> list[EavRow]:
    return [row for row in dataset.rows if row.target == target]


def _scan_rows_for_entity(dataset: EavDataset, entity: str) -> list[EavRow]:
    return [row for row in dataset.rows if row.entity == entity]


class LegacyRepository(GamRepository):
    """``GamRepository`` with the seed's write accounting restored."""

    def add_objects(self, source, rows) -> int:
        src = self.get_source(source)
        normalized = []
        for row in rows:
            accession = str(row[0])
            text = row[1] if len(row) > 1 else None
            number = row[2] if len(row) > 2 else None
            normalized.append((src.source_id, accession, text, number))
        before = self._object_count(src.source_id)
        self.db.executemany(
            "INSERT INTO object (source_id, accession, text, number)"
            " VALUES (?, ?, ?, ?)"
            " ON CONFLICT (source_id, accession) DO UPDATE SET"
            "   text = coalesce(excluded.text, object.text),"
            "   number = coalesce(excluded.number, object.number)",
            normalized,
        )
        return self._object_count(src.source_id) - before

    def add_associations(self, rel, rows, strict: bool = True) -> int:
        ids1 = self.accession_to_id(rel.source1_id)
        ids2 = (
            ids1
            if rel.source2_id == rel.source1_id
            else self.accession_to_id(rel.source2_id)
        )
        resolved = []
        for row in rows:
            acc1, acc2 = str(row[0]), str(row[1])
            evidence = float(row[2]) if len(row) > 2 else 1.0
            id1 = ids1.get(acc1)
            id2 = ids2.get(acc2)
            if id1 is None or id2 is None:
                if strict:
                    missing = acc1 if id1 is None else acc2
                    raise GamIntegrityError(
                        f"association references unknown accession {missing!r}"
                        f" (source_rel {rel.src_rel_id})"
                    )
                continue
            resolved.append((rel.src_rel_id, id1, id2, evidence))
        before = self.count_associations(rel)
        self.db.executemany(
            "INSERT OR IGNORE INTO object_rel"
            " (src_rel_id, object1_id, object2_id, evidence) VALUES (?, ?, ?, ?)",
            resolved,
        )
        return self.count_associations(rel) - before

    def accessions_of(self, source) -> set[str]:
        src = self.get_source(source)
        rows = self.db.execute(
            "SELECT accession FROM object WHERE source_id = ?", (src.source_id,)
        ).fetchall()
        return {row[0] for row in rows}


class LegacyImporter(GamImporter):
    """``GamImporter`` with the seed's per-lookup row scans restored."""

    def _import_entities(self, source: Source, dataset: EavDataset) -> int:
        from repro.eav.model import NUMBER_TARGET

        texts: dict[str, str] = {}
        numbers: dict[str, float] = {}
        for row in dataset:
            if row.target == NAME_TARGET and row.text:
                texts.setdefault(row.entity, row.text)
            elif row.target == NUMBER_TARGET and row.number is not None:
                numbers.setdefault(row.entity, row.number)
        entity_rows = [
            (entity, texts.get(entity), numbers.get(entity))
            for entity in dataset.entities()
            if not self._is_partition_entity(entity, dataset)
        ]
        return self.repository.add_objects(source, entity_rows)

    @staticmethod
    def _is_partition_entity(entity: str, dataset: EavDataset) -> bool:
        return any(
            row.entity == entity and row.target == CONTAINS_TARGET
            for row in _scan_rows_for_entity(dataset, entity)
        ) and all(
            row.target == CONTAINS_TARGET
            for row in _scan_rows_for_entity(dataset, entity)
        )

    def _import_target(self, source, dataset, target):
        from repro.parsers.targets import target_info

        repo = self.repository
        rows = _scan_rows_for_target(dataset, target)
        info = target_info(target)
        if info.name.lower() == source.name.lower():
            target_source = source
        else:
            target_source = repo.add_source(
                info.name, content=info.content, structure=info.structure
            )
        object_rows: dict = {}
        for row in rows:
            existing = object_rows.get(row.accession)
            if existing is None or (existing[1] is None and row.text):
                object_rows[row.accession] = (row.accession, row.text, row.number)
        inserted_objects = repo.add_objects(target_source, object_rows.values())
        rel_type = info.rel_type
        if rel_type == RelType.FACT and any(row.evidence < 1.0 for row in rows):
            rel_type = RelType.SIMILARITY
        rel = repo.ensure_source_rel(source, target_source, rel_type)
        association_rows = [
            (row.entity, row.accession, row.evidence) for row in rows
        ]
        inserted_assocs = repo.add_associations(rel, association_rows, strict=True)
        return inserted_objects, inserted_assocs

    def _import_structure(self, source, dataset, new_associations):
        from collections import defaultdict

        from repro.gam.enums import SourceStructure

        repo = self.repository
        skipped = 0
        is_a_rows = _scan_rows_for_target(dataset, IS_A_TARGET)
        if is_a_rows:
            endpoints = {row.entity for row in is_a_rows}
            endpoints.update(row.accession for row in is_a_rows)
            repo.add_objects(source, [(accession,) for accession in sorted(endpoints)])
            rel = repo.ensure_source_rel(source, source, RelType.IS_A)
            new_associations[IS_A_TARGET] = repo.add_associations(
                rel, [(row.entity, row.accession) for row in is_a_rows]
            )
        contains_rows = _scan_rows_for_target(dataset, CONTAINS_TARGET)
        if contains_rows:
            by_partition: dict[str, list[str]] = defaultdict(list)
            for row in contains_rows:
                by_partition[row.entity].append(row.accession)
            for partition_name, members in sorted(by_partition.items()):
                partition = repo.add_source(
                    partition_name,
                    content=source.content,
                    structure=SourceStructure.NETWORK,
                )
                repo.add_objects(partition, [(member,) for member in members])
                known = repo.accessions_of(source)
                rel = repo.ensure_source_rel(source, partition, RelType.CONTAINS)
                member_rows = []
                for member in members:
                    if member not in known:
                        skipped += 1
                        continue
                    member_rows.append((member, member))
                new_associations[partition_name] = repo.add_associations(
                    rel, member_rows
                )
        return skipped


# -- harness ----------------------------------------------------------------


def _run_import(dataset: EavDataset, legacy: bool) -> tuple[ImportReport, ImportReport]:
    """Import ``dataset`` twice into a fresh in-memory database.

    Returns the first-import report and the dedup-only re-import report.
    """
    db = GamDatabase(":memory:")
    try:
        if legacy:
            importer = LegacyImporter(LegacyRepository(db))
        else:
            importer = GamImporter(GamRepository(db))
        first = importer.import_dataset(dataset)
        second = importer.import_dataset(dataset)
        return first, second
    finally:
        db.close()


def _report_key(report: ImportReport) -> tuple:
    """Everything an ImportReport says, as a comparable value."""
    return (
        report.source.name,
        report.source.release,
        report.new_objects,
        sorted(report.new_associations.items()),
        sorted(report.new_target_objects.items()),
        report.skipped_rows,
    )


def _best_of(fn, repetitions: int) -> float:
    best = float("inf")
    for __ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- claim 2: golden report comparison --------------------------------------


def test_reports_identical_between_paths():
    dataset = build_import_dataset(n_entities=60, rows_per_target=8)
    legacy_first, legacy_second = _run_import(dataset, legacy=True)
    fast_first, fast_second = _run_import(dataset, legacy=False)
    assert _report_key(fast_first) == _report_key(legacy_first)
    assert _report_key(fast_second) == _report_key(legacy_second)
    # The re-import must be pure dedup on both paths.
    assert fast_second.new_objects == 0
    assert fast_second.total_associations == 0
    assert fast_second.skipped_rows == fast_first.skipped_rows


def test_ghost_partition_members_are_skipped():
    dataset = build_import_dataset(n_entities=40, rows_per_target=4)
    report, __ = _run_import(dataset, legacy=False)
    assert report.skipped_rows == 10  # 5 ghosts per partition, 2 partitions


# -- claim 1: the asserted speedup gate -------------------------------------


def test_import_fast_path_speedup():
    dataset = build_import_dataset()
    dataset.rows_for_target(NAME_TARGET)  # build indexes outside the clock
    legacy = _best_of(lambda: _run_import(dataset, legacy=True), 1)
    fast = _best_of(lambda: _run_import(dataset, legacy=False), 3)
    assert legacy / fast >= MIN_IMPORT_SPEEDUP, (
        f"import speedup {legacy / fast:.1f}x below the"
        f" {MIN_IMPORT_SPEEDUP}x floor (legacy {legacy:.2f}s, fast {fast:.2f}s)"
    )


# -- pytest-benchmark snapshots ---------------------------------------------


def test_bench_import_fast(benchmark):
    dataset = build_import_dataset()
    result = benchmark.pedantic(
        _run_import, args=(dataset, False), rounds=3, iterations=1
    )
    benchmark.extra_info["experiment"] = "Ingest: indexed fast path (~100k rows)"
    benchmark.extra_info["rows"] = len(dataset)
    benchmark.extra_info["new_objects"] = result[0].new_objects
    benchmark.extra_info["new_associations"] = result[0].total_associations


def test_bench_import_legacy(benchmark):
    dataset = build_import_dataset()
    result = benchmark.pedantic(
        _run_import, args=(dataset, True), rounds=1, iterations=1
    )
    benchmark.extra_info["experiment"] = "Ingest: replicated pre-PR path (~100k rows)"
    benchmark.extra_info["rows"] = len(dataset)
    benchmark.extra_info["new_objects"] = result[0].new_objects
    benchmark.extra_info["new_associations"] = result[0].total_associations


def test_bench_import_parallel_directory(benchmark, bench_universe_dir):
    """Multi-source manifest ingest over the connection pool (workers=4)."""
    from repro.core.genmapper import GenMapper

    def _integrate() -> int:
        gm = GenMapper()
        try:
            reports = gm.integrate_directory(bench_universe_dir, workers=4)
            return sum(report.new_objects for report in reports)
        finally:
            gm.close()

    objects = benchmark.pedantic(_integrate, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = "Ingest: parallel manifest import (workers=4)"
    benchmark.extra_info["new_objects"] = objects
