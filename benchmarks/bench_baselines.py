"""Experiment A-baselines (paper Section 1, related work).

The paper positions GenMapper against two first-generation approaches:

* SRS/DBGET-style systems: per-source indexing with a uniform query
  interface but *no joins* — multi-source annotation profiles require the
  client to chase cross-references object by object;
* web-link navigation: useful interactively, but "does not support
  automated large-scale analysis".

Shape expectation: for an N-object multi-source annotation task GenMapper
runs one GenerateView, while the SRS client performs O(N x path) lookups
and the link-chasing client pays O(N x pages) simulated round trips —
GenMapper wins by a growing factor in N.
"""

import pytest

from repro.baselines.srs import SrsSystem
from repro.baselines.weblink import WebLinkNavigator
from repro.parsers.go_obo import GoOboParser
from repro.parsers.locuslink import LocusLinkParser
from repro.parsers.unigene import UnigeneParser


@pytest.fixture(scope="module")
def parsed_sources(bench_universe):
    from repro.datagen.emit import emit_go_obo, emit_locuslink, emit_unigene

    return {
        "LocusLink": LocusLinkParser().parse_text(emit_locuslink(bench_universe)),
        "Unigene": UnigeneParser().parse_text(emit_unigene(bench_universe)),
        "GO": GoOboParser().parse_text(emit_go_obo(bench_universe)),
    }


@pytest.fixture(scope="module")
def srs(parsed_sources):
    system = SrsSystem()
    for dataset in parsed_sources.values():
        system.load(dataset)
    return system


@pytest.fixture(scope="module")
def weblink(parsed_sources):
    navigator = WebLinkNavigator(fetch_latency=0.05)
    for dataset in parsed_sources.values():
        navigator.load(dataset)
    return navigator


@pytest.fixture(scope="module")
def task_clusters(bench_universe):
    """The task: GO annotations for 100 UniGene clusters."""
    return [g.unigene for g in bench_universe.genes if g.unigene][:100]


def genmapper_task(genmapper, clusters):
    return genmapper.generate_view(
        "Unigene", ["GO"], source_objects=clusters, combine="AND"
    )


def srs_task(srs, clusters):
    return srs.navigate(
        "Unigene", clusters, ["LocusLink", "LocusLink", "GO"]
    )


def test_all_systems_agree_on_annotations(
    bench_genmapper, srs, task_clusters
):
    view = genmapper_task(bench_genmapper, task_clusters)
    via_srs = srs_task(srs, task_clusters)
    for cluster in task_clusters:
        gm_terms = set(view.annotation_profile(cluster)["GO"])
        assert gm_terms == via_srs[cluster]


def test_srs_pays_per_object_lookups(srs, task_clusters):
    srs.reset_counters()
    srs_task(srs, task_clusters)
    # At least one lookup per object per hop; GenMapper runs one view.
    assert srs.lookups >= 2 * len(task_clusters)


def test_weblink_cost_is_prohibitive(weblink, task_clusters):
    __, cost = weblink.profile_cost(
        "Unigene", task_clusters[:20], "GO", max_hops=2
    )
    # 20 objects already cost hundreds of simulated round trips.
    assert cost.page_fetches >= 20
    assert cost.simulated_seconds == pytest.approx(
        cost.page_fetches * 0.05
    )


def test_bench_genmapper_view(benchmark, bench_genmapper, task_clusters):
    view = benchmark(genmapper_task, bench_genmapper, task_clusters)
    assert len(view) > 0
    benchmark.extra_info["experiment"] = "Baselines: GenMapper GenerateView"
    benchmark.extra_info["objects"] = len(task_clusters)


def test_bench_srs_navigation(benchmark, srs, task_clusters):
    results = benchmark(srs_task, srs, task_clusters)
    assert results
    benchmark.extra_info["experiment"] = "Baselines: SRS per-object navigation"
    benchmark.extra_info["objects"] = len(task_clusters)


def test_bench_weblink_navigation(benchmark, weblink, task_clusters):
    def task():
        return weblink.profile_cost(
            "Unigene", task_clusters[:20], "GO", max_hops=2
        )

    __, cost = benchmark(task)
    benchmark.extra_info["experiment"] = "Baselines: web-link chasing (20 objects)"
    benchmark.extra_info["page_fetches"] = cost.page_fetches
    benchmark.extra_info["simulated_seconds"] = round(cost.simulated_seconds, 2)
