"""Experiment A-matching: computing Similarity mappings by attribute
matching (paper Section 3: similarity mappings are "determined ... by an
attribute matching algorithm").

Shape expectations on the benchmark universe:

* matching LocusLink names against UniGene cluster titles recovers the
  curated LocusLink ↔ UniGene mapping with high F1 — gene and cluster
  share their name by construction, but names collide across genes, so
  precision < 1 at fuzzy thresholds;
* token blocking keeps matching fast enough to run at source scale.
"""

import pytest

from repro.operators.matching import (
    MatchConfig,
    evaluate_matching,
    match_attributes,
    normalized_matcher,
    token_jaccard_matcher,
)


@pytest.fixture(scope="module")
def truth(bench_universe):
    return sorted(bench_universe.true_locus_to_unigene())


def test_exact_name_matching_quality(bench_genmapper, truth):
    mapping = match_attributes(
        bench_genmapper.repository, "LocusLink", "Unigene",
        MatchConfig(matcher=normalized_matcher, threshold=1.0, top_k=0),
    )
    scores = evaluate_matching(mapping, truth)
    # Clusters carry the gene's name verbatim; recall is bounded only by
    # UniGene coverage gaps already reflected in the truth set, so it is
    # near-perfect.  Duplicate names across genes cost some precision.
    assert scores["recall"] >= 0.95
    assert scores["precision"] >= 0.8
    assert scores["f1"] >= 0.9


def test_fuzzy_threshold_trades_precision_for_recall(bench_genmapper, truth):
    strict = match_attributes(
        bench_genmapper.repository, "LocusLink", "Unigene",
        MatchConfig(matcher=token_jaccard_matcher, threshold=0.99, top_k=0),
    )
    loose = match_attributes(
        bench_genmapper.repository, "LocusLink", "Unigene",
        MatchConfig(matcher=token_jaccard_matcher, threshold=0.5, top_k=0),
    )
    strict_scores = evaluate_matching(strict, truth)
    loose_scores = evaluate_matching(loose, truth)
    assert loose_scores["recall"] >= strict_scores["recall"]
    assert loose_scores["precision"] <= strict_scores["precision"]


@pytest.mark.parametrize("threshold", [1.0, 0.7, 0.5])
def test_bench_matching_by_threshold(benchmark, bench_genmapper, truth,
                                     threshold):
    config = MatchConfig(
        matcher=token_jaccard_matcher, threshold=threshold, top_k=1
    )
    mapping = benchmark(
        match_attributes, bench_genmapper.repository,
        "LocusLink", "Unigene", config,
    )
    scores = evaluate_matching(mapping, truth)
    benchmark.extra_info["experiment"] = (
        f"Attribute matching: threshold={threshold}"
    )
    benchmark.extra_info["f1"] = round(scores["f1"], 3)
    benchmark.extra_info["pairs"] = len(mapping)
