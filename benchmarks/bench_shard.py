"""Experiment: source-sharded parallel import (docs/storage.md).

The monolithic engine is architecturally a **single-writer** store: one
``BEGIN IMMEDIATE`` transaction holds the database write lock for its
whole duration, so concurrent import clients serialize end to end —
including every moment the writer spends *outside* SQLite while its
transaction is open (streaming a batch from the parser, waiting on the
source download, fsync).  The sharded engine locks one shard per scoped
writer, so imports of different sources only contend when they share a
shard file.

Two claims are measured and enforced here:

1. **4 concurrent import writers finish ≥ 2x faster on the sharded
   engine** than on the monolithic single-writer baseline, on a
   streaming workload whose per-batch transactions include a producer
   stall (``PRODUCER_STALL_MS`` of non-database time per batch, modeling
   the parse/fetch latency of a streaming feed).  The stall is the
   honest core of the experiment: it is time the monolithic engine
   serializes because the write lock is held across it, and the sharded
   engine overlaps because only the writing source's shard is locked.
   CPU-bound insert work is identical on both engines (and cannot
   overlap on a single-core runner regardless of engine).
2. **Both engines produce identical canonical snapshots** — the sharded
   import is a pure performance change, byte-for-byte equivalent data.

Scale knobs (environment): ``BENCH_SHARD_SOURCES``, ``BENCH_SHARD_BATCHES``,
``BENCH_SHARD_ROWS`` (rows per batch), ``BENCH_SHARD_STALL_MS``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

from repro.gam.database import GamDatabase
from repro.gam.dump import canonical_snapshot
from repro.gam.repository import GamRepository
from repro.gam.shards import ShardedGamDatabase

#: Minimum wall-clock speedup of 4 sharded writers over the monolithic
#: single-writer baseline on the streaming workload (observed: ~3x on a
#: single-core runner; true CPU parallelism raises it further).
MIN_SHARD_SPEEDUP = 2.0

N_SOURCES = int(os.environ.get("BENCH_SHARD_SOURCES", "4"))
N_BATCHES = int(os.environ.get("BENCH_SHARD_BATCHES", "6"))
ROWS_PER_BATCH = int(os.environ.get("BENCH_SHARD_ROWS", "400"))
PRODUCER_STALL_MS = float(os.environ.get("BENCH_SHARD_STALL_MS", "20"))


def _source_names() -> list[str]:
    return [f"Feed{chr(ord('A') + i)}" for i in range(N_SOURCES)]


def _batch_rows(name: str, batch: int) -> list[tuple]:
    base = batch * ROWS_PER_BATCH
    return [
        (f"{name.lower()}-{base + i:06d}", f"text {base + i}", float(i))
        for i in range(ROWS_PER_BATCH)
    ]


def _import_source_streaming(db, name: str) -> None:
    """One client's streaming import: per-batch transactions, each
    spanning the producer stall for its batch (the batch is "arriving"
    while the transaction is open, as in a pipelined parse-and-load)."""
    repo = GamRepository(db)
    repo.add_source(name)
    src = repo.get_source(name)
    for batch in range(N_BATCHES):
        with db.write_scope(name), db.transaction():
            time.sleep(PRODUCER_STALL_MS / 1000.0)
            repo.add_objects(src, _batch_rows(name, batch))


def _run_parallel_import(db) -> float:
    names = _source_names()
    start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=len(names)) as pool:
        futures = [
            pool.submit(_import_source_streaming, db, name) for name in names
        ]
        for future in futures:
            future.result()
    return time.perf_counter() - start


def _workload_seconds() -> float:
    return N_SOURCES * N_BATCHES * PRODUCER_STALL_MS / 1000.0


def test_parallel_import_speedup(tmp_path):
    """The gate: 4 shard writers vs the monolithic single writer."""
    mono = GamDatabase(str(tmp_path / "mono.db"))
    mono_seconds = _run_parallel_import(mono)
    sharded = ShardedGamDatabase(str(tmp_path / "sharded.db"))
    shard_seconds = _run_parallel_import(sharded)
    try:
        assert canonical_snapshot(GamRepository(mono)) == (
            canonical_snapshot(GamRepository(sharded))
        ), "sharded import must be byte-identical to monolithic"
        speedup = mono_seconds / shard_seconds
        assert speedup >= MIN_SHARD_SPEEDUP, (
            f"parallel import speedup {speedup:.2f}x below the"
            f" {MIN_SHARD_SPEEDUP}x floor (monolithic {mono_seconds:.2f}s,"
            f" sharded {shard_seconds:.2f}s,"
            f" stall budget {_workload_seconds():.2f}s)"
        )
    finally:
        mono.close()
        sharded.close()


# -- pytest-benchmark snapshots ---------------------------------------------


def test_bench_sharded_parallel_import(benchmark, tmp_path_factory):
    counter = {"run": 0}

    def run():
        directory = tmp_path_factory.mktemp(
            f"bench_shard_s{counter['run']}"
        )
        counter["run"] += 1
        db = ShardedGamDatabase(str(directory / "g.db"))
        try:
            return _run_parallel_import(db)
        finally:
            db.close()

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = (
        f"Shard: {N_SOURCES} parallel streaming writers, sharded engine"
    )
    benchmark.extra_info["sources"] = N_SOURCES
    benchmark.extra_info["rows"] = N_SOURCES * N_BATCHES * ROWS_PER_BATCH
    benchmark.extra_info["producer_stall_ms"] = PRODUCER_STALL_MS


def test_bench_monolithic_parallel_import(benchmark, tmp_path_factory):
    counter = {"run": 0}

    def run():
        directory = tmp_path_factory.mktemp(
            f"bench_shard_m{counter['run']}"
        )
        counter["run"] += 1
        db = GamDatabase(str(directory / "g.db"))
        try:
            return _run_parallel_import(db)
        finally:
            db.close()

    benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["experiment"] = (
        f"Shard: {N_SOURCES} parallel streaming writers,"
        " monolithic single-writer baseline"
    )
    benchmark.extra_info["sources"] = N_SOURCES
    benchmark.extra_info["rows"] = N_SOURCES * N_BATCHES * ROWS_PER_BATCH
    benchmark.extra_info["producer_stall_ms"] = PRODUCER_STALL_MS
