"""Paper-scale benchmark: operators at the Section 8 deployment shape.

The paper's production instance holds "more than 60 sources, 2 million
objects with 5 million associations in 500 mappings".  This script
builds that shape (``repro.datagen.scale``), times each operator on it,
and measures the headline claim of the incremental-maintenance layer:
after an import delta, refreshing a materialized mapping via
``repro.derived.refresh`` must beat dropping and re-deriving it by at
least 5x, and warm cache entries for untouched source pairs must
survive the delta.

Run directly (pytest collects no tests from this module)::

    PYTHONPATH=src python benchmarks/bench_paper_scale.py \
        --scale 1.0 --out BENCH_paper_scale.json

CI smoke-runs it at ``--scale 0.05``; the committed
``BENCH_paper_scale.json`` comes from a full ``--scale 1.0`` run.  At
scales <= 0.1 the script additionally proves the refresh byte-identical
(``canonical_snapshot``) to full re-derivation on a twin database.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

#: Minimum speedup the incremental refresh must deliver over a full
#: drop-and-rederive of the same mapping after a typical import delta.
MIN_REFRESH_SPEEDUP = 5.0

#: Twin-database equivalence proof is O(full snapshot); only run it at
#: smoke scales.
EQUIVALENCE_MAX_SCALE = 0.1


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return (time.perf_counter() - start) * 1000.0, result


def _max_obj_rel_id(db) -> int:
    return int(
        db.execute("SELECT coalesce(max(obj_rel_id), 0) FROM object_rel")
        .fetchone()[0]
    )


def _build(gm, scale: float, seed: int):
    from repro.datagen.scale import PaperScaleSpec, build_paper_database

    spec = PaperScaleSpec(scale=scale, seed=seed)
    build_ms, report = _timed(lambda: build_paper_database(gm.repository, spec))
    return spec, report, build_ms


def _operator_phase(gm, results: dict) -> None:
    """Per-operator timings on the freshly built instance."""
    from repro.operators.compose import compose
    from repro.operators.simple import map_

    repo = gm.repository
    timings: dict[str, float] = {}
    timings["map"], mapping = _timed(lambda: map_(repo, "Gene", "Term"))
    results["map_associations"] = len(mapping)
    path = ["Gene", "Term", "S00"]
    timings["compose_sql"], composed = _timed(
        lambda: compose(repo, path, engine="sql")
    )
    results["compose_associations"] = len(composed)
    timings["derive_composed"], __ = _timed(
        lambda: gm.compose(path, materialize=True)
    )
    timings["derive_subsumed"], inserted = _timed(
        lambda: gm.derive_subsumed("Term")
    )
    results["subsumed_associations"] = inserted
    timings["generate_view_sql"], view = _timed(
        lambda: gm.generate_view(
            "Gene", ["Term", "S00"], combine="OR", engine="sql"
        )
    )
    results["view_rows"] = len(view)
    results["timings_ms"] = {k: round(v, 3) for k, v in timings.items()}


def _incremental_phase(gm, scale: float, seed: int, results: dict) -> None:
    """Import a delta, refresh incrementally, compare with full rederive."""
    from repro.datagen.scale import append_delta, append_taxonomy_delta
    from repro.gam.enums import RelType

    repo, db = gm.repository, gm.db
    path = ["Gene", "Term", "S00"]
    # A typical nightly delta: ~0.2% of the base associations.
    delta_rows = max(int(10_000 * scale), 200)
    watermark = _max_obj_rel_id(db)
    append_delta(repo, "Gene", "Term", delta_rows, seed=seed + 1)
    append_taxonomy_delta(repo, "Term", max(delta_rows // 10, 50), seed=seed + 2)

    refresh_ms, reports = _timed(
        lambda: (
            gm.refresh_composed(path, watermark=watermark),
            gm.refresh_subsumed("Term", watermark=watermark),
        )
    )
    composed_report, subsumed_report = reports

    # Full re-derivation of the same two mappings: drop their rows, then
    # derive from scratch (what every pre-refresh release had to do).
    def _drop(rel) -> None:
        with db.write_scope(), db.transaction():
            db.execute(
                "DELETE FROM object_rel WHERE src_rel_id = ?",
                (rel.src_rel_id,),
            )

    _drop(composed_report.rel)
    _drop(subsumed_report.rel)
    full_ms, __ = _timed(
        lambda: (
            gm.compose(path, materialize=True),
            gm.derive_subsumed("Term"),
        )
    )
    speedup = full_ms / refresh_ms if refresh_ms > 0 else float("inf")
    results["incremental"] = {
        "delta_association_rows": delta_rows,
        "delta_edges_composed": composed_report.delta_edges,
        "delta_edges_subsumed": subsumed_report.delta_edges,
        "refresh_changed_rows": composed_report.changed
        + subsumed_report.changed,
        "refresh_ms": round(refresh_ms, 3),
        "full_rederive_ms": round(full_ms, 3),
        "speedup": round(speedup, 2),
    }
    # The second refresh ran against dropped-and-rederived rels above, so
    # re-apply the delta refresh path once more for a steady-state check:
    # at the current watermark there is nothing to do.
    noop = gm.refresh_composed(path, watermark=_max_obj_rel_id(db))
    results["incremental"]["noop_delta_edges"] = noop.delta_edges
    assert speedup >= MIN_REFRESH_SPEEDUP, (
        f"incremental refresh speedup {speedup:.2f}x"
        f" below the {MIN_REFRESH_SPEEDUP}x floor"
        f" (refresh {refresh_ms:.1f}ms vs full {full_ms:.1f}ms)"
    )


def _cache_phase(gm, scale: float, seed: int, results: dict) -> None:
    """Scoped invalidation: a delta to one source pair must leave warm
    entries of untouched pairs serving hits."""
    from repro.datagen.scale import append_delta

    touched = ("Gene", "Term")
    untouched = ("S01", "S02")
    gm.map(*touched)
    gm.map(*untouched)
    before = gm.cache_stats()
    append_delta(gm.repository, *touched, max(int(2_000 * scale), 100),
                 seed=seed + 3)
    warm_ms, __ = _timed(lambda: gm.map(*untouched))
    cold_ms, __ = _timed(lambda: gm.map(*touched))
    after = gm.cache_stats()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    results["cache"] = {
        "untouched_pair_hits": hits,
        "touched_pair_misses": misses,
        "untouched_warm_ms": round(warm_ms, 3),
        "touched_reload_ms": round(cold_ms, 3),
        "scoped_invalidations": after["scoped_invalidations"],
    }
    assert hits >= 1, "untouched pair lost its warm entry after the delta"
    assert misses >= 1, "touched pair was served stale after the delta"


def _equivalence_phase(scale: float, seed: int, results: dict) -> None:
    """Twin-database proof: refresh == drop + full rederive, per engine."""
    from repro.core.genmapper import GenMapper
    from repro.datagen.scale import (
        PaperScaleSpec,
        append_delta,
        append_taxonomy_delta,
        build_paper_database,
    )
    from repro.derived import refresh_composed, refresh_subsumed
    from repro.gam.dump import canonical_snapshot

    path = ["Gene", "Term", "S00"]
    verdicts = {}
    for engine in ("sql", "memory"):
        twins = []
        for __ in range(2):
            gm = GenMapper(enable_cache=False)
            build_paper_database(
                gm.repository, PaperScaleSpec(scale=scale, seed=seed)
            )
            twins.append(gm)
        full, incremental = twins
        incremental.compose(path, materialize=True)
        incremental.derive_subsumed("Term")
        watermark = _max_obj_rel_id(incremental.db)
        for gm in twins:
            append_delta(gm.repository, "Gene", "Term", 300, seed=seed + 5)
            append_taxonomy_delta(gm.repository, "Term", 60, seed=seed + 6)
        full.compose(path, materialize=True)
        full.derive_subsumed("Term")
        refresh_composed(
            incremental.repository, path, watermark=watermark, engine=engine
        )
        refresh_subsumed(
            incremental.repository, "Term", watermark=watermark, engine=engine
        )
        identical = canonical_snapshot(full.repository) == canonical_snapshot(
            incremental.repository
        )
        verdicts[engine] = identical
        for gm in twins:
            gm.close()
        assert identical, f"refresh({engine}) diverged from full rederive"
    results["equivalence"] = verdicts


def run(scale: float, seed: int, out: Path, db_path: str | None) -> dict:
    from repro.core.genmapper import GenMapper

    results: dict = {"benchmark": "paper_scale", "scale": scale, "seed": seed}
    with tempfile.TemporaryDirectory(prefix="paper-scale-") as tmp:
        # On-disk database: the full shape does not fit comfortably in a
        # :memory: connection, and disk is what the paper measured.
        target = db_path or str(Path(tmp) / "paper.gam")
        gm = GenMapper(target, enable_cache=True)
        try:
            spec, report, build_ms = _build(gm, scale, seed)
            results["shape"] = {
                "sources": report.sources,
                "objects": report.objects,
                "associations": report.associations,
                "mappings": report.mappings,
                "is_a_edges": report.is_a_edges,
            }
            results["build_ms"] = round(build_ms, 3)
            _operator_phase(gm, results)
            _incremental_phase(gm, scale, seed, results)
            _cache_phase(gm, scale, seed, results)
        finally:
            gm.close()
    if scale <= EQUIVALENCE_MAX_SCALE:
        _equivalence_phase(scale, seed, results)
    out.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="fraction of the paper shape (1.0 = 2M objects)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", type=Path,
                        default=Path("BENCH_paper_scale.json"))
    parser.add_argument("--db", default=None,
                        help="build the instance at this path instead of a"
                             " temporary directory")
    args = parser.parse_args(argv)
    results = run(args.scale, args.seed, args.out, args.db)
    print(json.dumps(results, indent=2, sort_keys=True))
    print(f"\nwritten to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
