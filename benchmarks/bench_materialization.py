"""Experiment A-materialize: derived-relationship materialization.

The paper stores results of Compose and Subsumed derivation "to increase
the annotation knowledge and to support frequent queries".  Measured: the
latency of obtaining Unigene ↔ GO with and without a materialized Composed
mapping, and subsumption queries with and without the materialized
Subsumed relationship.  Shape expectation: materialized retrieval wins,
and the one-time derivation cost amortizes after a handful of queries.
"""

import pytest

from repro.core.genmapper import GenMapper
from repro.derived.subsumed import query_with_subsumption
from repro.gam.enums import RelType
from repro.operators.simple import map_


@pytest.fixture(scope="module")
def fresh_genmapper(bench_universe_dir):
    """A module-private GenMapper (materialization mutates the DB)."""
    gm = GenMapper()
    gm.integrate_directory(bench_universe_dir)
    yield gm
    gm.close()


def test_materialized_equals_derived(fresh_genmapper):
    derived = fresh_genmapper.compose(
        ["Unigene", "LocusLink", "GO"], materialize=False
    )
    fresh_genmapper.compose(["Unigene", "LocusLink", "GO"], materialize=True)
    stored = map_(fresh_genmapper.repository, "Unigene", "GO")
    assert stored.rel_type is RelType.COMPOSED
    assert stored.pair_set() == derived.pair_set()


def test_bench_compose_on_the_fly(benchmark, bench_genmapper):
    mapping = benchmark(
        bench_genmapper.compose, ["Unigene", "LocusLink", "GO"]
    )
    benchmark.extra_info["experiment"] = "Materialization: compose each time"
    benchmark.extra_info["associations"] = len(mapping)


def test_bench_materialized_retrieval(benchmark, fresh_genmapper):
    fresh_genmapper.compose(["Unigene", "LocusLink", "GO"], materialize=True)
    mapping = benchmark(map_, fresh_genmapper.repository, "Unigene", "GO")
    assert mapping.rel_type is RelType.COMPOSED
    benchmark.extra_info["experiment"] = "Materialization: stored retrieval"
    benchmark.extra_info["associations"] = len(mapping)


def test_bench_subsumed_derivation_cost(benchmark, bench_universe_dir):
    """The one-time cost of deriving Subsumed(GO)."""
    counter = iter(range(10_000))

    def derive():
        with GenMapper() as gm:
            gm.integrate_directory(bench_universe_dir)
            next(counter)
            return gm.derive_subsumed("GO")

    inserted = benchmark.pedantic(derive, rounds=3, iterations=1)
    assert inserted > 0
    benchmark.extra_info["experiment"] = "Materialization: derive Subsumed(GO)"
    benchmark.extra_info["subsumed_pairs"] = inserted


def test_bench_subsumption_query(benchmark, fresh_genmapper, bench_universe):
    """Genes annotated with a term or anything it subsumes."""
    root_term = next(
        term.accession
        for term in bench_universe.go.terms
        if not term.parents
    )

    def query():
        return query_with_subsumption(
            fresh_genmapper.repository, "LocusLink", "GO", root_term
        )

    loci = benchmark(query)
    assert loci
    benchmark.extra_info["experiment"] = "Materialization: subsumption query"
    benchmark.extra_info["matched_loci"] = len(loci)
