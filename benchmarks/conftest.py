"""Shared benchmark fixtures: scaled synthetic universes and loaded
GenMapper instances.

Scale notes (see EXPERIMENTS.md): the paper's deployment holds ~2M objects
from 60+ sources.  The benchmark universe is scaled down (the scale factor
is recorded in each bench's ``extra_info``) so the full suite runs in
minutes; `BENCH_GENES` can be raised to approach the paper's shape.
"""

from __future__ import annotations

import pytest

from repro.core.genmapper import GenMapper
from repro.datagen.emit import write_universe
from repro.datagen.expression import generate_expression
from repro.datagen.universe import UniverseConfig, generate_universe
from repro.obs import get_registry, get_tracer

#: Genes in the standard benchmark universe.
BENCH_GENES = 600
#: GO terms in the standard benchmark universe.
BENCH_GO_TERMS = 250


@pytest.fixture(scope="session")
def bench_universe():
    """The standard benchmark universe (deterministic)."""
    return generate_universe(
        UniverseConfig(seed=42, n_genes=BENCH_GENES, n_go_terms=BENCH_GO_TERMS)
    )


@pytest.fixture(scope="session")
def bench_universe_dir(bench_universe, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bench_universe")
    write_universe(bench_universe, directory)
    return directory


@pytest.fixture(scope="session")
def bench_genmapper(bench_universe_dir):
    """A GenMapper loaded with the standard benchmark universe.

    The one-time integration is traced through the observability layer
    (the ad-hoc ``util.Timer`` shim is long gone), so ``obs_registry``
    exposes parse/import stage latencies for benches to report via
    ``extra_info``.  Tracing is switched off again before yielding — the
    measured bench bodies must run uninstrumented.
    """
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    gm = GenMapper()
    try:
        gm.integrate_directory(bench_universe_dir)
    finally:
        tracer.enabled = was_enabled
    yield gm
    gm.close()


@pytest.fixture(scope="session")
def obs_registry():
    """The default metrics registry (stage timings, import counters)."""
    return get_registry()


@pytest.fixture(scope="session")
def bench_study(bench_universe):
    """An expression study over the benchmark universe (Section 5.2)."""
    return generate_expression(bench_universe)
