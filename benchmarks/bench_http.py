"""Experiment: the HTTP edge under heavy reads (docs/http_api.md).

Two claims are measured and enforced here:

1. **Streaming bounds serialization memory** — serving a large object
   listing as chunked JSON must allocate a small fraction of what the
   buffered ``json.dumps`` path allocates for the same byte-identical
   body.  Peaks are measured with ``tracemalloc`` over the WSGI callable
   driven directly (no sockets), so only serialization differs.
2. **Conditional GET revalidation is (nearly) free** — a warm repeat
   request presenting ``If-None-Match`` must answer ``304`` at a small
   fraction of the full-body ``200`` latency: the handler, repository
   and serializer are all skipped.

The bench bodies run through pytest-benchmark so CI snapshots land in
the combined ``BENCH_*.json`` artifact (``BENCH_pr7_http.json``).
"""

from __future__ import annotations

import io
import json
import time
import tracemalloc

import pytest

from repro.obs import MetricsRegistry
from repro.web.app import create_app

#: Streamed serialization peak must stay below this fraction of the
#: buffered peak for the same body (observed: well under 10%).
MAX_STREAM_PEAK_FRACTION = 0.5

#: A warm 304 must beat the equivalent full 200 by at least this factor
#: (conservative; the 304 does no routing, no repository work, no body).
MIN_304_SPEEDUP = 2.0


@pytest.fixture(scope="module")
def edge(bench_genmapper):
    """The WSGI app plus the largest source of the benchmark universe."""
    app = create_app(
        bench_genmapper,
        registry=MetricsRegistry(),
        event_log=None,
        slow_log=None,
        slo=None,
    )
    largest = max(
        bench_genmapper.sources(),
        key=lambda s: bench_genmapper.repository.count_objects(s),
    )
    return app, largest.name


def _call(app, method, path, query="", headers=None):
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "QUERY_STRING": query,
        "REMOTE_ADDR": "127.0.0.1",
        "wsgi.input": io.BytesIO(b""),
    }
    for name, value in (headers or {}).items():
        environ["HTTP_" + name.upper().replace("-", "_")] = value
    captured = {}

    def start_response(status, response_headers, exc_info=None):
        captured["status"] = int(status.split()[0])
        captured["headers"] = dict(response_headers)

    body_iter = app(environ, start_response)
    size = 0
    for chunk in body_iter:
        size += len(chunk)
    close = getattr(body_iter, "close", None)
    if close is not None:
        close()
    return captured["status"], captured["headers"], size


def _peak_allocated(fn) -> int:
    tracemalloc.start()
    try:
        fn()
        __, peak = tracemalloc.get_traced_memory()
        return peak
    finally:
        tracemalloc.stop()


def _best_of(fn, repetitions: int = 7) -> float:
    best = float("inf")
    for __ in range(repetitions):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- claim 1: streamed serialization memory is bounded ----------------------


def test_streamed_listing_peak_memory(edge, benchmark):
    app, source = edge
    path = f"/sources/{source}/objects"

    def buffered():
        status, __, size = _call(app, "GET", path, "limit=0&stream=0")
        assert status == 200
        return size

    def streamed():
        status, __, size = _call(app, "GET", path, "limit=0&stream=1")
        assert status == 200
        return size

    body_bytes = buffered()
    assert streamed() == body_bytes  # byte-identical bodies
    buffered_peak = _peak_allocated(buffered)
    streamed_peak = _peak_allocated(streamed)
    benchmark.extra_info["experiment"] = "stream_peak_memory"
    benchmark.extra_info["body_bytes"] = body_bytes
    benchmark.extra_info["buffered_peak_bytes"] = buffered_peak
    benchmark.extra_info["streamed_peak_bytes"] = streamed_peak
    benchmark.extra_info["peak_fraction"] = round(
        streamed_peak / buffered_peak, 4
    )
    benchmark(streamed)
    assert streamed_peak < buffered_peak * MAX_STREAM_PEAK_FRACTION, (
        f"streamed serialization peaked at {streamed_peak} bytes,"
        f" >= {MAX_STREAM_PEAK_FRACTION:.0%} of the buffered"
        f" {buffered_peak} bytes"
    )


def test_streamed_map_matches_buffered(edge, bench_genmapper, benchmark):
    app, __ = edge
    sources = [s.name for s in bench_genmapper.sources()]
    query = None
    for a in sources:
        for b in sources:
            if a == b:
                continue
            try:
                if len(bench_genmapper.map(a, b)) >= 100:
                    query = f"source={a}&target={b}"
                    break
            except Exception:
                continue
        if query:
            break
    assert query, "benchmark universe has no sizable mapping"
    status, __, buffered_size = _call(app, "GET", "/map", f"{query}&stream=0")
    assert status == 200
    status, __, streamed_size = _call(app, "GET", "/map", f"{query}&stream=1")
    assert status == 200
    assert streamed_size == buffered_size
    benchmark.extra_info["experiment"] = "stream_map"
    benchmark.extra_info["body_bytes"] = buffered_size
    benchmark(lambda: _call(app, "GET", "/map", f"{query}&stream=1"))


# -- claim 2: conditional GET revalidation --------------------------------


def test_warm_304_beats_full_200(edge, benchmark):
    app, source = edge
    path = f"/sources/{source}/objects"
    query = "limit=500"
    status, headers, __ = _call(app, "GET", path, query)
    assert status == 200
    etag = headers["ETag"]

    def full():
        status, __, ___ = _call(app, "GET", path, query)
        assert status == 200

    def revalidate():
        status, __, size = _call(
            app, "GET", path, query, headers={"If-None-Match": etag}
        )
        assert status == 304
        assert size == 0

    full_latency = _best_of(full)
    not_modified_latency = _best_of(revalidate, 20)
    benchmark.extra_info["experiment"] = "conditional_get"
    benchmark.extra_info["full_200_s"] = round(full_latency, 6)
    benchmark.extra_info["warm_304_s"] = round(not_modified_latency, 6)
    benchmark.extra_info["speedup"] = round(
        full_latency / not_modified_latency, 2
    )
    benchmark(revalidate)
    assert full_latency / not_modified_latency >= MIN_304_SPEEDUP, (
        f"304 revalidation ({not_modified_latency * 1e6:.0f}us) is not"
        f" {MIN_304_SPEEDUP}x faster than the full 200"
        f" ({full_latency * 1e6:.0f}us)"
    )


def test_rate_limit_check_overhead(edge, bench_genmapper, benchmark):
    """The admission check itself must be negligible: a limited app's
    /stats latency within noise of the unlimited app's."""
    from repro.reliability.ratelimit import RateLimiter

    app, __ = edge
    limited = create_app(
        bench_genmapper,
        registry=MetricsRegistry(),
        rate_limiter=RateLimiter(1e9, registry=MetricsRegistry()),
        event_log=None,
        slow_log=None,
        slo=None,
    )
    plain = _best_of(lambda: _call(app, "GET", "/stats"), 20)
    gated = _best_of(lambda: _call(limited, "GET", "/stats"), 20)
    benchmark.extra_info["experiment"] = "rate_limit_overhead"
    benchmark.extra_info["plain_s"] = round(plain, 6)
    benchmark.extra_info["limited_s"] = round(gated, 6)
    benchmark(lambda: _call(limited, "GET", "/stats"))
    # Generous bound: the check is two dict ops + float math under a lock.
    assert gated < plain * 3 + 0.001


def test_stream_decision_consistency(edge):
    """Sanity riding along with the benches: the JSON of a streamed and a
    buffered run of the same query parse identically (not just equal
    bytes — guards against accidental double-encoding)."""
    app, source = edge
    path = f"/sources/{source}/objects"
    environ_query = "limit=50"

    def body_of(stream_flag):
        environ = {
            "REQUEST_METHOD": "GET",
            "PATH_INFO": path,
            "QUERY_STRING": f"{environ_query}&stream={stream_flag}",
            "wsgi.input": io.BytesIO(b""),
        }
        chunks = app(environ, lambda *a, **k: None)
        raw = b"".join(chunks)
        close = getattr(chunks, "close", None)
        if close is not None:
            close()
        return raw

    buffered = body_of(0)
    streamed = body_of(1)
    assert buffered == streamed
    payload = json.loads(streamed)
    assert len(payload["objects"]) == 50
    assert payload["next"]
