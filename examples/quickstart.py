"""Quickstart: integrate annotation sources and build an annotation view.

Reenacts the paper's running example (Figures 1 and 3): import a
LocusLink-style record for locus 353 (APRT) plus a small GO taxonomy and a
UniGene cluster, then derive annotation views and composed mappings.

Run:  python examples/quickstart.py
"""

from repro import GenMapper

LOCUSLINK = """\
>>353
OFFICIAL_SYMBOL: APRT
NAME: adenine phosphoribosyltransferase
CHR: 16
MAP: 16q24
ECNUM: 2.4.2.7
GO: GO:0009116|nucleoside metabolism
OMIM: 102600
UNIGENE: Hs.28914
>>354
OFFICIAL_SYMBOL: GP1BB
NAME: glycoprotein Ib beta
CHR: 22
MAP: 22q11
GO: GO:0007155|cell adhesion
"""

GO_OBO = """\
format-version: 1.2

[Term]
id: GO:0008150
name: biological process
namespace: biological_process

[Term]
id: GO:0009117
name: nucleotide metabolism
namespace: biological_process
is_a: GO:0008150

[Term]
id: GO:0009116
name: nucleoside metabolism
namespace: biological_process
is_a: GO:0009117

[Term]
id: GO:0007155
name: cell adhesion
namespace: biological_process
is_a: GO:0008150
"""

UNIGENE = """\
ID          Hs.28914
TITLE       adenine phosphoribosyltransferase
GENE        APRT
LOCUSLINK   353
//
"""


def main() -> None:
    gm = GenMapper()  # in-memory GAM database

    # Phase 1 (Figure 2): Parse + Import into the generic GAM model.
    for text, source in ((LOCUSLINK, "LocusLink"), (GO_OBO, "GO"),
                         (UNIGENE, "Unigene")):
        report = gm.integrate_text(text, source)
        print(report.summary())

    # Phase 2: tailored annotation views (Figure 3).
    print("\nAnnotation view for LocusLink genes (Figure 3):")
    view = gm.generate_view(
        "LocusLink", ["Hugo", "GO", "Location", "OMIM"], combine="OR"
    )
    print(view.render())

    # Everything known about one object (Figure 1).
    print("\nAll annotations of locus 353 (Figure 1):")
    for partner, rel_type, assoc in gm.object_info("LocusLink", "353"):
        print(f"  {partner:<12} [{rel_type.value}] {assoc.target_accession}")

    # Derive a new mapping by composition (Section 4.2):
    # Unigene <-> GO from Unigene <-> LocusLink and LocusLink <-> GO.
    print("\nComposed mapping (Unigene -> LocusLink -> GO):")
    mapping = gm.map("Unigene", "GO")  # auto-composes along shortest path
    print(" ", mapping.describe())
    for assoc in mapping:
        print(f"  {assoc.source_accession} <-> {assoc.target_accession}")

    # Subsumption: querying with the general term finds the specific
    # annotation (Section 3, Subsumed relationships).
    from repro.derived import query_with_subsumption

    loci = query_with_subsumption(
        gm.repository, "LocusLink", "GO", "GO:0009117"
    )
    print(f"\nLoci annotated under 'nucleotide metabolism': {sorted(loci)}")

    print("\nDatabase statistics (Section 5):")
    for key, value in gm.stats().items():
        print(f"  {key:<28} {value}")


if __name__ == "__main__":
    main()
