"""Source lifecycle maintenance: releases, diffs, coverage, retirement.

The paper's deployment is long-lived — sources publish new releases,
mappings are re-derived, obsolete sources retire.  This example walks that
lifecycle:

1. import release 2003-01 of a LocusLink-style source,
2. diff the incoming 2003-10 release against the store (what a curator
   reviews), then import it — duplicate elimination applies only the
   delta,
3. compute a Similarity mapping by attribute matching and materialize it,
4. inspect annotation coverage and the detailed deployment statistics,
5. run a batch of queries unattended (pipeline integration),
6. retire a source (cascade delete + orphan pruning) and verify integrity.

Run:  python examples/release_maintenance.py
"""

from repro import GenMapper
from repro.analysis.coverage import render_coverage, source_coverage
from repro.gam.maintenance import delete_source, prune_orphan_objects
from repro.gam.statistics import collect_statistics
from repro.importer.diff import diff_against_store
from repro.operators.matching import MatchConfig, match_attributes, normalized_matcher
from repro.parsers.base import get_parser
from repro.query.batch import parse_batch, render_results, run_batch

RELEASE_2003_01 = """\
>>353
OFFICIAL_SYMBOL: APRT
NAME: adenine phosphoribosyltransferase
MAP: 16q24
GO: GO:0009116|nucleoside metabolism
OMIM: 102600
>>354
OFFICIAL_SYMBOL: GP1BB
NAME: glycoprotein Ib beta
MAP: 22q11
GO: GO:0007155|cell adhesion
"""

RELEASE_2003_10 = """\
>>353
OFFICIAL_SYMBOL: APRT
NAME: adenine phosphoribosyltransferase
MAP: 16q24
GO: GO:0009116|nucleoside metabolism
GO: GO:0006139|nucleobase metabolism
OMIM: 102600
>>354
OFFICIAL_SYMBOL: GP1BB
NAME: glycoprotein Ib beta polypeptide
MAP: 22q11
GO: GO:0007155|cell adhesion
>>355
OFFICIAL_SYMBOL: NEW1
NAME: newly curated kinase
MAP: 1p36
GO: GO:0007155|cell adhesion
"""

UNIGENE = """\
ID          Hs.28914
TITLE       adenine phosphoribosyltransferase
GENE        APRT
LOCUSLINK   353
//
ID          Hs.500
TITLE       newly curated kinase
GENE        NEW1
//
"""


def main() -> None:
    gm = GenMapper()

    # 1. First release.
    report = gm.integrate_text(RELEASE_2003_01, "LocusLink",
                               release="2003-01")
    print(report.summary())
    gm.integrate_text(UNIGENE, "Unigene", release="2003-01")

    # 2. Diff the new release before applying it.
    parser = get_parser("LocusLink")
    incoming = parser.parse_text(RELEASE_2003_10, release="2003-10")
    diff = diff_against_store(gm.repository, incoming)
    print("\nrelease diff (curator review):")
    print(diff.render())
    report = gm.integrate_dataset(incoming)
    print(f"\napplied delta: +{report.new_objects} objects,"
          f" +{report.total_associations} associations")

    # 3. Attribute matching: link the new locus to its UniGene cluster by
    #    name, since the cluster predates the locus's cross-reference.
    matched = match_attributes(
        gm.repository, "LocusLink", "Unigene",
        MatchConfig(matcher=normalized_matcher, threshold=1.0),
    )
    print(f"\nattribute matching found: {sorted(matched.pair_set())}")
    gm.materialize(matched)

    # 4. Coverage and deployment statistics.
    print("\nannotation coverage of LocusLink:")
    print(render_coverage(source_coverage(gm.repository, "LocusLink")))
    print("\ndeployment statistics:")
    print(collect_statistics(gm.repository).render())

    # 5. Unattended batch queries (pipeline integration).
    batch = parse_batch(
        "# name: profiles\nANNOTATE LocusLink WITH Hugo AND GO\n"
        "# name: undiagnosed\nANNOTATE LocusLink WITH GO AND NOT OMIM\n"
    )
    results = run_batch(gm, batch)
    print("\nbatch run:")
    print(render_results(results))

    # 6. Retire OMIM; prune anything stranded; verify integrity.
    deletion = delete_source(gm.repository, "OMIM")
    pruned = prune_orphan_objects(gm.repository)
    print(f"\n{deletion.summary()}; pruned {pruned} orphans")
    print(gm.check_integrity())


if __name__ == "__main__":
    main()
