"""Large-scale gene functional profiling (paper Section 5.2).

Reproduces the human/chimpanzee study pipeline on a synthetic universe:

1. generate a source universe and a two-species expression study with a
   planted differential signal around a few GO terms,
2. integrate the ten sources into GenMapper,
3. detect expressed and differentially expressed probes,
4. map Affymetrix probes to UniGene, derive GO annotations through
   LocusLink (Compose), and run the hypergeometric enrichment with the
   taxonomy rollup,
5. report the enriched functions and compare against the planted truth.

Run:  python examples/functional_profiling.py
"""

import tempfile

from repro import GenMapper
from repro.analysis import FunctionalProfiler
from repro.datagen import (
    UniverseConfig,
    generate_expression,
    generate_universe,
    write_universe,
)
from repro.taxonomy import Taxonomy


def main() -> None:
    # 1. The synthetic world and the expression study.
    universe = generate_universe(
        UniverseConfig(seed=2004, n_genes=500, n_go_terms=120)
    )
    # A strongly planted signal so the demo's enrichment step has a clear
    # answer; the benchmark uses the paper-shaped defaults instead.
    study = generate_expression(universe, planted_odds=25.0, n_planted_terms=2)
    print(
        f"universe: {len(universe.genes)} genes,"
        f" {len(universe.probes)} probes, {len(universe.go)} GO terms"
    )

    # 2. Integrate every source (the paper's data import phase).
    gm = GenMapper()
    with tempfile.TemporaryDirectory() as directory:
        write_universe(universe, directory)
        gm.integrate_directory(directory)
    print(f"integrated: {gm.stats()['objects']} objects,"
          f" {gm.stats()['associations']} associations")

    # 3-4. The full profiling pipeline.
    profiler = FunctionalProfiler(
        gm,
        probe_source="NetAffx",
        gene_source="Unigene",
        locus_source="LocusLink",
        taxonomy_source="GO",
    )
    report = profiler.run(study)
    print("\n" + report.summary())

    # 5. Enriched GO functions vs the planted signal.
    names = {term.accession: term.name for term in universe.go.terms}
    print("\nTop enriched GO terms (hypergeometric, BH-corrected):")
    print(f"{'term':<12} {'k/n':>7} {'K/N':>9} {'p':>10} {'q':>10}  name")
    for result in report.enrichment[:10]:
        print(
            f"{result.term:<12}"
            f" {result.study_count:>3}/{result.study_size:<3}"
            f" {result.population_count:>4}/{result.population_size:<4}"
            f" {result.p_value:>10.2e} {result.q_value:>10.2e}"
            f"  {names.get(result.term, '?')}"
        )

    taxonomy = Taxonomy(universe.go.is_a_pairs())
    planted = set(study.planted_terms)
    planted_closure = set(planted)
    for term in planted:
        if term in taxonomy:
            planted_closure |= taxonomy.ancestors(term)
    hits = {r.term for r in report.significant_terms(fdr=0.10)}
    recovered = hits & planted_closure
    print(f"\nplanted terms: {sorted(planted)}")
    print(f"significant terms (FDR 10%): {sorted(hits)}")
    print(f"recovered planted signal (incl. ancestors): {sorted(recovered)}")

    # The methodology transfers to other taxonomies (paper: "e.g. Enzyme").
    enzyme_report = FunctionalProfiler(gm, taxonomy_source="Enzyme").run(study)
    print(
        f"\nEnzyme-taxonomy rollup: {len(enzyme_report.enrichment)}"
        " EC classes tested"
    )

    # The full study document the biologists receive.
    from repro.analysis import render_report

    print("\n" + "=" * 70)
    print(
        render_report(
            report,
            profiler.gene_annotation(),
            taxonomy,
            term_names=names,
            fdr=0.10,
        )
    )


if __name__ == "__main__":
    main()
