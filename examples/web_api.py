"""The JSON HTTP API (the paper's "interactive access ... under izbi.de").

Starts the WSGI app on a local port in a background thread, populates it
with a synthetic universe, and drives it with urllib the way an external
tool would: list sources, inspect an object, fetch a mapping, explain and
run a query.

Run:  python examples/web_api.py
"""

import json
import tempfile
import threading
import urllib.request
from wsgiref.simple_server import WSGIRequestHandler, make_server

from repro import GenMapper
from repro.datagen import UniverseConfig, generate_universe, write_universe
from repro.web.app import create_app


class _QuietHandler(WSGIRequestHandler):
    def log_message(self, *args) -> None:  # keep the demo output clean
        pass


def get(base, path):
    with urllib.request.urlopen(base + path) as response:
        return json.loads(response.read().decode("utf-8"))


def post(base, path, body):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    gm = GenMapper()
    universe = generate_universe(UniverseConfig(seed=8, n_genes=80,
                                                n_go_terms=50))
    with tempfile.TemporaryDirectory() as directory:
        write_universe(universe, directory)
        gm.integrate_directory(directory)

    server = make_server("127.0.0.1", 0, create_app(gm),
                         handler_class=_QuietHandler)
    port = server.server_address[1]
    base = f"http://127.0.0.1:{port}"
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"serving GenMapper API on {base}\n")

    sources = get(base, "/sources")["sources"]
    print("sources:", ", ".join(s["name"] for s in sources[:8]), "...")

    stats = get(base, "/stats")
    print(f"stats: {stats['objects']} objects,"
          f" {stats['associations']} associations")

    locus = universe.genes[0].locus
    info = get(base, f"/objects/LocusLink/{locus}")
    print(f"\nobject {locus} has {len(info['annotations'])} annotations, e.g.:")
    for annotation in info["annotations"][:4]:
        print(f"  {annotation['partner']:<12} {annotation['accession']}")

    mapping = get(base, "/map?source=NetAffx&target=GO")
    print(f"\nNetAffx -> GO [{mapping['rel_type']}]:"
          f" {len(mapping['associations'])} associations")

    plan = post(base, "/query/explain",
                {"query": "ANNOTATE Unigene WITH GO AND Hugo"})
    print("\nquery plan:")
    for target in plan["targets"]:
        print(f"  {target['target']}: {target['kind']}"
              f" via {' -> '.join(target['path'])}")

    result = post(base, "/query", {
        "source": "LocusLink",
        "accessions": [locus],
        "targets": [{"name": "Hugo"}, {"name": "GO"}],
        "combine": "OR",
    })
    print(f"\nquery result ({result['row_count']} rows):")
    print("  " + "\t".join(result["columns"]))
    for row in result["rows"][:5]:
        print("  " + "\t".join(str(cell) for cell in row))

    server.shutdown()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
