"""The interactive query workflow (paper Section 5.1, Figure 6) and the
ANNOTATE query language.

Builds a synthetic universe, then walks the exact screenshot sequence:
select a source, upload accessions, inspect suggested mapping paths, save
a custom path, combine targets with AND/OR/NOT, run the query, retrieve
object information, refine, and export.

Run:  python examples/interactive_query.py
"""

import tempfile

from repro import GenMapper
from repro.datagen import UniverseConfig, generate_universe, write_universe
from repro.query import QuerySession, parse_query, run_query


def main() -> None:
    universe = generate_universe(
        UniverseConfig(seed=6, n_genes=120, n_go_terms=60)
    )
    gm = GenMapper()
    with tempfile.TemporaryDirectory() as directory:
        write_universe(universe, directory)
        gm.integrate_directory(directory)

    session = QuerySession(gm)

    # Step 1: select the relevant source from the imported sources.
    print("available sources:", ", ".join(session.available_sources()))
    session.select_source("Unigene")

    # Step 2: upload the accessions of interest.
    clusters = [g.unigene for g in universe.genes[:8] if g.unigene]
    session.upload_accessions(clusters)
    print(f"\nuploaded {len(clusters)} UniGene accessions")

    # Step 3: targets and mapping paths.  GenMapper suggests the shortest
    # path automatically; alternatives can be inspected and saved.
    print("\nsuggested path to GO:   ", " -> ".join(session.suggest_path("GO")))
    print("alternative paths:")
    for path in session.suggest_paths("GO", k=3):
        print("   ", " -> ".join(path))
    gm.save_path("go-via-locuslink", ["Unigene", "LocusLink", "GO"])
    session.add_target("GO", saved_path="go-via-locuslink")
    session.add_target("Hugo")
    session.add_target("OMIM", negated=True)

    # Step 4: combine method; Step 5: run GenerateView (Figure 6b).
    session.combine_with("OR")
    print("\nquery:", session.spec().describe())
    view = session.run()
    print(view.render(max_rows=12))

    # Figure 6c: object information for one of the results.
    first = view.source_objects()[0]
    print(f"\nobject information for {first}:")
    for partner, rel_type, assoc in session.object_info(first)[:6]:
        print(f"  {partner:<12} [{rel_type.value}] {assoc.target_accession}")

    # Select interesting accessions and start a refinement query.
    chosen = view.source_objects()[:3]
    refined = session.refine(chosen).add_target("LocusLink").run()
    print(f"\nrefined query over {chosen}:")
    print(refined.render())

    # Export for external tools.
    out = session.export("/tmp/genmapper_view.tsv")
    print(f"\nexported the view to {out}")

    # The same query, written in the ANNOTATE language.
    spec = parse_query(
        f"ANNOTATE Unigene OBJECTS {', '.join(clusters[:3])} "
        "WITH GO VIA LocusLink AND Hugo"
    )
    print("\nANNOTATE-language query:", spec.describe())
    print(run_query(gm, spec).render(max_rows=8))


if __name__ == "__main__":
    main()
