"""Derived mappings, evidence and materialization (paper Sections 3-4).

Shows the derived-relationship machinery on a synthetic universe:

* Compose along paths of increasing length, with product vs min evidence
  combiners and precision/recall against the generator's ground truth,
* materializing a composed mapping so later queries retrieve it directly,
* Subsumed derivation over the GO IS_A structure and subsumption queries,
* the source graph's connectivity statistics.

Run:  python examples/mapping_paths.py
"""

import tempfile

from repro import GenMapper
from repro.datagen import UniverseConfig, generate_universe, write_universe
from repro.operators import min_evidence
from repro.pathfinder import connectivity_summary


def precision_recall(derived, truth):
    if not derived:
        return 0.0, 0.0
    overlap = len(derived & truth)
    return overlap / len(derived), overlap / len(truth)


def main() -> None:
    universe = generate_universe(
        UniverseConfig(seed=99, n_genes=300, n_go_terms=120)
    )
    gm = GenMapper()
    with tempfile.TemporaryDirectory() as directory:
        write_universe(universe, directory)
        gm.integrate_directory(directory)

    print("source graph:")
    for key, value in connectivity_summary(gm.source_graph()).items():
        print(f"  {key:<24} {value}")

    # Compose along longer and longer paths; precision stays perfect on
    # these curated cross-references, recall decays with unpublished links.
    truth = universe.true_probe_to_go()
    print("\ncompose NetAffx -> ... -> GO, vs ground truth:")
    for path in (
        ["NetAffx", "GO"],
        ["NetAffx", "LocusLink", "GO"],
        ["NetAffx", "Unigene", "LocusLink", "GO"],
    ):
        mapping = gm.compose(path)
        precision, recall = precision_recall(mapping.pair_set(), truth)
        print(
            f"  {' -> '.join(path):<44}"
            f" {len(mapping):>5} assoc."
            f"  precision={precision:.3f} recall={recall:.3f}"
        )

    # Evidence combiners on a path through a Similarity-free chain are
    # identical; demonstrate the API difference anyway.
    product_map = gm.compose(["Unigene", "LocusLink", "GO"])
    min_map = gm.compose(["Unigene", "LocusLink", "GO"], combiner=min_evidence)
    print(
        f"\nUnigene->GO evidence: product min={product_map.min_evidence():.2f},"
        f" weakest-link min={min_map.min_evidence():.2f}"
    )

    # Materialize the derived mapping: later Map calls hit the database.
    inserted = gm.materialize(product_map)
    print(f"materialized Unigene<->GO as Composed ({inserted} associations)")
    stored = gm.map("Unigene", "GO")
    print(f"retrieved from store: {stored.describe()}")

    # Subsumed derivation over GO.
    inserted = gm.derive_subsumed("GO")
    print(f"\nderived Subsumed(GO): {inserted} ancestor/descendant pairs")
    taxonomy = gm.taxonomy("GO")
    root = sorted(taxonomy.roots())[0]
    print(
        f"GO root {root}: depth {taxonomy.max_depth()} taxonomy,"
        f" {len(taxonomy.descendants(root))} subsumed terms"
    )

    from repro.derived import query_with_subsumption

    loci = query_with_subsumption(gm.repository, "LocusLink", "GO", root)
    print(f"loci annotated anywhere under {root}: {len(loci)}")


if __name__ == "__main__":
    main()
