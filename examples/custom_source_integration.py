"""Integrating a brand-new source (the paper's maintainability claim).

"The functional split between the Parse and Import steps helps us to keep
the integration effort low ... the integration of a new source [is]
relatively easy, mainly consisting of the effort to write a new parser."

This example adds a fictional vendor source two ways:

1. with the zero-code :class:`GenericTsvParser` for tabular exports, and
2. with a ~20-line custom parser for a proprietary record format,

then shows the new annotations immediately participating in views,
composition and path finding — no schema work anywhere.

Run:  python examples/custom_source_integration.py
"""

from collections.abc import Iterable, Iterator

from repro import GenMapper
from repro.eav import EavRow
from repro.gam import SourceContent
from repro.parsers import GenericTsvParser, SourceParser

# An already-integrated public source the vendor cross-references.
LOCUSLINK = """\
>>100
OFFICIAL_SYMBOL: AAA1
GO: GO:0000001|widget assembly
>>101
OFFICIAL_SYMBOL: BBB2
GO: GO:0000002|widget disassembly
"""

# Case 1: the vendor ships a plain TSV -> no parser code at all.
VENDOR_TSV = """\
#source: ChipCo
#content: Gene
id\tName\tLocusLink\tSpotQuality
CC-001\tchip probe 1\t100\thigh
CC-002\tchip probe 2\t101\tlow
CC-003\tchip probe 3\t100|101\thigh
"""

# Case 2: the vendor ships a proprietary record format -> small parser.
VENDOR_RECORDS = """\
@probe NX-1
  locus = 100
  quality = 0.93
@probe NX-2
  locus = 101
  quality = 0.41
"""


class NanoChipParser(SourceParser):
    """The entire source-specific effort for the record format."""

    source_name = "NanoChip"
    content = SourceContent.GENE
    format_description = "@probe blocks with key = value lines"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        probe = None
        for line in lines:
            line = line.strip()
            if line.startswith("@probe"):
                probe = line.split(None, 1)[1]
            elif "=" in line and probe is not None:
                key, __, value = line.partition("=")
                key, value = key.strip(), value.strip()
                if key == "locus":
                    yield EavRow(probe, "LocusLink", value)
                elif key == "quality":
                    # A computed annotation with reduced evidence.
                    yield EavRow(probe, "Homology", probe, evidence=float(value))


def main() -> None:
    gm = GenMapper()
    gm.integrate_text(LOCUSLINK, "LocusLink")

    # 1. Tabular vendor data through the generic parser.
    tsv_parser = GenericTsvParser()
    report = gm.integrate_text(VENDOR_TSV, "ChipCo", parser=tsv_parser)
    print(report.summary())

    # 2. Proprietary format through the 20-line custom parser.
    report = gm.integrate_text(VENDOR_RECORDS, "NanoChip",
                               parser=NanoChipParser())
    print(report.summary())

    # The new sources are full citizens immediately:
    print("\nChipCo probes annotated with GO (composed through LocusLink):")
    view = gm.generate_view("ChipCo", ["LocusLink", "GO"], combine="AND")
    print(view.render())

    print("\nMapping path found automatically:")
    print("  " + " -> ".join(gm.find_path("ChipCo", "GO")))

    print("\nNanoChip -> GO via composition:")
    mapping = gm.map("NanoChip", "GO")
    for assoc in mapping:
        print(f"  {assoc.source_accession} <-> {assoc.target_accession}")

    print("\nSchema after integrating two unanticipated sources:")
    tables = [
        row[0]
        for row in gm.db.execute(
            "SELECT name FROM sqlite_master WHERE type='table' ORDER BY name"
        )
    ]
    print(f"  tables: {tables}  (unchanged: the four GAM tables + meta)")


if __name__ == "__main__":
    main()
