"""Query acceleration: the generation-aware mapping cache.

See ``docs/performance.md`` for the architecture (cache keys, the
generation protocol, single-flight) and tuning flags.
"""

from repro.cache.deps import capture_dependencies, capturing, record_dependency
from repro.cache.lru import GenerationalLru, LruCacheStats
from repro.cache.mapping_cache import (
    CACHE_ENV_VAR,
    CACHE_SIZE_ENV_VAR,
    DEFAULT_MAX_BYTES,
    DEFAULT_MAX_ENTRIES,
    MappingCache,
    cache_enabled_by_env,
    cache_size_from_env,
    estimate_size,
    spec_digest,
)

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_SIZE_ENV_VAR",
    "DEFAULT_MAX_BYTES",
    "DEFAULT_MAX_ENTRIES",
    "GenerationalLru",
    "LruCacheStats",
    "MappingCache",
    "cache_enabled_by_env",
    "capture_dependencies",
    "capturing",
    "record_dependency",
    "cache_size_from_env",
    "estimate_size",
    "spec_digest",
]
