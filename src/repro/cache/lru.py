"""A thread-safe, generation-aware LRU store with single-flight loading.

This is the mechanical half of the query acceleration layer (the policy
half — what gets cached under which key — lives in
:mod:`repro.cache.mapping_cache`).  Three properties matter:

* **bounded** — by entry count *and* by approximate bytes, so a handful
  of huge composed mappings cannot grow the process without limit;
* **generation-aware** — every entry records the data generation it was
  loaded under; a lookup against a newer generation treats the entry as
  stale, drops it, and reloads.  Invalidation is therefore implicit: a
  writer only has to bump the generation (see
  :meth:`repro.gam.database.GamDatabase.data_generation`), never to
  enumerate affected keys;
* **single-flight** — when several threads miss on the same key at once
  (the classic cold-cache stampede under a threaded WSGI server), exactly
  one runs the loader; the rest wait on the flight and then read the
  freshly stored entry instead of re-running the same database join.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable

#: Cache keys are flat tuples of hashables: (kind, source, target, variant).
CacheKey = tuple

#: Computes the approximate in-memory size of a cached value, in bytes.
SizeEstimator = Callable[[object], int]


class _Flight:
    """One in-progress load that followers can wait on."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class _Entry:
    __slots__ = ("value", "generation", "size", "stale")

    def __init__(self, value: object, generation: int, size: int) -> None:
        self.value = value
        self.generation = generation
        self.size = size
        #: Set when a newer generation first observes this entry.  Stale
        #: entries stay resident (until replaced or evicted) so degraded
        #: mode can serve them when the database is unavailable.
        self.stale = False


class LruCacheStats:
    """Plain-data counters of one :class:`GenerationalLru` (snapshot)."""

    __slots__ = (
        "hits", "misses", "evictions", "invalidations", "entries", "bytes"
    )

    def __init__(
        self,
        hits: int,
        misses: int,
        evictions: int,
        invalidations: int,
        entries: int,
        bytes_: int,
    ) -> None:
        self.hits = hits
        self.misses = misses
        self.evictions = evictions
        self.invalidations = invalidations
        self.entries = entries
        self.bytes = bytes_

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "entries": self.entries,
            "bytes": self.bytes,
            "hit_ratio": round(self.hit_ratio, 4),
        }


class GenerationalLru:
    """LRU of generation-stamped entries with per-key single-flight.

    Parameters
    ----------
    max_entries:
        Maximum number of live entries (>= 1).
    max_bytes:
        Approximate byte budget; eviction runs until the total estimated
        size fits.  ``None`` disables the byte bound.
    size_of:
        Estimates one value's size in bytes.  Estimates only steer
        eviction — they never need to be exact.
    """

    def __init__(
        self,
        max_entries: int = 256,
        max_bytes: int | None = 64 * 1024 * 1024,
        size_of: SizeEstimator | None = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self._size_of = size_of if size_of is not None else (lambda value: 0)
        self._lock = threading.Lock()
        self._entries: OrderedDict[CacheKey, _Entry] = OrderedDict()
        self._inflight: dict[CacheKey, _Flight] = {}
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # -- lookup ------------------------------------------------------------

    def get_or_load(
        self,
        key: CacheKey,
        generation: int,
        loader: Callable[[], object],
    ) -> tuple[object, bool]:
        """Return ``(value, was_hit)`` for ``key`` at ``generation``.

        A stored entry from an older generation counts as an
        *invalidation* plus a miss.  On a miss the calling thread either
        runs ``loader`` itself or — when another thread is already loading
        the same key — waits for that flight and re-reads.  Loader
        exceptions propagate to the thread that ran the loader; waiting
        threads then retry (one of them becomes the next leader).
        """
        while True:
            flight: _Flight | None = None
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    # ``>=``, not ``==``: generations are monotonic, so an
                    # entry stamped at-or-after the required generation is
                    # fresh.  Scoped lookups (MappingCache) pass the max
                    # generation of only the entry's dependency sources,
                    # which may trail the global clock the entry was
                    # stamped with.
                    if entry.generation >= generation and not entry.stale:
                        self._entries.move_to_end(key)
                        self._hits += 1
                        return entry.value, True
                    # Keep the stale value resident (it is the degraded-mode
                    # fallback — see stale_value()); a successful reload
                    # replaces it.  Count the invalidation only once.
                    if not entry.stale:
                        entry.stale = True
                        self._invalidations += 1
                flight = self._inflight.get(key)
                if flight is None:
                    self._inflight[key] = _Flight()
                    leader = True
                else:
                    leader = False
            if not leader:
                flight.event.wait()
                # Re-check from the top: the leader stored a fresh entry,
                # failed (we retry as leader), or the generation moved on.
                continue
            try:
                value = loader()
            except BaseException:
                self._finish_flight(key)
                raise
            with self._lock:
                self._misses += 1
                self._store_locked(key, value, generation)
            self._finish_flight(key)
            return value, False

    def peek(self, key: CacheKey, generation: int) -> bool:
        """True when ``key`` is cached at ``generation`` (no counters,
        no recency update) — used by ``/query/explain``."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and entry.generation >= generation

    def peek_generation(self, key: CacheKey) -> int | None:
        """The resident entry's generation stamp, or None (no counters).

        Lets :class:`repro.cache.MappingCache` classify an imminent
        invalidation as *scoped* (a dependency source moved) versus
        global before the reload happens.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.stale:
                return None
            return entry.generation

    def get(self, key: CacheKey, generation: int) -> object | None:
        """The cached value at this generation, or None (counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.generation >= generation and not entry.stale:
                self._entries.move_to_end(key)
                self._hits += 1
                return entry.value
            if entry is not None and not entry.stale:
                entry.stale = True
                self._invalidations += 1
            self._misses += 1
            return None

    def stale_value(self, key: CacheKey) -> tuple[object | None, bool]:
        """``(value, found)`` ignoring generation — the degraded-mode read.

        Serves whatever is resident, stale or fresh, without touching the
        hit/miss counters.  Callers (``MappingCache.get_stale``) decide
        whether serving old data beats failing.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None, False
            return entry.value, True

    # -- mutation ----------------------------------------------------------

    def put(self, key: CacheKey, value: object, generation: int) -> None:
        """Store a value directly (read-through callers use get_or_load)."""
        with self._lock:
            self._store_locked(key, value, generation)

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one key; True when something was removed."""
        with self._lock:
            if key in self._entries:
                self._drop_locked(key)
                self._invalidations += 1
                return True
            return False

    def clear(self) -> int:
        """Drop every entry; returns how many were removed."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self._invalidations += count
            return count

    # -- internals ---------------------------------------------------------

    def _store_locked(self, key: CacheKey, value: object, generation: int) -> None:
        if key in self._entries:
            self._drop_locked(key)
        size = max(0, int(self._size_of(value)))
        self._entries[key] = _Entry(value, generation, size)
        self._bytes += size
        self._evict_locked()

    def _drop_locked(self, key: CacheKey) -> None:
        entry = self._entries.pop(key)
        self._bytes -= entry.size

    def _evict_locked(self) -> None:
        while len(self._entries) > self.max_entries or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._entries) > 1
        ):
            __, entry = self._entries.popitem(last=False)
            self._bytes -= entry.size
            self._evictions += 1

    def _finish_flight(self, key: CacheKey) -> None:
        with self._lock:
            flight = self._inflight.pop(key, None)
        if flight is not None:
            flight.event.set()

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> LruCacheStats:
        with self._lock:
            return LruCacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                entries=len(self._entries),
                bytes_=self._bytes,
            )


class BoundedLruMap:
    """A plain bounded mapping with move-to-end recency eviction.

    The minimal mechanical core shared by bounded per-key state holders
    that need none of :class:`GenerationalLru`'s machinery (generations,
    single-flight, byte accounting) — e.g. the HTTP edge's per-client
    token buckets (:class:`repro.reliability.ratelimit.RateLimiter`),
    where an unbounded client map would let address-spoofing clients grow
    the process without limit.

    Not thread-safe: callers hold their own lock around every access.
    """

    __slots__ = ("max_entries", "evictions", "_entries")

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self.evictions = 0
        self._entries: OrderedDict = OrderedDict()

    def get(self, key: object) -> object | None:
        """The stored value (refreshing its recency), or None."""
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def set(self, key: object, value: object) -> None:
        """Store a value, evicting the least recently used past the bound."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)
