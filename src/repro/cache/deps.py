"""Dependency capture for scoped cache invalidation.

Cache keys are frozen tuples (``(kind, source, target, variant)``) and
cannot name every source a loader actually read: an auto-routed ``map``
call caches under ``(source, target)`` while its loader walks hidden
intermediate sources, and a view loader fans out across one mapping per
target.  So dependencies are discovered *at load time* instead: the
read-through cache opens a capture frame around the loader, and the few
chokepoints that read mapping data off the database
(:meth:`repro.gam.repository.GamRepository.fetch_mapping_associations`,
:func:`repro.operators.sql_engine.resolve_hop_rel`,
:func:`repro.derived.subsumed.load_taxonomy`, the view engines) call
:func:`record_dependency` with the source names they touched.

Frames stack per-thread, and a recorded dependency lands in **every**
active frame, so a nested cached load (view -> inner map) propagates its
dependencies outward whether the inner lookup hits or misses.  With no
frame active, :func:`record_dependency` is a cheap no-op — the hot read
path outside the cache pays one attribute lookup.

The captured set becomes the entry's dependency list in
:class:`repro.cache.MappingCache`, which validates the entry against the
max per-source generation of exactly those sources
(:meth:`repro.gam.database.GamDatabase.generation_of`) — the other half
of the scoped-invalidation protocol (``docs/performance.md``).

The protocol is storage-engine agnostic: on the sharded engine
(:mod:`repro.gam.shards`) a scoped write — including an atomic image
flip re-importing one source — bumps exactly the generations of the
sources it names, so warm entries for mappings on untouched shards keep
validating against unchanged generations and survive the flip.
"""

from __future__ import annotations

import contextlib
import threading
from collections.abc import Iterator

_capture_local = threading.local()


@contextlib.contextmanager
def capture_dependencies() -> Iterator[set[str]]:
    """Open a capture frame; yields the (mutable) dependency set."""
    frames = getattr(_capture_local, "frames", None)
    if frames is None:
        frames = _capture_local.frames = []
    frame: set[str] = set()
    frames.append(frame)
    try:
        yield frame
    finally:
        frames.pop()


def record_dependency(*source_names: str) -> None:
    """Record source names into every active capture frame (no-op when
    nothing on this thread is capturing)."""
    frames = getattr(_capture_local, "frames", None)
    if not frames:
        return
    for frame in frames:
        frame.update(source_names)


def capturing() -> bool:
    """True when at least one capture frame is active on this thread."""
    return bool(getattr(_capture_local, "frames", None))
