"""The read-through mapping cache (policy half of the acceleration layer).

GenMapper's interactive workload (paper Section 5.1) re-reads the same
few mappings over and over: every ``Map``, ``Compose`` and
``GenerateView`` call loads its legs row-by-row from the database.  The
:class:`MappingCache` keeps the loaded value objects — ``Mapping``
instances, parsed ``Taxonomy`` DAGs, composed path results and rendered
:class:`~repro.operators.views.AnnotationView` rows — in a bounded,
thread-safe LRU keyed on ``(kind, source, target, variant)``.

Correctness rests on **generation-based invalidation**: every entry is
stamped with the owning database's monotonic data generation
(:meth:`repro.gam.database.GamDatabase.data_generation`).  Any write —
import, materialization, association add, even a commit by another
process, detected through SQLite's ``PRAGMA data_version`` — moves the
generation forward, so the next lookup sees a stale stamp and reloads.
No caller ever has to flush anything.

Invalidation is **scoped** wherever possible: each entry remembers the
set of sources its loader actually read (captured through
:mod:`repro.cache.deps`), and freshness is judged against the max
per-source generation of only those sources
(:meth:`repro.gam.database.GamDatabase.generation_of`).  Re-importing
one source therefore leaves warm entries for untouched source pairs
intact; only writes that cannot be attributed (raw SQL outside a
:meth:`~repro.gam.database.GamDatabase.write_scope`, external-process
commits) fall back to invalidating everything via the global floor.
Scoped invalidations are counted under ``cache.scoped_invalidations``.

Hits, misses, evictions and invalidations are mirrored into the
observability registry (``cache.hit`` / ``cache.miss`` /
``cache.eviction`` / ``cache.invalidation`` counters plus the
``cache.hit_ratio``, ``cache.entries`` and ``cache.bytes`` gauges), so
``GET /metrics`` reports cache effectiveness live.
"""

from __future__ import annotations

import hashlib
import os
from collections.abc import Callable, Sequence

from repro.cache.deps import capture_dependencies, record_dependency
from repro.cache.lru import GenerationalLru
from repro.gam.database import GamDatabase
from repro.obs import MetricsRegistry, get_registry
from repro.obs.events import incr_event

#: Default maximum number of cached values.
DEFAULT_MAX_ENTRIES = 256

#: Default approximate byte budget (64 MiB).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Environment switch: ``REPRO_CACHE=off|0|false|no`` disables the cache
#: everywhere a :func:`cache_enabled_by_env` caller consults it.
CACHE_ENV_VAR = "REPRO_CACHE"

#: Environment override for the entry bound (``REPRO_CACHE_SIZE=512``).
CACHE_SIZE_ENV_VAR = "REPRO_CACHE_SIZE"

#: Rough per-association footprint: one Association object (three slots),
#: two accession strings, dict/tuple overhead amortized.
_ASSOCIATION_BYTES = 160

#: Rough per-view-cell footprint.
_CELL_BYTES = 64

#: Rough per-taxonomy-edge footprint (parents + children sets).
_EDGE_BYTES = 200


def cache_enabled_by_env(default: bool = True) -> bool:
    """Whether the environment allows caching (``REPRO_CACHE``)."""
    raw = os.environ.get(CACHE_ENV_VAR)
    if raw is None:
        return default
    return raw.strip().lower() not in ("off", "0", "false", "no", "disabled")


def cache_size_from_env(default: int = DEFAULT_MAX_ENTRIES) -> int:
    """The entry bound, honouring ``REPRO_CACHE_SIZE``."""
    raw = os.environ.get(CACHE_SIZE_ENV_VAR)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


def estimate_size(value: object) -> int:
    """Approximate in-memory size of a cacheable value, in bytes.

    Only steers LRU eviction; a constant-per-row model is plenty.
    """
    associations = getattr(value, "associations", None)
    if associations is not None:  # Mapping
        return 96 + _ASSOCIATION_BYTES * len(associations)
    rows = getattr(value, "rows", None)
    if rows is not None:  # AnnotationView
        width = len(getattr(value, "columns", ())) or 1
        return 96 + _CELL_BYTES * width * len(rows)
    if hasattr(value, "subsumed_pairs"):  # Taxonomy
        return 96 + _EDGE_BYTES * len(value)
    return 256


def spec_digest(*parts: object) -> str:
    """A stable short digest of arbitrary key parts (view cache variants).

    Collections must be pre-sorted by the caller; the digest is over the
    ``repr`` of the parts, which is deterministic for the plain-data
    values used in keys (strings, ints, bools, tuples, None).
    """
    payload = "\x1f".join(repr(part) for part in parts)
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


class MappingCache:
    """Generation-aware read-through cache bound to one GAM database.

    Parameters
    ----------
    db:
        The database whose data generation stamps and invalidates entries.
    max_entries / max_bytes:
        LRU bounds (see :class:`repro.cache.lru.GenerationalLru`).
    registry:
        Metrics registry for the ``cache.*`` series (process default when
        omitted).
    """

    def __init__(
        self,
        db: GamDatabase,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        max_bytes: int | None = DEFAULT_MAX_BYTES,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.db = db
        self._lru = GenerationalLru(
            max_entries=max_entries, max_bytes=max_bytes, size_of=estimate_size
        )
        self._registry = registry
        # Metrics are deltas against the last published LRU counters so
        # shared registries (the process default) stay monotonic.
        self._published = {"hit": 0, "miss": 0, "eviction": 0, "invalidation": 0}
        # Source names each key's loader read, captured on load (kept
        # across eviction so a reloaded key validates scoped immediately).
        self._deps: dict[tuple, frozenset[str]] = {}
        self._scoped_invalidations = 0

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry if self._registry is not None else get_registry()

    # -- key construction --------------------------------------------------

    @staticmethod
    def mapping_key(source: str, target: str, variant: str = "") -> tuple:
        return ("mapping", str(source), str(target), variant)

    @staticmethod
    def composed_key(path: Sequence[str], combiner: str) -> tuple:
        steps = tuple(str(step) for step in path)
        return ("composed", steps[0], steps[-1],
                "->".join(steps) + "#" + combiner)

    @staticmethod
    def taxonomy_key(source: str) -> tuple:
        return ("taxonomy", str(source), str(source), "")

    @staticmethod
    def view_key(source: str, variant: str) -> tuple:
        return ("view", str(source), "", variant)

    # -- core read-through -------------------------------------------------

    def get_or_load(self, key: tuple, loader: Callable[[], object]) -> object:
        """Read-through lookup at the database's current generation."""
        value, __ = self.lookup(key, loader)
        return value

    def lookup(
        self, key: tuple, loader: Callable[[], object]
    ) -> tuple[object, bool]:
        """Like :meth:`get_or_load` but also reports ``was_hit``.

        Freshness is scoped when the key's dependency sources are known
        (from a previous load): the entry must be at least as new as the
        max generation of *those sources only*, so writes tagged to other
        sources leave it warm.  A first load (dependencies unknown)
        validates against the global generation, and the loader runs
        inside a capture frame so its dependencies are known from then
        on.  Loads with an empty capture (a loader reading nothing
        attributable) stay on global validation — always safe.
        """
        generation = self.db.data_generation()
        deps = self._deps.get(key)
        if deps:
            required = self.db.generation_of(deps)
            stamp = self._lru.peek_generation(key)
            if stamp is not None and stamp < required:
                # The imminent reload is caused by a dependency source
                # moving past the stamp — a *scoped* invalidation (a
                # floor-raising write would be indistinguishable from a
                # global one, so only count when the floor alone would
                # have kept the entry fresh).
                if stamp >= self.db.generation_of(()):
                    self._scoped_invalidations += 1
                    self.registry.counter("cache.scoped_invalidations").inc()
        else:
            required = generation

        def scoped_loader() -> object:
            with capture_dependencies() as captured:
                value = loader()
            self._deps[key] = frozenset(captured)
            return value

        value, was_hit = self._lru.get_or_load(key, required, scoped_loader)
        if was_hit:
            # Propagate this entry's dependencies to any outer capture
            # (a cached view composing over a cached mapping must inherit
            # the mapping's sources even when the inner lookup hits).
            stored = self._deps.get(key)
            if stored:
                record_dependency(*stored)
        incr_event("cache_hits" if was_hit else "cache_misses")
        self._publish_metrics()
        return value, was_hit

    def get_stale(self, key: tuple) -> tuple[object | None, bool]:
        """``(value, found)`` ignoring freshness — degraded-mode serving.

        When the database is unavailable (circuit open, retries
        exhausted), yesterday's mapping is usually better than a 500;
        stale entries stay resident until successfully reloaded exactly
        so this read has something to return.  Counted under
        ``cache.stale_serves``.
        """
        value, found = self._lru.stale_value(key)
        if found:
            self.registry.counter("cache.stale_serves").inc()
            incr_event("cache_stale_serves")
        return value, found

    def is_cached(self, key: tuple) -> bool:
        """True when ``key`` would hit right now (explain support; does
        not touch hit/miss counters or recency)."""
        generation = self.db.data_generation()
        deps = self._deps.get(key)
        required = self.db.generation_of(deps) if deps else generation
        return self._lru.peek(key, required)

    def dependencies(self, key: tuple) -> tuple[str, ...]:
        """Sorted source names the key's loader last read (explain
        support; empty when the key has never loaded)."""
        return tuple(sorted(self._deps.get(key, ())))

    def invalidate_all(self) -> int:
        """Drop everything (admin/testing aid; normal invalidation is
        generation-driven and needs no manual flush)."""
        dropped = self._lru.clear()
        self._deps.clear()
        self._publish_metrics()
        return dropped

    # -- metrics / stats ---------------------------------------------------

    def _publish_metrics(self) -> None:
        stats = self._lru.stats()
        current = {
            "hit": stats.hits,
            "miss": stats.misses,
            "eviction": stats.evictions,
            "invalidation": stats.invalidations,
        }
        registry = self.registry
        for name, value in current.items():
            delta = value - self._published[name]
            if delta > 0:
                registry.counter(f"cache.{name}").inc(delta)
                self._published[name] = value
        registry.gauge("cache.hit_ratio").set(round(stats.hit_ratio, 4))
        registry.gauge("cache.entries").set(stats.entries)
        registry.gauge("cache.bytes").set(stats.bytes)

    def stats(self) -> dict:
        """Plain-data stats block (``GET /metrics``, CLI, tests)."""
        payload = self._lru.stats().as_dict()
        payload["max_entries"] = self._lru.max_entries
        payload["max_bytes"] = self._lru.max_bytes
        payload["generation"] = self.db.data_generation()
        vector = self.db.generation_vector()
        payload["generation_floor"] = vector["floor"]
        payload["scoped_sources"] = len(vector["sources"])
        payload["scoped_invalidations"] = self._scoped_invalidations
        return payload

    def __len__(self) -> int:
        return len(self._lru)
