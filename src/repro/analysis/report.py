"""The profiling report document — the study's human-readable artifact.

The Section 5.2 collaboration produced, for the biologists, a document
answering: how many genes were measured/expressed/changed, which GO
functions are enriched among the changed genes, how do changed genes
distribute over the taxonomy's top categories, and which functions look
conserved vs changed.  :func:`render_report` assembles exactly that from a
:class:`~repro.analysis.profiling.ProfilingReport` plus the annotation
mapping and taxonomy, as plain text or Markdown.
"""

from __future__ import annotations

from repro.analysis.classification import conserved_and_changed, level_profile
from repro.analysis.profiling import ProfilingReport
from repro.operators.mapping import Mapping
from repro.taxonomy.dag import Taxonomy


def render_report(
    report: ProfilingReport,
    annotation: Mapping,
    taxonomy: Taxonomy,
    term_names: dict[str, str] | None = None,
    fdr: float = 0.05,
    level: int = 1,
    markdown: bool = False,
) -> str:
    """Assemble the full study report.

    Parameters
    ----------
    report:
        Output of :meth:`FunctionalProfiler.run`.
    annotation:
        The gene → taxonomy mapping the profiling used.
    taxonomy:
        The taxonomy for rollups.
    term_names:
        Optional accession → display-name lookup.
    fdr:
        Threshold for the enriched-terms section.
    level:
        Taxonomy depth for the category-profile section.
    markdown:
        Use Markdown headings/tables instead of plain text.
    """
    names = term_names or {}

    def display(term: str) -> str:
        name = names.get(term)
        return f"{term} ({name})" if name else term

    def heading(text: str) -> str:
        return f"## {text}" if markdown else f"== {text} =="

    lines = []
    title = f"Functional profiling report ({report.taxonomy_source})"
    lines.append(f"# {title}" if markdown else title)
    lines.append("")

    # 1. Headline numbers (the paper's 40k -> 20k -> 2.5k shape).
    lines.append(heading("Expression summary"))
    lines.append(f"probes measured:            {report.n_probes}")
    lines.append(f"expressed:                  {len(report.expressed_probes)}")
    lines.append(f"differentially expressed:   {len(report.differential)}")
    lines.append(f"background genes:           {len(report.population_genes)}")
    lines.append(f"study (changed) genes:      {len(report.study_genes)}")
    lines.append("")

    # 2. Enriched terms.
    significant = report.significant_terms(fdr)
    lines.append(heading(f"Enriched terms (FDR {fdr:.0%})"))
    if not significant:
        lines.append("(none reached significance)")
    else:
        header = f"{'term':<40} {'k/n':>9} {'K/N':>11} {'q':>10}"
        if markdown:
            lines.append("| term | k/n | K/N | q |")
            lines.append("|---|---|---|---|")
        else:
            lines.append(header)
        for result in significant:
            if markdown:
                lines.append(
                    f"| {display(result.term)}"
                    f" | {result.study_count}/{result.study_size}"
                    f" | {result.population_count}/{result.population_size}"
                    f" | {result.q_value:.2e} |"
                )
            else:
                lines.append(
                    f"{display(result.term):<40}"
                    f" {result.study_count:>4}/{result.study_size:<4}"
                    f" {result.population_count:>5}/{result.population_size:<5}"
                    f" {result.q_value:>10.2e}"
                )
    lines.append("")

    # 3. Category profile at the chosen taxonomy level.
    lines.append(heading(f"Study genes per level-{level} category"))
    profile = level_profile(
        annotation, taxonomy, depth=level, genes=report.study_genes
    )
    if not profile:
        lines.append("(no study gene maps to this level)")
    for term, count in sorted(profile.items(), key=lambda kv: -kv[1]):
        lines.append(f"{display(term):<44} {count:>4} genes")
    lines.append("")

    # 4. Conserved vs changed functions.
    lines.append(heading("Conserved vs changed functions"))
    conserved_genes = report.population_genes - report.study_genes
    comparisons = conserved_and_changed(
        annotation,
        taxonomy,
        first_genes=conserved_genes,
        second_genes=report.study_genes,
        min_size=3,
    )
    if not comparisons:
        lines.append("(no term met the minimum size)")
    else:
        for comparison in comparisons[:10]:
            marker = (
                "CHANGED  " if comparison.second_fraction >= 0.5
                else "conserved"
            )
            lines.append(
                f"{marker}  {display(comparison.term):<40}"
                f" changed {comparison.second_count:>3}"
                f" / conserved {comparison.first_count:>3}"
                f"  ({comparison.second_fraction:.0%} changed)"
            )
    return "\n".join(lines)
