"""Expression-detection and differential-expression statistics.

Reproduces the upstream statistics of the paper's Section 5.2 application:
from ~40k measured genes, ~20k were detected as expressed, of which ~2.5k
showed significantly different expression between humans and chimpanzees.

* :func:`detect_expressed` — a probe is expressed when its mean log2
  signal across all arrays exceeds a threshold (a simplified MAS
  present/absent call).
* :func:`detect_differential` — Welch's t-test per probe between the two
  species, with Benjamini-Hochberg FDR control across probes.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy import stats

from repro.datagen.expression import ExpressionStudy


@dataclasses.dataclass(frozen=True, slots=True)
class DifferentialResult:
    """Per-probe test result."""

    probe_id: str
    t_statistic: float
    p_value: float
    q_value: float
    log_fold_change: float

    @property
    def direction(self) -> str:
        """"up" when expression is higher in the second species."""
        return "up" if self.log_fold_change > 0 else "down"


def detect_expressed(study: ExpressionStudy, threshold: float = 6.0) -> set[str]:
    """Probes whose mean signal across all samples exceeds ``threshold``."""
    means = study.values.mean(axis=1)
    return {
        probe
        for probe, mean in zip(study.probe_ids, means)
        if mean > threshold
    }


def benjamini_hochberg(p_values: np.ndarray) -> np.ndarray:
    """Benjamini-Hochberg adjusted p-values (q-values).

    Standard step-up procedure: q_(i) = min over j >= i of
    ``p_(j) * m / j`` for the sorted p-values, mapped back to input order.
    """
    p_values = np.asarray(p_values, dtype=float)
    m = len(p_values)
    if m == 0:
        return p_values.copy()
    order = np.argsort(p_values)
    ranked = p_values[order] * m / np.arange(1, m + 1)
    # Enforce monotonicity from the largest rank downward.
    ranked = np.minimum.accumulate(ranked[::-1])[::-1]
    q_values = np.empty(m)
    q_values[order] = np.clip(ranked, 0.0, 1.0)
    return q_values


def detect_differential(
    study: ExpressionStudy,
    expressed: set[str] | None = None,
    fdr: float = 0.05,
    species_pair: tuple[str, str] = ("human", "chimp"),
) -> list[DifferentialResult]:
    """Probes significantly different between the species at the given FDR.

    Only expressed probes are tested (pass ``expressed=None`` to call
    :func:`detect_expressed` with its default threshold first).  Returns
    the significant probes sorted by q-value.
    """
    if expressed is None:
        expressed = detect_expressed(study)
    first_columns = study.sample_indices(species_pair[0])
    second_columns = study.sample_indices(species_pair[1])
    if len(first_columns) < 2 or len(second_columns) < 2:
        raise ValueError("need at least two samples per species for a t-test")
    index = study.probe_index()
    tested = sorted(probe for probe in expressed if probe in index)
    if not tested:
        return []
    rows = np.array([index[probe] for probe in tested])
    first = study.values[np.ix_(rows, first_columns)]
    second = study.values[np.ix_(rows, second_columns)]
    t_statistics, p_values = stats.ttest_ind(first, second, axis=1, equal_var=False)
    # Zero-variance probes yield NaN statistics; treat them as clearly
    # non-significant rather than letting NaN poison the FDR correction.
    t_statistics = np.nan_to_num(t_statistics, nan=0.0)
    p_values = np.nan_to_num(p_values, nan=1.0)
    q_values = benjamini_hochberg(p_values)
    fold_changes = second.mean(axis=1) - first.mean(axis=1)
    results = [
        DifferentialResult(
            probe_id=probe,
            t_statistic=float(t),
            p_value=float(p),
            q_value=float(q),
            log_fold_change=float(lfc),
        )
        for probe, t, p, q, lfc in zip(
            tested, t_statistics, p_values, q_values, fold_changes
        )
        if q <= fdr
    ]
    results.sort(key=lambda result: result.q_value)
    return results
