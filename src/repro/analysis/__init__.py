"""Functional profiling analysis (paper Section 5.2)."""

from repro.analysis.classification import (
    TermClassification,
    TermComparison,
    classify,
    conserved_and_changed,
    level_profile,
)
from repro.analysis.coverage import (
    CoverageEntry,
    coverage_matrix,
    render_coverage,
    source_coverage,
)
from repro.analysis.diffexpr import (
    DifferentialResult,
    benjamini_hochberg,
    detect_differential,
    detect_expressed,
)
from repro.analysis.enrichment import EnrichmentResult, enrich, significant
from repro.analysis.profiling import FunctionalProfiler, ProfilingReport
from repro.analysis.report import render_report

__all__ = [
    "CoverageEntry",
    "DifferentialResult",
    "TermClassification",
    "TermComparison",
    "classify",
    "conserved_and_changed",
    "coverage_matrix",
    "level_profile",
    "render_coverage",
    "render_report",
    "source_coverage",
    "EnrichmentResult",
    "FunctionalProfiler",
    "ProfilingReport",
    "benjamini_hochberg",
    "detect_differential",
    "detect_expressed",
    "enrich",
    "significant",
]
