"""GO-term enrichment over annotation mappings (paper Section 5.2).

"The genes are classified according to the GO function taxonomy in order to
identify the functions which are conserved or have changed" — implemented
as the standard hypergeometric over-representation test:

given a population of N annotated genes of which K carry a term, and a
study set of n genes (the differentially expressed ones) of which k carry
the term, the enrichment p-value is ``P[X >= k]`` for
``X ~ Hypergeom(N, K, n)``.

The taxonomy rollup uses the Subsumed structure: a gene annotated with a
term counts for every ancestor of that term, so "comprehensive statistical
analysis over the entire GO taxonomy" tests inner terms too, not only the
leaf annotations.  Works for any taxonomy with IS_A structure — the paper
names Enzyme as the other application.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from scipy import stats

from repro.analysis.diffexpr import benjamini_hochberg
from repro.derived.subsumed import rollup_mapping
from repro.operators.mapping import Mapping
from repro.taxonomy.dag import Taxonomy


@dataclasses.dataclass(frozen=True, slots=True)
class EnrichmentResult:
    """One term's over-representation statistics."""

    term: str
    study_count: int
    study_size: int
    population_count: int
    population_size: int
    p_value: float
    q_value: float

    @property
    def fold_enrichment(self) -> float:
        """Observed/expected study-count ratio (inf when expected is 0)."""
        expected = (
            self.population_count * self.study_size / self.population_size
            if self.population_size
            else 0.0
        )
        if expected == 0.0:
            return float("inf") if self.study_count else 0.0
        return self.study_count / expected


def enrich(
    annotation: Mapping,
    study_objects: Iterable[str],
    population_objects: Iterable[str] | None = None,
    taxonomy: Taxonomy | None = None,
    min_term_size: int = 2,
) -> list[EnrichmentResult]:
    """Test every annotated term for over-representation in the study set.

    Parameters
    ----------
    annotation:
        Object → term mapping (e.g. LocusLink ↔ GO).
    study_objects:
        The interesting objects (e.g. differentially expressed genes).
    population_objects:
        The background; defaults to the annotation's domain.  Objects
        without annotations are ignored (they carry no term information).
    taxonomy:
        When given, annotations are rolled up to ancestors first, so inner
        taxonomy terms are tested over their whole subsumed subtree.
    min_term_size:
        Terms annotating fewer than this many population objects are
        skipped (they cannot reach significance and inflate the FDR
        correction).

    Returns all tested terms sorted by q-value then term accession.
    """
    if taxonomy is not None:
        annotation = rollup_mapping(annotation, taxonomy)
    if population_objects is None:
        population = annotation.domain()
    else:
        population = set(population_objects) & annotation.domain()
    study = set(study_objects) & population

    objects_per_term: dict[str, set[str]] = {}
    for assoc in annotation:
        if assoc.source_accession in population:
            objects_per_term.setdefault(assoc.target_accession, set()).add(
                assoc.source_accession
            )

    population_size = len(population)
    study_size = len(study)
    terms = []
    p_values = []
    for term, annotated in sorted(objects_per_term.items()):
        population_count = len(annotated)
        if population_count < min_term_size:
            continue
        study_count = len(annotated & study)
        p_value = float(
            stats.hypergeom.sf(
                study_count - 1, population_size, population_count, study_size
            )
        )
        terms.append((term, study_count, population_count))
        p_values.append(p_value)

    if not terms:
        return []
    q_values = benjamini_hochberg(p_values)
    results = [
        EnrichmentResult(
            term=term,
            study_count=study_count,
            study_size=study_size,
            population_count=population_count,
            population_size=population_size,
            p_value=p_value,
            q_value=float(q_value),
        )
        for (term, study_count, population_count), p_value, q_value in zip(
            terms, p_values, q_values
        )
    ]
    results.sort(key=lambda result: (result.q_value, result.term))
    return results


def significant(
    results: list[EnrichmentResult], fdr: float = 0.05
) -> list[EnrichmentResult]:
    """The results passing an FDR threshold."""
    return [result for result in results if result.q_value <= fdr]
