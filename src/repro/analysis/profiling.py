"""Large-scale gene functional profiling (paper Section 5.2).

The pipeline mirrors the human/chimpanzee study exactly:

1. detect expressed probes and the differentially expressed subset
   (:mod:`repro.analysis.diffexpr`),
2. map the proprietary Affymetrix probes to "the generally accepted gene
   representation UniGene" using GenMapper's mappings,
3. derive GO annotations for UniGene "from the mappings provided by
   LocusLink" — a ``Compose`` along Unigene ↔ LocusLink ↔ GO,
4. use the IS_A/Subsumed structure for a comprehensive statistical
   analysis over the entire GO taxonomy
   (:mod:`repro.analysis.enrichment`).

The same methodology applies "to other taxonomies, e.g. Enzyme" — pass
``taxonomy_source="Enzyme"`` and the pipeline rolls up EC classes instead.
"""

from __future__ import annotations

import dataclasses

from repro.analysis.diffexpr import (
    DifferentialResult,
    detect_differential,
    detect_expressed,
)
from repro.analysis.enrichment import EnrichmentResult, enrich, significant
from repro.core.genmapper import GenMapper
from repro.datagen.expression import ExpressionStudy
from repro.operators.mapping import Mapping


@dataclasses.dataclass(frozen=True)
class ProfilingReport:
    """Everything the profiling pipeline produced."""

    n_probes: int
    expressed_probes: frozenset[str]
    differential: tuple[DifferentialResult, ...]
    #: Expressed probes translated to the gene representation.
    population_genes: frozenset[str]
    #: Differential probes translated to the gene representation.
    study_genes: frozenset[str]
    enrichment: tuple[EnrichmentResult, ...]
    #: The taxonomy source the enrichment ran against.
    taxonomy_source: str

    @property
    def differential_probes(self) -> set[str]:
        """Probe ids of the significant differential results."""
        return {result.probe_id for result in self.differential}

    def significant_terms(self, fdr: float = 0.05) -> list[EnrichmentResult]:
        """Enriched terms passing the FDR threshold."""
        return significant(list(self.enrichment), fdr)

    def summary(self) -> str:
        """The Section 5.2 headline numbers for this run."""
        return (
            f"{self.n_probes} probes measured,"
            f" {len(self.expressed_probes)} expressed,"
            f" {len(self.differential)} differentially expressed;"
            f" {len(self.study_genes)} study genes vs"
            f" {len(self.population_genes)} background genes;"
            f" {len(self.significant_terms())} enriched"
            f" {self.taxonomy_source} terms"
        )


class FunctionalProfiler:
    """The probe → gene → taxonomy profiling pipeline over a GenMapper."""

    def __init__(
        self,
        genmapper: GenMapper,
        probe_source: str = "NetAffx",
        gene_source: str = "Unigene",
        locus_source: str = "LocusLink",
        taxonomy_source: str = "GO",
    ) -> None:
        self.genmapper = genmapper
        self.probe_source = probe_source
        self.gene_source = gene_source
        self.locus_source = locus_source
        self.taxonomy_source = taxonomy_source

    def probe_to_gene(self) -> Mapping:
        """Proprietary probes → accepted gene representation."""
        return self.genmapper.map(self.probe_source, self.gene_source)

    def gene_annotation(self) -> Mapping:
        """Gene → taxonomy annotations, derived through the locus source.

        The composition is the paper's example: Unigene ↔ GO derived from
        Unigene ↔ LocusLink and LocusLink ↔ GO.
        """
        return self.genmapper.compose(
            [self.gene_source, self.locus_source, self.taxonomy_source]
        )

    def run(
        self,
        study: ExpressionStudy,
        expression_threshold: float = 6.0,
        fdr: float = 0.05,
        rollup: bool = True,
    ) -> ProfilingReport:
        """Run the full pipeline on an expression study."""
        expressed = detect_expressed(study, threshold=expression_threshold)
        differential = detect_differential(study, expressed=expressed, fdr=fdr)
        probe_gene = self.probe_to_gene()
        population_genes = probe_gene.restrict_domain(expressed).range()
        study_genes = probe_gene.restrict_domain(
            {result.probe_id for result in differential}
        ).range()
        annotation = self.gene_annotation()
        taxonomy = (
            self.genmapper.taxonomy(self.taxonomy_source) if rollup else None
        )
        enrichment = enrich(
            annotation,
            study_objects=study_genes,
            population_objects=population_genes,
            taxonomy=taxonomy,
        )
        return ProfilingReport(
            n_probes=len(study.probe_ids),
            expressed_probes=frozenset(expressed),
            differential=tuple(differential),
            population_genes=frozenset(population_genes),
            study_genes=frozenset(study_genes),
            enrichment=tuple(enrichment),
            taxonomy_source=self.taxonomy_source,
        )
