"""Annotation coverage statistics over a GAM database.

Curators and analysts need to know *how well annotated* a source is
before trusting profile statistics: what fraction of LocusLink loci have
GO annotations?  How many probes lost their locus link?  This module
computes the coverage matrix the Section 5 deployment statistics imply.
"""

from __future__ import annotations

import dataclasses

from repro.gam.records import Source
from repro.gam.repository import GamRepository


@dataclasses.dataclass(frozen=True, slots=True)
class CoverageEntry:
    """Annotation coverage of one (source, target) mapping."""

    source: str
    target: str
    rel_type: str
    #: Objects of the source.
    source_objects: int
    #: Source objects with at least one association in this mapping.
    annotated_objects: int
    associations: int

    @property
    def coverage(self) -> float:
        """Fraction of source objects carrying this annotation."""
        if not self.source_objects:
            return 0.0
        return self.annotated_objects / self.source_objects

    @property
    def mean_annotations(self) -> float:
        """Associations per annotated object."""
        if not self.annotated_objects:
            return 0.0
        return self.associations / self.annotated_objects


def source_coverage(
    repository: GamRepository, source: "str | Source"
) -> list[CoverageEntry]:
    """Coverage of every outgoing mapping of one source, best first."""
    src = repository.get_source(source)
    total = repository.count_objects(src)
    sources_by_id = {s.source_id: s for s in repository.list_sources()}
    entries = []
    for rel in repository.find_source_rels(source1=src):
        if not rel.is_mapping:
            continue
        partner = sources_by_id[rel.source2_id]
        row = repository.db.execute(
            "SELECT count(*) AS assocs,"
            "       count(DISTINCT object1_id) AS annotated"
            " FROM object_rel WHERE src_rel_id = ?",
            (rel.src_rel_id,),
        ).fetchone()
        entries.append(
            CoverageEntry(
                source=src.name,
                target=partner.name,
                rel_type=rel.type.value,
                source_objects=total,
                annotated_objects=row["annotated"],
                associations=row["assocs"],
            )
        )
    entries.sort(key=lambda entry: (-entry.coverage, entry.target))
    return entries


def coverage_matrix(
    repository: GamRepository,
) -> dict[tuple[str, str], CoverageEntry]:
    """Coverage of every mapping in the database, keyed by endpoints."""
    matrix: dict[tuple[str, str], CoverageEntry] = {}
    for source in repository.list_sources():
        for entry in source_coverage(repository, source):
            matrix[(entry.source, entry.target)] = entry
    return matrix


def render_coverage(entries: list[CoverageEntry]) -> str:
    """A fixed-width coverage table (CLI ``coverage`` output)."""
    if not entries:
        return "(no outgoing mappings)"
    lines = [
        f"{'target':<24} {'type':<10} {'coverage':>9} {'annotated':>10}"
        f" {'assoc.':>8} {'per-obj':>8}"
    ]
    for entry in entries:
        lines.append(
            f"{entry.target:<24} {entry.rel_type:<10}"
            f" {entry.coverage:>8.1%} "
            f"{entry.annotated_objects:>9}/{entry.source_objects:<4}"
            f" {entry.associations:>7} {entry.mean_annotations:>8.2f}"
        )
    return "\n".join(lines)
