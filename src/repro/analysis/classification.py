"""Taxonomy classification: distributing genes over a term hierarchy.

Paper Section 5.2: "the genes are classified according to the GO function
taxonomy in order to identify the functions, which are conserved or have
changed between humans and chimpanzees".  Beyond the hypergeometric test
(:mod:`repro.analysis.enrichment`), the study needs the *classification*
itself:

* :func:`classify` — per-term gene sets with subsumption rollup, at every
  taxonomy level, i.e. the profile table biologists read;
* :func:`level_profile` — gene counts per term restricted to one taxonomy
  depth (the "GO slim"-style summary);
* :func:`conserved_and_changed` — per-term comparison of two gene sets
  (e.g. conserved vs differentially expressed genes, or up- vs
  down-regulated), the direct "conserved or changed functions" output.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable

from repro.derived.subsumed import rollup_mapping
from repro.operators.mapping import Mapping
from repro.taxonomy.dag import Taxonomy


@dataclasses.dataclass(frozen=True)
class TermClassification:
    """One term's classified gene sets."""

    term: str
    depth: int
    genes: frozenset[str]

    @property
    def size(self) -> int:
        return len(self.genes)


def classify(
    annotation: Mapping,
    taxonomy: Taxonomy,
    genes: Iterable[str] | None = None,
) -> dict[str, TermClassification]:
    """Classify genes into every taxonomy term, rolled up the hierarchy.

    A gene annotated with a term counts for that term and all its
    ancestors, so inner terms aggregate their whole subsumed subtree.
    Returns term -> classification for terms with at least one gene.
    """
    rolled = rollup_mapping(annotation, taxonomy)
    if genes is not None:
        rolled = rolled.restrict_domain(genes)
    per_term: dict[str, set[str]] = {}
    for assoc in rolled:
        per_term.setdefault(assoc.target_accession, set()).add(
            assoc.source_accession
        )
    result = {}
    for term, members in per_term.items():
        depth = taxonomy.depth(term) if term in taxonomy else 0
        result[term] = TermClassification(
            term=term, depth=depth, genes=frozenset(members)
        )
    return result


def level_profile(
    annotation: Mapping,
    taxonomy: Taxonomy,
    depth: int,
    genes: Iterable[str] | None = None,
) -> dict[str, int]:
    """Gene counts per term at exactly one taxonomy depth.

    The "GO slim" view: how do my genes distribute over the (say) level-2
    functional categories?  Terms outside the taxonomy are skipped.
    """
    classified = classify(annotation, taxonomy, genes)
    return {
        term: item.size
        for term, item in sorted(classified.items())
        if term in taxonomy and item.depth == depth
    }


@dataclasses.dataclass(frozen=True)
class TermComparison:
    """One term's membership in two gene sets."""

    term: str
    depth: int
    first_count: int
    second_count: int

    @property
    def total(self) -> int:
        return self.first_count + self.second_count

    @property
    def second_fraction(self) -> float:
        """Share of the second set among the term's classified genes."""
        if not self.total:
            return 0.0
        return self.second_count / self.total


def conserved_and_changed(
    annotation: Mapping,
    taxonomy: Taxonomy,
    first_genes: Iterable[str],
    second_genes: Iterable[str],
    min_size: int = 1,
) -> list[TermComparison]:
    """Compare two gene sets term by term.

    The Section 5.2 reading: ``first_genes`` = genes with conserved
    expression, ``second_genes`` = differentially expressed genes; a term
    whose ``second_fraction`` is high marks a *changed* function, a term
    where it is near zero a *conserved* one.  Sorted by descending
    ``second_fraction`` then term.
    """
    first = classify(annotation, taxonomy, first_genes)
    second = classify(annotation, taxonomy, second_genes)
    comparisons = []
    for term in sorted(set(first) | set(second)):
        first_count = first[term].size if term in first else 0
        second_count = second[term].size if term in second else 0
        if first_count + second_count < min_size:
            continue
        depth = taxonomy.depth(term) if term in taxonomy else 0
        comparisons.append(
            TermComparison(
                term=term,
                depth=depth,
                first_count=first_count,
                second_count=second_count,
            )
        )
    comparisons.sort(key=lambda item: (-item.second_fraction, item.term))
    return comparisons
