"""Materialization of Composed relationships (paper Sections 1 and 3).

Results of ``Compose`` that are of general interest — e.g. the derived
mapping Unigene ↔ GO — can be materialized in the central database so that
subsequent ``Map`` calls and annotation views retrieve them like any
imported mapping, without re-running the join.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.gam.enums import RelType
from repro.gam.records import Source, SourceRel
from repro.gam.repository import GamRepository
from repro.operators.compose import (
    EvidenceCombiner,
    _sql_combiner_name,
    compose,
    materialization_rows,
    product_evidence,
)
from repro.operators.mapping import Mapping


def materialize_mapping(
    repository: GamRepository,
    mapping: Mapping,
    rel_type: RelType = RelType.COMPOSED,
) -> tuple[SourceRel, int]:
    """Store an in-memory mapping as a source relationship + associations.

    Target objects referenced by the mapping must already exist (they do,
    for any mapping produced by Map/Compose over imported data).  Returns
    the relationship and the number of associations inserted.
    """
    source = repository.get_source(mapping.source)
    target = repository.get_source(mapping.target)
    with repository.db.transaction():
        rel = repository.ensure_source_rel(source, target, rel_type)
        inserted = repository.add_associations(rel, materialization_rows(mapping))
    return rel, inserted


def derive_composed(
    repository: GamRepository,
    path: Sequence["str | Source"],
    combiner: EvidenceCombiner = product_evidence,
    materialize: bool = True,
    engine: str = "auto",
) -> Mapping:
    """Compose along ``path`` and optionally materialize the result.

    The classic example: ``derive_composed(repo, ["Unigene", "LocusLink",
    "GO"])`` derives and stores Unigene ↔ GO.

    ``engine`` selects the materialization strategy (mirroring
    :func:`repro.operators.compose.compose`): with a named combiner the
    derived associations are written by one ``INSERT ... SELECT`` chain
    join inside SQLite (:func:`~repro.operators.sql_engine.materialize_composed_sql`)
    instead of round-tripping accession lists through Python;
    ``engine="memory"`` forces the seed's Python path and ``engine="sql"``
    raises ``ValueError`` for ad-hoc combiners.  Both engines store
    identical associations.
    """
    if engine not in ("auto", "sql", "memory"):
        raise ValueError(f"unknown derive engine {engine!r}")
    sql_combiner = _sql_combiner_name(combiner)
    if engine == "sql" and sql_combiner is None:
        raise ValueError(
            "derive engine 'sql' requires a named combiner"
            " (product_evidence or min_evidence)"
        )
    use_sql = sql_combiner is not None and engine in ("auto", "sql")
    mapping = compose(
        repository, path, combiner, engine="sql" if use_sql else "memory"
    )
    if materialize and len(path) > 2:
        if use_sql:
            from repro.operators.sql_engine import materialize_composed_sql

            names = [
                step.name if isinstance(step, Source) else str(step)
                for step in path
            ]
            with repository.db.write_scope(
                names[0], names[-1]
            ), repository.db.transaction():
                rel = repository.ensure_source_rel(
                    names[0], names[-1], RelType.COMPOSED
                )
                materialize_composed_sql(repository, names, sql_combiner, rel)
        else:
            materialize_mapping(repository, mapping, RelType.COMPOSED)
    return mapping
