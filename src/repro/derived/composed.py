"""Materialization of Composed relationships (paper Sections 1 and 3).

Results of ``Compose`` that are of general interest — e.g. the derived
mapping Unigene ↔ GO — can be materialized in the central database so that
subsequent ``Map`` calls and annotation views retrieve them like any
imported mapping, without re-running the join.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.gam.enums import RelType
from repro.gam.records import Source, SourceRel
from repro.gam.repository import GamRepository
from repro.operators.compose import (
    EvidenceCombiner,
    compose,
    materialization_rows,
    product_evidence,
)
from repro.operators.mapping import Mapping


def materialize_mapping(
    repository: GamRepository,
    mapping: Mapping,
    rel_type: RelType = RelType.COMPOSED,
) -> tuple[SourceRel, int]:
    """Store an in-memory mapping as a source relationship + associations.

    Target objects referenced by the mapping must already exist (they do,
    for any mapping produced by Map/Compose over imported data).  Returns
    the relationship and the number of associations inserted.
    """
    source = repository.get_source(mapping.source)
    target = repository.get_source(mapping.target)
    with repository.db.transaction():
        rel = repository.ensure_source_rel(source, target, rel_type)
        inserted = repository.add_associations(rel, materialization_rows(mapping))
    return rel, inserted


def derive_composed(
    repository: GamRepository,
    path: Sequence["str | Source"],
    combiner: EvidenceCombiner = product_evidence,
    materialize: bool = True,
) -> Mapping:
    """Compose along ``path`` and optionally materialize the result.

    The classic example: ``derive_composed(repo, ["Unigene", "LocusLink",
    "GO"])`` derives and stores Unigene ↔ GO.
    """
    mapping = compose(repository, path, combiner)
    if materialize and len(path) > 2:
        materialize_mapping(repository, mapping, RelType.COMPOSED)
    return mapping
