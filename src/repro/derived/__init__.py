"""Derived relationships: Composed and Subsumed (paper Section 3)."""

from repro.derived.composed import derive_composed, materialize_mapping
from repro.derived.refresh import (
    RefreshReport,
    refresh_composed,
    refresh_subsumed,
)
from repro.derived.subsumed import (
    derive_subsumed,
    load_taxonomy,
    query_with_subsumption,
    rollup_mapping,
    subsumed_mapping,
)

__all__ = [
    "RefreshReport",
    "derive_composed",
    "derive_subsumed",
    "load_taxonomy",
    "materialize_mapping",
    "query_with_subsumption",
    "refresh_composed",
    "refresh_subsumed",
    "rollup_mapping",
    "subsumed_mapping",
]
