"""Derivation of Subsumed relationships (paper Section 3).

A Subsumed relationship is computed automatically from the IS_A structure
of a Network source: it associates every term with all terms it subsumes
(its descendants in the term hierarchy).  The paper's motivation: a gene
annotated with a GO term should be found when querying with any ancestor of
that term.

Two operations are provided:

* :func:`derive_subsumed` materializes the Subsumed mapping in the GAM
  database, so frequent queries can use it like any stored mapping;
* :func:`rollup_mapping` expands an annotation mapping (e.g. genes → GO)
  so every object is also associated with the ancestors of its terms —
  the rollup used by the Section 5.2 statistical analysis.
"""

from __future__ import annotations

from repro.cache.deps import record_dependency
from repro.gam.enums import RelType
from repro.gam.errors import GamIntegrityError, UnknownMappingError
from repro.gam.records import Source, SourceRel
from repro.gam.repository import GamRepository
from repro.operators.mapping import Mapping
from repro.operators.simple import map_
from repro.taxonomy.dag import Taxonomy


def load_taxonomy(repository: GamRepository, source: "str | Source") -> Taxonomy:
    """Build the IS_A taxonomy of a Network source from the database."""
    src = repository.get_source(source)
    # Scoped cache invalidation: a cached taxonomy (and anything built on
    # it) depends on its source alone.
    record_dependency(src.name)
    rels = repository.find_source_rels(src, src, RelType.IS_A)
    if not rels:
        raise UnknownMappingError(src.name, src.name, "no IS_A structure stored")
    pairs: list[tuple[str, str]] = []
    for rel in rels:
        for assoc in repository.associations_of(rel):
            pairs.append((assoc.source_accession, assoc.target_accession))
    return Taxonomy(pairs)


def subsumed_mapping(
    repository: GamRepository, source: "str | Source"
) -> Mapping:
    """The term → subsumed-term mapping of a source, computed on the fly."""
    src = repository.get_source(source)
    taxonomy = load_taxonomy(repository, src)
    return Mapping.build(
        src.name,
        src.name,
        taxonomy.subsumed_pairs(),
        rel_type=RelType.SUBSUMED,
    )


def derive_subsumed(
    repository: GamRepository, source: "str | Source", engine: str = "auto"
) -> tuple[SourceRel, int]:
    """Materialize the Subsumed relationship of a source in the database.

    Returns the source relationship and the number of associations stored.
    Re-running is idempotent (associations are deduplicated by key).

    With ``engine="auto"`` or ``"sql"`` the transitive closure is computed
    and written by one recursive-CTE ``INSERT ... SELECT`` inside SQLite —
    the IS_A edges never round-trip through a Python
    :class:`~repro.taxonomy.dag.Taxonomy`; ``engine="memory"`` forces the
    seed's Python path.  Both engines store identical associations and
    both reject cyclic IS_A structures with
    :class:`~repro.gam.errors.GamIntegrityError`.
    """
    if engine not in ("auto", "sql", "memory"):
        raise ValueError(f"unknown derive engine {engine!r}")
    src = repository.get_source(source)
    if engine in ("auto", "sql"):
        return _derive_subsumed_sql(repository, src)
    mapping = subsumed_mapping(repository, src)
    with repository.db.transaction():
        rel = repository.ensure_source_rel(src, src, RelType.SUBSUMED)
        inserted = repository.add_associations(
            rel,
            [
                (assoc.source_accession, assoc.target_accession, assoc.evidence)
                for assoc in mapping
            ],
        )
    return rel, inserted


def _derive_subsumed_sql(
    repository: GamRepository, src: Source
) -> tuple[SourceRel, int]:
    """The recursive-CTE pushdown behind :func:`derive_subsumed`.

    IS_A associations are stored child→parent (``object1_id`` is the
    child); Subsumed pairs run ancestor→descendant.  The seed base is
    every reversed IS_A edge and the recursion extends each pair one more
    IS_A level downward.  ``UNION`` (not ``UNION ALL``) deduplicates
    visited pairs, so the recursion terminates even on cyclic input — a
    cycle instead shows up as a self-subsumed term, which is detected
    afterwards inside the same transaction and rolls everything back.
    """
    is_a_rels = repository.find_source_rels(src, src, RelType.IS_A)
    if not is_a_rels:
        raise UnknownMappingError(src.name, src.name, "no IS_A structure stored")
    rel_ids = tuple(rel.src_rel_id for rel in is_a_rels)
    placeholders = ", ".join("?" for _ in rel_ids)
    sql = (
        "INSERT OR IGNORE INTO object_rel"
        " (src_rel_id, object1_id, object2_id, evidence)"
        " WITH RECURSIVE closure(ancestor, descendant) AS ("
        f"   SELECT object2_id, object1_id FROM object_rel"
        f"    WHERE src_rel_id IN ({placeholders})"
        "   UNION"
        "   SELECT closure.ancestor, edge.object1_id"
        "     FROM closure JOIN object_rel edge"
        "       ON edge.object2_id = closure.descendant"
        f"      AND edge.src_rel_id IN ({placeholders})"
        " )"
        " SELECT ?, ancestor, descendant, 1.0 FROM closure"
    )
    with repository.db.write_scope(src.name), repository.db.transaction():
        rel = repository.ensure_source_rel(src, src, RelType.SUBSUMED)
        cursor = repository.db.execute(
            sql, (*rel_ids, *rel_ids, rel.src_rel_id)
        )
        inserted = max(cursor.rowcount, 0)
        cyclic = repository.db.execute_read(
            "SELECT 1 FROM object_rel"
            " WHERE src_rel_id = ? AND object1_id = object2_id LIMIT 1",
            (rel.src_rel_id,),
        ).fetchone()
        if cyclic is not None:
            raise GamIntegrityError(
                f"IS_A structure of {src.name!r} contains a cycle"
                " (self-subsumption detected)"
            )
    return rel, inserted


def rollup_mapping(
    annotation: Mapping, taxonomy: Taxonomy, include_direct: bool = True
) -> Mapping:
    """Expand an object → term mapping up the taxonomy.

    Every association (object, term) contributes (object, ancestor) for all
    ancestors of the term, so that querying with a general term finds
    objects annotated with any of its subsumed (more specific) terms.
    Terms not present in the taxonomy keep only their direct association.
    """
    pairs: list[tuple[str, str, float]] = []
    for assoc in annotation:
        term = assoc.target_accession
        if include_direct:
            pairs.append((assoc.source_accession, term, assoc.evidence))
        if term in taxonomy:
            for ancestor in taxonomy.ancestors(term):
                pairs.append((assoc.source_accession, ancestor, assoc.evidence))
    return Mapping.build(
        annotation.source, annotation.target, pairs, rel_type=RelType.SUBSUMED
    )


def query_with_subsumption(
    repository: GamRepository,
    annotation_source: "str | Source",
    taxonomy_source: "str | Source",
    term: str,
) -> set[str]:
    """Objects annotated with ``term`` or any of its subsumed terms.

    The direct use case from the paper: "if a gene is annotated with a
    particular GO term, it is often necessary to consider the subsumed
    terms for more detailed gene functions".
    """
    annotation = map_(repository, annotation_source, taxonomy_source)
    taxonomy = load_taxonomy(repository, taxonomy_source)
    wanted = {term}
    if term in taxonomy:
        wanted.update(taxonomy.descendants(term))
    return annotation.restrict_range(wanted).domain()
