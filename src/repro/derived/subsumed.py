"""Derivation of Subsumed relationships (paper Section 3).

A Subsumed relationship is computed automatically from the IS_A structure
of a Network source: it associates every term with all terms it subsumes
(its descendants in the term hierarchy).  The paper's motivation: a gene
annotated with a GO term should be found when querying with any ancestor of
that term.

Two operations are provided:

* :func:`derive_subsumed` materializes the Subsumed mapping in the GAM
  database, so frequent queries can use it like any stored mapping;
* :func:`rollup_mapping` expands an annotation mapping (e.g. genes → GO)
  so every object is also associated with the ancestors of its terms —
  the rollup used by the Section 5.2 statistical analysis.
"""

from __future__ import annotations

from repro.gam.enums import RelType
from repro.gam.errors import UnknownMappingError
from repro.gam.records import Source, SourceRel
from repro.gam.repository import GamRepository
from repro.operators.mapping import Mapping
from repro.operators.simple import map_
from repro.taxonomy.dag import Taxonomy


def load_taxonomy(repository: GamRepository, source: "str | Source") -> Taxonomy:
    """Build the IS_A taxonomy of a Network source from the database."""
    src = repository.get_source(source)
    rels = repository.find_source_rels(src, src, RelType.IS_A)
    if not rels:
        raise UnknownMappingError(src.name, src.name, "no IS_A structure stored")
    pairs: list[tuple[str, str]] = []
    for rel in rels:
        for assoc in repository.associations_of(rel):
            pairs.append((assoc.source_accession, assoc.target_accession))
    return Taxonomy(pairs)


def subsumed_mapping(
    repository: GamRepository, source: "str | Source"
) -> Mapping:
    """The term → subsumed-term mapping of a source, computed on the fly."""
    src = repository.get_source(source)
    taxonomy = load_taxonomy(repository, src)
    return Mapping.build(
        src.name,
        src.name,
        taxonomy.subsumed_pairs(),
        rel_type=RelType.SUBSUMED,
    )


def derive_subsumed(
    repository: GamRepository, source: "str | Source"
) -> tuple[SourceRel, int]:
    """Materialize the Subsumed relationship of a source in the database.

    Returns the source relationship and the number of associations stored.
    Re-running is idempotent (associations are deduplicated by key).
    """
    src = repository.get_source(source)
    mapping = subsumed_mapping(repository, src)
    with repository.db.transaction():
        rel = repository.ensure_source_rel(src, src, RelType.SUBSUMED)
        inserted = repository.add_associations(
            rel,
            [
                (assoc.source_accession, assoc.target_accession, assoc.evidence)
                for assoc in mapping
            ],
        )
    return rel, inserted


def rollup_mapping(
    annotation: Mapping, taxonomy: Taxonomy, include_direct: bool = True
) -> Mapping:
    """Expand an object → term mapping up the taxonomy.

    Every association (object, term) contributes (object, ancestor) for all
    ancestors of the term, so that querying with a general term finds
    objects annotated with any of its subsumed (more specific) terms.
    Terms not present in the taxonomy keep only their direct association.
    """
    pairs: list[tuple[str, str, float]] = []
    for assoc in annotation:
        term = assoc.target_accession
        if include_direct:
            pairs.append((assoc.source_accession, term, assoc.evidence))
        if term in taxonomy:
            for ancestor in taxonomy.ancestors(term):
                pairs.append((assoc.source_accession, ancestor, assoc.evidence))
    return Mapping.build(
        annotation.source, annotation.target, pairs, rel_type=RelType.SUBSUMED
    )


def query_with_subsumption(
    repository: GamRepository,
    annotation_source: "str | Source",
    taxonomy_source: "str | Source",
    term: str,
) -> set[str]:
    """Objects annotated with ``term`` or any of its subsumed terms.

    The direct use case from the paper: "if a gene is annotated with a
    particular GO term, it is often necessary to consider the subsumed
    terms for more detailed gene functions".
    """
    annotation = map_(repository, annotation_source, taxonomy_source)
    taxonomy = load_taxonomy(repository, taxonomy_source)
    wanted = {term}
    if term in taxonomy:
        wanted.update(taxonomy.descendants(term))
    return annotation.restrict_range(wanted).domain()
