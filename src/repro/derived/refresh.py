"""Incremental maintenance of materialized Composed/Subsumed mappings.

The paper's deployment keeps ~500 derived mappings current across
continuous re-imports (Section 8).  Rebuilding a materialized mapping
from scratch after each import is O(full closure); these delta engines
apply only the *import delta* instead, seeded from the per-table row-id
watermarks the import journal records before each source import
(:meth:`repro.reliability.checkpoint.ImportJournal.table_watermarks`).

The delta algebra relies on imports being **strictly additive**: the GAM
write paths insert with ``INSERT OR IGNORE`` under a unique key and
never lower evidence, so ``object_rel`` rows with
``obj_rel_id > watermark`` are exactly the new edges.

* :func:`refresh_composed` — for a k-hop path, runs the PR 4 chain join
  (:func:`repro.operators.sql_engine._chain_join_plan`) k times, each
  run restricting one hop to delta rows: a chain is new iff at least one
  of its hops is new, and every such chain is found by the run that
  restricts its *first* (any designated) new hop — running one
  restricted join per hop position covers all of them.  Results are
  upserted with an evidence-max conflict clause, so re-running is
  idempotent and a stronger new chain raises a stored pair's evidence
  exactly like full recomputation would.
* :func:`refresh_subsumed` — seeds the PR 4 recursive CTE from the new
  IS_A edges: a closure pair is new iff some ancestor path crosses a new
  edge, and every such path decomposes as ``descendant →* child →(new
  edge) parent →* ancestor`` around its *lowest* new edge.  The first
  recursive CTE walks downward from each new edge over all edges, the
  second extends ancestors upward, and the product is inserted with
  ``INSERT OR IGNORE`` (subsumption evidence is constant).

Both engines are byte-identical (``canonical_snapshot``) to dropping
the materialized rows and re-deriving from scratch — asserted by
``tests/test_refresh.py`` for the sql and memory engines alike — and
run inside a :meth:`~repro.gam.database.GamDatabase.write_scope` of the
mapping's endpoint sources, so the refresh invalidates only the cache
entries that actually depend on them.  Applied delta rows are counted
under the ``derived.delta_rows`` metric.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from repro.gam.enums import RelType
from repro.gam.errors import GamIntegrityError, UnknownMappingError
from repro.gam.records import Source, SourceRel
from repro.gam.repository import GamRepository
from repro.obs import get_registry, get_tracer
from repro.operators.compose import (
    EvidenceCombiner,
    _sql_combiner_name,
    compose_mappings,
    product_evidence,
)
from repro.operators.mapping import Mapping
from repro.operators.sql_engine import _chain_join_plan, resolve_hop_rel

_ENGINES = ("auto", "sql", "memory")


@dataclasses.dataclass(frozen=True, slots=True)
class RefreshReport:
    """Outcome of one incremental refresh."""

    rel: SourceRel
    engine: str
    watermark: int
    #: New base rows (``obj_rel_id > watermark``) feeding the delta.
    delta_edges: int
    #: Materialized rows inserted or upgraded by the refresh.
    changed: int

    def summary(self) -> str:
        return (
            f"refresh[{self.engine}] rel {self.rel.src_rel_id}:"
            f" {self.delta_edges} delta edges -> {self.changed} rows"
        )


def _object_rel_marks(watermark: "int | dict") -> "int | dict[str, int]":
    """The ``object_rel`` entry of a watermark argument.

    Accepts a plain row-id, an ImportJournal watermarks dict, or (on the
    sharded engine) a journal dict whose entries are per-slot dicts.
    """
    if isinstance(watermark, dict):
        return watermark.get("object_rel", 0)
    return int(watermark)


def _rel_watermark(
    repository: GamRepository, rel: SourceRel, watermark: "int | dict"
) -> int:
    """The ``obj_rel_id`` high-watermark applicable to one relationship.

    Monolithic marks are scalars and apply to every relationship.  The
    sharded engine records one mark per shard slot — each slot allocates
    ids from its own stride, so a global max would sit above other
    shards' fresh rows — and a relationship's rows live in the shard of
    its ``source1``.  The slot is resolved through the catalog, *not*
    derived from ids: rows migrated from a monolithic file keep their
    original (pre-stride) ids.  A relationship placed in a slot created
    after the snapshot resolves to mark 0: a full — conservative, never
    skipped — delta.
    """
    marks = _object_rel_marks(watermark)
    if not isinstance(marks, dict):
        return int(marks)
    name = repository.get_source(rel.source1_id).name
    placement = repository.db.shard_placement([name]) or {}
    slot = placement.get(name)
    if slot is None:
        return 0
    return int(marks.get(str(slot), 0))


def _watermark_value(watermark: "int | dict") -> int:
    """Scalar summary of a watermark argument (reporting only).

    Per-slot marks are summarized as their minimum — the value below
    which no relationship's delta can start.  Delta correctness always
    uses :func:`_rel_watermark`, never this summary.
    """
    marks = _object_rel_marks(watermark)
    if isinstance(marks, dict):
        return min((int(value) for value in marks.values()), default=0)
    return int(marks)


def _count_delta_edges(
    repository: GamRepository, rel_marks: Sequence[tuple[int, int]]
) -> int:
    """Rows above each relationship's own watermark, summed."""
    total = 0
    for rel_id, mark in rel_marks:
        row = repository.db.execute_read(
            "SELECT count(*) FROM object_rel"
            " WHERE src_rel_id = ? AND obj_rel_id > ?",
            (rel_id, mark),
        ).fetchone()
        total += int(row[0])
    return total


def _record_delta_rows(changed: int) -> None:
    if changed > 0:
        get_registry().counter("derived.delta_rows").inc(changed)


# -- Composed ---------------------------------------------------------------


def refresh_composed(
    repository: GamRepository,
    path: Sequence["str | Source"],
    combiner: EvidenceCombiner = product_evidence,
    watermark: "int | dict[str, int]" = 0,
    engine: str = "auto",
) -> RefreshReport:
    """Apply an import delta to a materialized Composed mapping.

    ``watermark`` is the max ``obj_rel_id`` *before* the import (or the
    watermarks dict recorded by the import journal); rows above it are
    the delta.  With ``watermark=0`` the refresh degenerates into a full
    derivation — convenient for first-time materialization.  Requires
    the path's Composed relationship to be up to date with respect to
    the pre-watermark state (i.e. previously materialized via
    :func:`repro.derived.composed.derive_composed` or an earlier
    refresh).
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown refresh engine {engine!r}")
    if len(path) < 3:
        raise ValueError("refreshing a composed path needs at least one hop")
    names = [
        step.name if isinstance(step, Source) else str(step) for step in path
    ]
    mark = _watermark_value(watermark)
    sql_combiner = _sql_combiner_name(combiner)
    if engine == "sql" and sql_combiner is None:
        raise ValueError(
            "refresh engine 'sql' requires a named combiner"
            " (product_evidence or min_evidence)"
        )
    use_sql = sql_combiner is not None and engine in ("auto", "sql")
    engine_used = "sql" if use_sql else "memory"
    hops = [
        resolve_hop_rel(repository, source, target)
        for source, target in zip(names, names[1:])
    ]
    hop_marks = [
        _rel_watermark(repository, rel, watermark) for rel, __ in hops
    ]
    delta_edges = _count_delta_edges(
        repository,
        [(rel.src_rel_id, hop_mark)
         for (rel, __), hop_mark in zip(hops, hop_marks)],
    )
    with get_tracer().span(
        "operator.refresh_composed",
        path=" -> ".join(names),
        engine=engine_used,
        delta_edges=delta_edges,
    ) as span:
        with repository.db.write_scope(
            names[0], names[-1]
        ), repository.db.transaction():
            rel = repository.ensure_source_rel(
                names[0], names[-1], RelType.COMPOSED
            )
            if delta_edges == 0:
                changed = 0
            elif use_sql:
                changed = _refresh_composed_sql(
                    repository, names, sql_combiner, rel, hop_marks
                )
            else:
                changed = _refresh_composed_memory(
                    repository, names, hops, combiner, rel, hop_marks
                )
        span.tag(changed=changed)
    _record_delta_rows(changed)
    return RefreshReport(
        rel=rel,
        engine=engine_used,
        watermark=mark,
        delta_edges=delta_edges,
        changed=changed,
    )


#: Upsert clause shared by both composed-refresh engines: insert new
#: pairs, raise existing pairs' evidence when a stronger chain appears,
#: and leave weaker-or-equal conflicts untouched (so ``rowcount`` counts
#: only rows the statement actually changed).
_UPSERT_TAIL = (
    " ON CONFLICT (src_rel_id, object1_id, object2_id)"
    " DO UPDATE SET evidence = excluded.evidence"
    " WHERE excluded.evidence > object_rel.evidence"
)


def _refresh_composed_sql(
    repository: GamRepository,
    names: Sequence[str],
    combiner: str,
    rel: SourceRel,
    hop_marks: Sequence[int],
) -> int:
    """One delta chain join per hop position, upserted into ``rel``."""
    plan = _chain_join_plan(repository, names, combiner)
    hop_count = len(names) - 1
    changed = 0
    for hop in range(1, hop_count + 1):
        sql = (
            "INSERT INTO object_rel"
            " (src_rel_id, object1_id, object2_id, evidence)"
            f" SELECT ?, {plan.start_expr}, {plan.end_expr},"
            f" max({plan.chain_evidence}) FROM "
            + "\n  ".join(plan.joins)
            + "\n  WHERE r1.src_rel_id = ?"
            + f" AND r{hop}.obj_rel_id > ?"
            + f"\n  GROUP BY {plan.start_expr}, {plan.end_expr}"
            + _UPSERT_TAIL
        )
        cursor = repository.db.execute(
            sql,
            (
                rel.src_rel_id,
                *plan.join_parameters,
                plan.first_rel.src_rel_id,
                hop_marks[hop - 1],
            ),
        )
        changed += max(cursor.rowcount, 0)
    return changed


def _hop_mapping(
    repository: GamRepository,
    rel: SourceRel,
    forward: bool,
    source: str,
    target: str,
    min_rowid: int | None = None,
) -> Mapping:
    """One hop's associations as an oriented Mapping, optionally only
    the delta rows (``obj_rel_id > min_rowid``)."""
    sql = (
        "SELECT o1.accession AS acc1, o2.accession AS acc2, r.evidence"
        " FROM object_rel r"
        " JOIN object o1 ON o1.object_id = r.object1_id"
        " JOIN object o2 ON o2.object_id = r.object2_id"
        " WHERE r.src_rel_id = ?"
    )
    params: tuple = (rel.src_rel_id,)
    if min_rowid is not None:
        sql += " AND r.obj_rel_id > ?"
        params = (rel.src_rel_id, min_rowid)
    rows = repository.db.execute_read(sql, params).fetchall()
    if forward:
        triples = ((row["acc1"], row["acc2"], row["evidence"]) for row in rows)
    else:
        triples = ((row["acc2"], row["acc1"], row["evidence"]) for row in rows)
    return Mapping.build(source, target, triples, rel_type=rel.type)


def _refresh_composed_memory(
    repository: GamRepository,
    names: Sequence[str],
    hops: Sequence[tuple[SourceRel, bool]],
    combiner: EvidenceCombiner,
    rel: SourceRel,
    hop_marks: Sequence[int],
) -> int:
    """The Python mirror of :func:`_refresh_composed_sql`.

    For each hop position, compose full legs around that hop's delta
    rows, take the per-pair evidence max across positions, and upsert.
    """
    full_legs = [
        _hop_mapping(repository, hop_rel, forward, source, target)
        for (hop_rel, forward), (source, target) in zip(
            hops, zip(names, names[1:])
        )
    ]
    best: dict[tuple[str, str], float] = {}
    for index, ((hop_rel, forward), (source, target)) in enumerate(
        zip(hops, zip(names, names[1:]))
    ):
        delta_leg = _hop_mapping(
            repository,
            hop_rel,
            forward,
            source,
            target,
            min_rowid=hop_marks[index],
        )
        if delta_leg.is_empty():
            continue
        legs = list(full_legs)
        legs[index] = delta_leg
        for assoc in compose_mappings(legs, combiner):
            key = (assoc.source_accession, assoc.target_accession)
            if key not in best or assoc.evidence > best[key]:
                best[key] = assoc.evidence
    if not best:
        return 0
    ids1 = repository.accession_to_id(names[0])
    ids2 = repository.accession_to_id(names[-1])
    rows = (
        (rel.src_rel_id, ids1[acc1], ids2[acc2], evidence)
        for (acc1, acc2), evidence in best.items()
    )
    return repository.db.executemany_counted(
        "INSERT INTO object_rel (src_rel_id, object1_id, object2_id, evidence)"
        " VALUES (?, ?, ?, ?)" + _UPSERT_TAIL,
        rows,
    )


# -- Subsumed ---------------------------------------------------------------


def refresh_subsumed(
    repository: GamRepository,
    source: "str | Source",
    watermark: "int | dict[str, int]" = 0,
    engine: str = "auto",
) -> RefreshReport:
    """Apply new IS_A edges to a materialized Subsumed mapping.

    Like :func:`refresh_composed`, ``watermark`` delimits the delta and
    ``watermark=0`` degenerates into a full derivation.  A cycle closed
    by the new edges is detected (self-subsumption) and rolls the whole
    refresh back with :class:`~repro.gam.errors.GamIntegrityError`,
    matching :func:`repro.derived.subsumed.derive_subsumed`.
    """
    if engine not in _ENGINES:
        raise ValueError(f"unknown refresh engine {engine!r}")
    src = repository.get_source(source)
    is_a_rels = repository.find_source_rels(src, src, RelType.IS_A)
    if not is_a_rels:
        raise UnknownMappingError(src.name, src.name, "no IS_A structure stored")
    # Intra-source IS_A relationships all live in src's shard, so one
    # resolved mark covers every rel id.
    mark = _rel_watermark(repository, is_a_rels[0], watermark)
    rel_ids = tuple(r.src_rel_id for r in is_a_rels)
    delta_edges = _count_delta_edges(
        repository, [(rel_id, mark) for rel_id in rel_ids]
    )
    engine_used = "sql" if engine in ("auto", "sql") else "memory"
    with get_tracer().span(
        "operator.refresh_subsumed",
        source=src.name,
        engine=engine_used,
        delta_edges=delta_edges,
    ) as span:
        with repository.db.write_scope(src.name), repository.db.transaction():
            rel = repository.ensure_source_rel(src, src, RelType.SUBSUMED)
            if delta_edges == 0:
                changed = 0
            elif engine_used == "sql":
                changed = _refresh_subsumed_sql(
                    repository, src, rel, rel_ids, mark
                )
            else:
                changed = _refresh_subsumed_memory(
                    repository, src, rel, rel_ids, mark
                )
        span.tag(changed=changed)
    _record_delta_rows(changed)
    return RefreshReport(
        rel=rel,
        engine=engine_used,
        watermark=mark,
        delta_edges=delta_edges,
        changed=changed,
    )


def _refresh_subsumed_sql(
    repository: GamRepository,
    src: Source,
    rel: SourceRel,
    rel_ids: Sequence[int],
    watermark: int,
) -> int:
    """Two chained recursive CTEs seeded from the delta IS_A edges.

    ``seed`` walks downward from each new edge's child over *all* edges;
    ``delta`` extends each pair's ancestor upward.  Any ancestor path
    crossing a new edge decomposes around its lowest new edge, so the
    product covers exactly the new closure pairs.
    """
    placeholders = ", ".join("?" for _ in rel_ids)
    sql = (
        "INSERT OR IGNORE INTO object_rel"
        " (src_rel_id, object1_id, object2_id, evidence)"
        " WITH RECURSIVE seed(ancestor, descendant) AS ("
        f"   SELECT object2_id, object1_id FROM object_rel"
        f"    WHERE src_rel_id IN ({placeholders}) AND obj_rel_id > ?"
        "   UNION"
        "   SELECT seed.ancestor, edge.object1_id"
        "     FROM seed JOIN object_rel edge"
        "       ON edge.object2_id = seed.descendant"
        f"      AND edge.src_rel_id IN ({placeholders})"
        " ), delta(ancestor, descendant) AS ("
        "   SELECT ancestor, descendant FROM seed"
        "   UNION"
        "   SELECT edge.object2_id, delta.descendant"
        "     FROM delta JOIN object_rel edge"
        "       ON edge.object1_id = delta.ancestor"
        f"      AND edge.src_rel_id IN ({placeholders})"
        " )"
        " SELECT ?, ancestor, descendant, 1.0 FROM delta"
    )
    cursor = repository.db.execute(
        sql, (*rel_ids, watermark, *rel_ids, *rel_ids, rel.src_rel_id)
    )
    inserted = max(cursor.rowcount, 0)
    cyclic = repository.db.execute_read(
        "SELECT 1 FROM object_rel"
        " WHERE src_rel_id = ? AND object1_id = object2_id LIMIT 1",
        (rel.src_rel_id,),
    ).fetchone()
    if cyclic is not None:
        raise GamIntegrityError(
            f"IS_A structure of {src.name!r} contains a cycle"
            " (self-subsumption detected)"
        )
    return inserted


def _refresh_subsumed_memory(
    repository: GamRepository,
    src: Source,
    rel: SourceRel,
    rel_ids: Sequence[int],
    watermark: int,
) -> int:
    """Python mirror: ancestors-of-parent x descendants-of-child per new
    edge, over the full (post-import) taxonomy."""
    from repro.derived.subsumed import load_taxonomy

    # Taxonomy construction itself rejects cyclic IS_A input.
    taxonomy = load_taxonomy(repository, src)
    placeholders = ", ".join("?" for _ in rel_ids)
    delta_rows = repository.db.execute_read(
        "SELECT o1.accession AS child, o2.accession AS parent"
        " FROM object_rel r"
        " JOIN object o1 ON o1.object_id = r.object1_id"
        " JOIN object o2 ON o2.object_id = r.object2_id"
        f" WHERE r.src_rel_id IN ({placeholders}) AND r.obj_rel_id > ?",
        (*rel_ids, watermark),
    ).fetchall()
    pairs: set[tuple[str, str]] = set()
    for row in delta_rows:
        ancestors = taxonomy.ancestors(row["parent"], include_self=True)
        descendants = taxonomy.descendants(row["child"], include_self=True)
        for ancestor in ancestors:
            for descendant in descendants:
                if ancestor == descendant:
                    raise GamIntegrityError(
                        f"IS_A structure of {src.name!r} contains a cycle"
                        " (self-subsumption detected)"
                    )
                pairs.add((ancestor, descendant))
    if not pairs:
        return 0
    return repository.add_associations(
        rel, ((ancestor, descendant, 1.0) for ancestor, descendant in pairs)
    )
