"""Command-line interface to the GenMapper reproduction.

Mirrors the interactive workflow of paper Section 5.1 for the terminal::

    python -m repro.cli demo --db /tmp/gam.db           # synthetic universe
    python -m repro.cli import /data/sources --db /tmp/gam.db
    python -m repro.cli sources --db /tmp/gam.db
    python -m repro.cli query "ANNOTATE LocusLink WITH Hugo AND GO" \
        --db /tmp/gam.db
    python -m repro.cli map NetAffx GO --db /tmp/gam.db
    python -m repro.cli path NetAffx GO --db /tmp/gam.db
    python -m repro.cli object LocusLink 353 --db /tmp/gam.db

Any command accepts ``--profile`` (print a span tree of where the time
went, to stderr), ``--trace-out FILE`` (write the spans as JSONL) and
``--events-out FILE`` (emit one wide event per import/derivation/request
as JSONL); see ``docs/observability.md``.  ``repro profile`` runs the
sampling profiler over a synthetic workload and ``repro slow-log``
inspects a running server's slow-query ring buffer.  ``--cache-size N``
/ ``--no-cache`` tune or disable the generation-aware mapping cache
(``docs/performance.md``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.core.genmapper import GenMapper
from repro.export.writers import render_mapping, render_view, write_view
from repro.gam.errors import GenMapperError
from repro.query.language import parse_query
from repro.query.session import run_query


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GenMapper reproduction: integrate and query annotation data",
    )
    parser.add_argument(
        "--db",
        default=":memory:",
        help="path of the GAM database (default: in-memory)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the command and print the span tree to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the recorded spans as JSONL (implies --profile)",
    )
    parser.add_argument(
        "--events-out",
        metavar="FILE",
        help="append one wide event per request/import/derivation as"
             " JSONL to FILE (same as REPRO_EVENTS; see"
             " docs/observability.md)",
    )
    parser.add_argument(
        "--cache-size", type=int, default=None, metavar="N",
        help="max entries in the mapping cache"
             " (default: REPRO_CACHE_SIZE or 256; see docs/performance.md)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the mapping cache (same as REPRO_CACHE=off)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cmd = commands.add_parser("demo", help="build a synthetic demo database")
    cmd.add_argument("--genes", type=int, default=200)
    cmd.add_argument("--go-terms", type=int, default=120)
    cmd.add_argument("--seed", type=int, default=7)
    cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="multiply --genes/--go-terms by this factor"
        " (the paper-scale benchmark uses repro.datagen.scale directly)",
    )

    cmd = commands.add_parser("import", help="import a source file or directory")
    cmd.add_argument("path", help="native source file, .eav file, or directory")
    cmd.add_argument("--source", help="source name (chooses the parser)")
    cmd.add_argument("--release", help="release label for audit info")
    cmd.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="import up to N manifest sources concurrently"
        " (directories only; default: REPRO_IMPORT_WORKERS or serial)",
    )
    cmd.add_argument(
        "--resume", action="store_true",
        help="skip manifest sources already checkpointed by an earlier"
        " (possibly interrupted) import of the same files"
        " (directories only; see docs/reliability.md)",
    )

    cmd = commands.add_parser(
        "parse", help="run only the Parse step: native file -> staged .eav"
    )
    cmd.add_argument("path", help="native source file or manifest directory")
    cmd.add_argument("--source", help="source name (chooses the parser)")
    cmd.add_argument("--release", help="release label for the EAV header")
    cmd.add_argument("--out", required=True,
                     help="output .eav file (or staging directory)")

    commands.add_parser("sources", help="list integrated sources")
    cmd = commands.add_parser(
        "stats", help="database and source-graph statistics"
    )
    cmd.add_argument("--detailed", action="store_true",
                     help="per-source census, mapping sizes, cardinalities")
    commands.add_parser("integrity", help="run cross-table integrity checks")

    cmd = commands.add_parser(
        "batch", help="run a file of ANNOTATE queries unattended"
    )
    cmd.add_argument("path", help="batch file: one query per line")
    cmd.add_argument("--out", help="directory for per-query result files")
    cmd.add_argument("--format", default="tsv",
                     choices=("tsv", "csv", "json", "html"))
    cmd.add_argument("--stop-on-error", action="store_true")
    cmd.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run up to N batch queries concurrently (default: 1)",
    )

    cmd = commands.add_parser("query", help="run an ANNOTATE ... WITH ... query")
    cmd.add_argument("text", help="query in the ANNOTATE language")
    cmd.add_argument("--format", default="table",
                     choices=("table", "tsv", "csv", "json", "html"))
    cmd.add_argument("--out", help="write the view to this file")

    cmd = commands.add_parser("map", help="show the mapping between two sources")
    cmd.add_argument("source")
    cmd.add_argument("target")
    cmd.add_argument("--via", nargs="*", default=None,
                     help="intermediate sources of an explicit path")
    cmd.add_argument("--format", default="tsv", choices=("tsv", "json"))
    cmd.add_argument("--limit", type=int, default=20,
                     help="show at most this many associations (0 = all)")

    cmd = commands.add_parser("compose", help="compose mappings along a path")
    cmd.add_argument("path", nargs="+", help="source names of the mapping path")
    cmd.add_argument("--materialize", action="store_true",
                     help="store the result as a Composed mapping")
    cmd.add_argument("--engine", default="auto",
                     choices=("auto", "sql", "memory"),
                     help="execution engine (auto pushes named combiners"
                          " down to SQL)")

    cmd = commands.add_parser("path", help="find mapping paths between sources")
    cmd.add_argument("source")
    cmd.add_argument("target")
    cmd.add_argument("--via", help="require this intermediate source")
    cmd.add_argument("-k", type=int, default=1, help="number of alternatives")

    cmd = commands.add_parser("subsume", help="derive the Subsumed mapping")
    cmd.add_argument("source", help="a Network source with IS_A structure")
    cmd.add_argument("--engine", default="auto",
                     choices=("auto", "sql", "memory"),
                     help="execution engine (auto computes the closure"
                          " inside SQLite)")

    cmd = commands.add_parser("object", help="show all annotations of an object")
    cmd.add_argument("source")
    cmd.add_argument("accession")

    cmd = commands.add_parser(
        "explain", help="show the execution plan of a query without running it"
    )
    cmd.add_argument("text", help="query in the ANNOTATE language")

    cmd = commands.add_parser(
        "coverage", help="annotation coverage of a source's mappings"
    )
    cmd.add_argument("source")

    cmd = commands.add_parser(
        "match",
        help="compute a Similarity mapping by attribute matching",
    )
    cmd.add_argument("source")
    cmd.add_argument("target")
    cmd.add_argument("--threshold", type=float, default=0.8)
    cmd.add_argument("--top-k", type=int, default=1)
    cmd.add_argument("--materialize", action="store_true",
                     help="store the result as a Similarity mapping")

    cmd = commands.add_parser(
        "diff", help="diff a new release file against the stored source"
    )
    cmd.add_argument("path", help="native source file of the new release")
    cmd.add_argument("--source", required=True)
    cmd.add_argument("--release", help="release label of the new file")

    cmd = commands.add_parser(
        "delete-source", help="cascade-remove a source from the database"
    )
    cmd.add_argument("source")
    cmd.add_argument("--prune", action="store_true",
                     help="also prune objects left without associations")

    cmd = commands.add_parser(
        "shard", help="inspect the sharded storage layout"
    )
    cmd.add_argument("action", choices=("status",),
                     help="status: print layout, slots and placement")
    cmd.add_argument("--json", action="store_true",
                     help="print the raw placement report as JSON")

    cmd = commands.add_parser(
        "migrate-shards",
        help="convert a monolithic database to per-source shard files"
             " in place (see docs/storage.md)",
    )
    cmd.add_argument(
        "--max-shards", type=int, default=None, metavar="N",
        help="dedicated shard slots before sources share buckets"
             " (default: 8, bounded by SQLite's ATTACH limit)",
    )
    cmd.add_argument(
        "--no-resume", action="store_true",
        help="recopy every source even when a checkpoint from an"
             " interrupted earlier run matches",
    )

    cmd = commands.add_parser(
        "dump", help="export the whole database as a portable JSON-lines dump"
    )
    cmd.add_argument("path", help="output file")

    cmd = commands.add_parser(
        "load", help="merge a JSON-lines dump into the database"
    )
    cmd.add_argument("path", help="dump file written by the dump command")

    cmd = commands.add_parser(
        "graph", help="export the source/mapping graph for visualization"
    )
    cmd.add_argument("--format", default="dot",
                     choices=("dot", "graphml", "json"))
    cmd.add_argument("--out", help="write to this file instead of stdout")

    cmd = commands.add_parser(
        "serve", help="serve the JSON HTTP API over this database"
    )
    cmd.add_argument("--host", default="127.0.0.1")
    cmd.add_argument("--port", type=int, default=8350)
    cmd.add_argument(
        "--pool-size", type=int, default=None, metavar="N",
        help="max pooled database connections (see docs/storage.md)",
    )
    cmd.add_argument(
        "--request-timeout", type=float, default=None, metavar="SECONDS",
        help="per-request time budget; overruns are shed with 503 +"
        " Retry-After (see docs/reliability.md)",
    )
    cmd.add_argument(
        "--slow-ms", type=float, default=None, metavar="MS",
        help="capture requests slower than MS into the slow-query log"
        " (same as REPRO_SLOW_MS; inspect via GET /debug/slow or"
        " 'repro slow-log')",
    )
    cmd.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-client token-bucket rate limit in requests/second;"
        " floods get 429 + Retry-After (same as REPRO_RATE_LIMIT)",
    )
    cmd.add_argument(
        "--rate-burst", type=float, default=None, metavar="TOKENS",
        help="token-bucket burst ceiling (default: 2x the rate;"
        " same as REPRO_RATE_BURST)",
    )
    cmd.add_argument(
        "--stream-threshold", type=int, default=None, metavar="ROWS",
        help="stream responses with at least ROWS rows in bounded chunks"
        " (default: REPRO_STREAM_THRESHOLD or 1000)",
    )

    cmd = commands.add_parser(
        "slow-log",
        help="fetch and render a running server's slow-query log",
    )
    cmd.add_argument(
        "--url", default="http://127.0.0.1:8350",
        help="base URL of the server (default: http://127.0.0.1:8350)",
    )
    cmd.add_argument("--limit", type=int, default=20,
                     help="show at most this many entries (newest first)")
    cmd.add_argument("--json", action="store_true",
                     help="print the raw JSON payload instead of a table")

    cmd = commands.add_parser(
        "profile",
        help="sampling-profile a scaled synthetic workload"
             " (datagen -> import -> queries)",
    )
    cmd.add_argument("--folded-out", metavar="FILE",
                     help="write folded stacks here (default: stdout);"
                          " feed to flamegraph.pl / speedscope")
    cmd.add_argument("--hz", type=float, default=None,
                     help="sampling rate (default: REPRO_PROFILE_HZ or 100)")
    cmd.add_argument("--genes", type=int, default=2000)
    cmd.add_argument("--go-terms", type=int, default=600)
    cmd.add_argument("--seed", type=int, default=7)
    cmd.add_argument("--queries", type=int, default=5,
                     help="ANNOTATE queries to run after the import")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    profiling = args.profile or bool(args.trace_out)
    tracer = None
    if profiling:
        from repro.obs import get_tracer

        tracer = get_tracer()
        tracer.clear()
        tracer.enable()
    events_log = None
    previous_events_log = None
    if args.events_out:
        from repro.obs import WideEventLog, set_event_log

        events_log = WideEventLog(args.events_out)
        previous_events_log = set_event_log(events_log)
    try:
        pool_size = getattr(args, "pool_size", None)
        with GenMapper(
            args.db,
            pool_size=pool_size,
            cache_size=args.cache_size,
            enable_cache=False if args.no_cache else None,
        ) as genmapper:
            if tracer is None:
                return _dispatch(genmapper, args)
            with tracer.span(f"cli.{args.command}", db=args.db):
                return _dispatch(genmapper, args)
    except GenMapperError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if events_log is not None:
            from repro.obs import set_event_log

            events_log.close()
            set_event_log(previous_events_log)
            stats = events_log.stats()
            print(
                f"# wrote {stats['emitted']} wide events to"
                f" {args.events_out}"
                + (f" ({stats['dropped']} dropped)"
                   if stats["dropped"] else ""),
                file=sys.stderr,
            )
        if tracer is not None:
            tracer.disable()
            print("\n# trace\n" + tracer.render_tree(), file=sys.stderr)
            if args.trace_out:
                written = tracer.export_jsonl(args.trace_out)
                print(f"# wrote {written} spans to {args.trace_out}",
                      file=sys.stderr)


def _dispatch(genmapper: GenMapper, args: argparse.Namespace) -> int:
    handlers = {
        "demo": _cmd_demo,
        "import": _cmd_import,
        "parse": _cmd_parse,
        "sources": _cmd_sources,
        "stats": _cmd_stats,
        "integrity": _cmd_integrity,
        "query": _cmd_query,
        "map": _cmd_map,
        "compose": _cmd_compose,
        "path": _cmd_path,
        "subsume": _cmd_subsume,
        "object": _cmd_object,
        "explain": _cmd_explain,
        "coverage": _cmd_coverage,
        "match": _cmd_match,
        "diff": _cmd_diff,
        "delete-source": _cmd_delete_source,
        "shard": _cmd_shard,
        "migrate-shards": _cmd_migrate_shards,
        "batch": _cmd_batch,
        "dump": _cmd_dump,
        "load": _cmd_load,
        "graph": _cmd_graph,
        "serve": _cmd_serve,
        "slow-log": _cmd_slow_log,
        "profile": _cmd_sampling_profile,
    }
    return handlers[args.command](genmapper, args)


def _cmd_demo(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.datagen.emit import write_universe
    from repro.datagen.universe import UniverseConfig, generate_universe

    universe = generate_universe(
        UniverseConfig(
            seed=args.seed,
            n_genes=max(int(args.genes * args.scale), 1),
            n_go_terms=max(int(args.go_terms * args.scale), 10),
        )
    )
    with tempfile.TemporaryDirectory() as directory:
        write_universe(universe, directory)
        reports = genmapper.integrate_directory(directory)
    for report in reports:
        print(report.summary())
    print()
    _cmd_stats(genmapper, args)
    return 0


def _cmd_import(genmapper: GenMapper, args: argparse.Namespace) -> int:
    path = Path(args.path)
    if path.is_dir():
        reports = genmapper.integrate_directory(
            path, workers=args.workers, resume=args.resume
        )
    elif path.suffix == ".eav":
        reports = [genmapper.pipeline.integrate_eav_file(path)]
    else:
        reports = [
            genmapper.integrate_file(
                path, source_name=args.source, release=args.release
            )
        ]
    for report in reports:
        print(report.summary())
    return 0


def _cmd_parse(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.eav.io import write_eav
    from repro.parsers.base import get_parser

    path = Path(args.path)
    if path.is_dir():
        staged = genmapper.pipeline.stage_directory(path, args.out)
        print(f"staged {len(staged)} sources into {args.out}")
        return 0
    if args.source is None:
        print("error: --source is required for a single file", file=sys.stderr)
        return 1
    parser = get_parser(args.source)
    dataset = parser.parse(path, release=args.release)
    write_eav(dataset, args.out)
    print(f"{dataset.summary()} -> {args.out}")
    return 0


def _cmd_sources(genmapper: GenMapper, args: argparse.Namespace) -> int:
    for source in genmapper.sources():
        objects = genmapper.repository.count_objects(source)
        release = f" release={source.release}" if source.release else ""
        print(
            f"{source.name:<28} {source.content.value:<8}"
            f" {source.structure.value:<8} objects={objects}{release}"
        )
    return 0


def _cmd_stats(genmapper: GenMapper, args: argparse.Namespace) -> int:
    if getattr(args, "detailed", False):
        from repro.gam.statistics import collect_statistics

        print(collect_statistics(genmapper.repository).render())
        return 0
    for key, value in genmapper.stats().items():
        print(f"{key:<28} {value}")
    return 0


def _cmd_integrity(genmapper: GenMapper, args: argparse.Namespace) -> int:
    report = genmapper.check_integrity()
    print(report)
    return 0 if report.ok else 1


def _cmd_query(genmapper: GenMapper, args: argparse.Namespace) -> int:
    spec = parse_query(args.text)
    print(f"# {spec.describe()}", file=sys.stderr)
    view = run_query(genmapper, spec)
    if args.out:
        fmt = "tsv" if args.format == "table" else args.format
        written = write_view(view, args.out, fmt)
        print(f"wrote {len(view)} rows to {written}", file=sys.stderr)
        return 0
    if args.format == "table":
        print(view.render())
    else:
        print(render_view(view, args.format), end="")
    return 0


def _cmd_map(genmapper: GenMapper, args: argparse.Namespace) -> int:
    mapping = genmapper.map(args.source, args.target, via=args.via)
    print(f"# {mapping.describe()}", file=sys.stderr)
    if args.limit:
        from repro.operators.mapping import Mapping

        mapping = Mapping(
            mapping.source,
            mapping.target,
            mapping.associations[: args.limit],
            mapping.rel_type,
        )
    print(render_mapping(mapping, args.format), end="")
    return 0


def _cmd_compose(genmapper: GenMapper, args: argparse.Namespace) -> int:
    mapping = genmapper.compose(
        args.path, materialize=args.materialize, engine=args.engine
    )
    print(mapping.describe())
    if args.materialize:
        print(f"materialized as Composed: {mapping.source} ↔ {mapping.target}")
    return 0


def _cmd_path(genmapper: GenMapper, args: argparse.Namespace) -> int:
    if args.k <= 1:
        paths = [genmapper.find_path(args.source, args.target, via=args.via)]
    else:
        paths = genmapper.find_paths(args.source, args.target, k=args.k)
    from repro.pathfinder.search import path_cost

    graph = genmapper.source_graph()
    for path in paths:
        cost = path_cost(graph, path)
        print(f"{' -> '.join(path)}  (cost {cost:g})")
    return 0


def _cmd_subsume(genmapper: GenMapper, args: argparse.Namespace) -> int:
    inserted = genmapper.derive_subsumed(args.source, engine=args.engine)
    print(f"derived Subsumed({args.source}): {inserted} associations stored")
    return 0


def _cmd_object(genmapper: GenMapper, args: argparse.Namespace) -> int:
    info = genmapper.object_info(args.source, args.accession)
    if not info:
        print(f"{args.source} {args.accession}: no stored associations")
        return 0
    print(f"{args.source} {args.accession}:")
    for partner, rel_type, association in info:
        print(
            f"  {partner:<24} [{rel_type.value:<10}]"
            f" {association.target_accession}"
            + (f"  (evidence {association.evidence:g})"
               if association.evidence != 1.0 else "")
        )
    return 0


def _cmd_explain(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.query.plan import plan_query

    spec = parse_query(args.text)
    plan = plan_query(genmapper, spec)
    print(plan.render())
    return 0 if plan.executable else 1


def _cmd_coverage(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.analysis.coverage import render_coverage, source_coverage

    entries = source_coverage(genmapper.repository, args.source)
    print(f"annotation coverage of {args.source}:")
    print(render_coverage(entries))
    return 0


def _cmd_match(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.derived.composed import materialize_mapping
    from repro.gam.enums import RelType
    from repro.operators.matching import MatchConfig, match_attributes

    config = MatchConfig(threshold=args.threshold, top_k=args.top_k)
    mapping = match_attributes(
        genmapper.repository, args.source, args.target, config
    )
    print(mapping.describe())
    if args.materialize and not mapping.is_empty():
        materialize_mapping(genmapper.repository, mapping, RelType.SIMILARITY)
        print("materialized as Similarity mapping")
    return 0


def _cmd_diff(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.importer.diff import diff_against_store
    from repro.parsers.base import get_parser

    parser = get_parser(args.source)
    dataset = parser.parse(args.path, release=args.release)
    diff = diff_against_store(genmapper.repository, dataset)
    print(diff.render())
    return 0


def _cmd_delete_source(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.gam.maintenance import delete_source, prune_orphan_objects

    report = delete_source(genmapper.repository, args.source)
    print(report.summary())
    if args.prune:
        pruned = prune_orphan_objects(genmapper.repository)
        print(f"pruned {pruned} orphan objects")
    return 0


def _cmd_shard(genmapper: GenMapper, args: argparse.Namespace) -> int:
    report = genmapper.repository.placement_report()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"layout: {report['layout']}")
    print(f"path:   {report['path']}")
    shards = report.get("shards")
    if not shards:
        print("(monolithic database — run 'repro migrate-shards' to shard)")
        return 0
    print(f"slots:  {shards['slots']} (max {shards['max_shards']},"
          f" catalog v{shards['catalog_version']})")
    placement = report.get("placement", {})
    by_slot: dict[int, list[str]] = {}
    for name, slot in placement.items():
        by_slot.setdefault(int(slot), []).append(name)
    images = shards.get("images", {})
    for slot in sorted(images, key=int):
        image = images[slot]
        names = ", ".join(sorted(by_slot.get(int(slot), []))) or "(empty)"
        print(f"  shard {slot}: {image['file']}"
              f" [image g{image['image']}] <- {names}")
    return 0


def _cmd_migrate_shards(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.gam.shards import DEFAULT_MAX_SHARDS, migrate_to_shards

    if genmapper.db.sharded:
        print("database already uses the sharded layout")
        return 0
    summary = migrate_to_shards(
        genmapper.db,
        max_shards=args.max_shards or DEFAULT_MAX_SHARDS,
        resume=not args.no_resume,
    )
    print(f"migrated {summary['migrated']} source(s)"
          f" ({summary['skipped']} already checkpointed)"
          f" across {summary['slots']} shard(s);"
          f" {summary['rows_moved']} rows moved")
    print("reopen the database to use the sharded engine"
          " (repro shard status)")
    return 0


def _cmd_dump(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.gam.dump import dump_database

    records = dump_database(genmapper.repository, args.path)
    print(f"dumped {records} records to {args.path}")
    return 0


def _cmd_load(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.gam.dump import load_database

    records = load_database(genmapper.repository, args.path)
    counts = genmapper.db.counts()
    print(f"loaded {records} records;"
          f" database now holds {counts['object']} objects,"
          f" {counts['object_rel']} associations")
    return 0


def _cmd_graph(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.pathfinder.export import to_dot, to_json, write_graphml

    graph = genmapper.source_graph()
    if args.format == "graphml":
        if not args.out:
            print("error: --out is required for graphml", file=sys.stderr)
            return 1
        write_graphml(graph, args.out)
        print(f"wrote GraphML to {args.out}", file=sys.stderr)
        return 0
    text = to_dot(graph) if args.format == "dot" else to_json(graph)
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.format} to {args.out}", file=sys.stderr)
    else:
        print(text, end="")
    return 0


def _cmd_serve(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.web.app import create_app
    from repro.web.server import make_threading_server

    if args.slow_ms is not None:
        from repro.obs import SlowQueryLog, set_slow_log

        set_slow_log(SlowQueryLog(threshold_ms=args.slow_ms))
        print(f"# slow-query log capturing requests over {args.slow_ms:g} ms"
              " (GET /debug/slow)", file=sys.stderr)
    app = create_app(
        genmapper,
        request_timeout=args.request_timeout,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        stream_threshold=args.stream_threshold,
    )
    if args.rate_limit is not None:
        print(f"# rate limiting: {args.rate_limit:g} req/s per client"
              " (429 + Retry-After past the burst)", file=sys.stderr)
    with make_threading_server(args.host, args.port, app) as server:
        print(f"GenMapper API on http://{args.host}:{args.port}/sources")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_slow_log(genmapper: GenMapper, args: argparse.Namespace) -> int:
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + f"/debug/slow?limit={args.limit}"
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            payload = json.loads(response.read().decode("utf-8"))
    except (urllib.error.URLError, OSError) as exc:
        print(f"error: cannot fetch {url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    threshold = payload.get("threshold_ms")
    print(
        f"# slow-query log: threshold="
        f"{f'{threshold:g} ms' if threshold is not None else 'disabled'}"
        f" captured={payload.get('captured_total', 0)}"
        f" retained={payload.get('retained', 0)}"
    )
    for entry in payload.get("entries", []):
        print(
            f"{entry.get('duration_ms', 0):>9.1f} ms"
            f"  {entry.get('method', '?'):<5}{entry.get('route', '?'):<24}"
            f" status={entry.get('status')}"
            f" sql={entry.get('sql_count', 0)}"
            f" trace={entry.get('trace_id')}"
        )
        stages = entry.get("stages_ms") or {}
        for stage, ms in sorted(stages.items(), key=lambda kv: -kv[1]):
            print(f"{'':>13}  {stage:<28} {ms:>8.1f} ms")
    return 0


def _cmd_sampling_profile(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.datagen.emit import write_universe
    from repro.datagen.universe import UniverseConfig, generate_universe
    from repro.obs import SamplingProfiler

    profiler = SamplingProfiler(hz=args.hz)
    with profiler:
        universe = generate_universe(
            UniverseConfig(
                seed=args.seed, n_genes=args.genes, n_go_terms=args.go_terms
            )
        )
        with tempfile.TemporaryDirectory() as directory:
            write_universe(universe, directory)
            genmapper.integrate_directory(directory)
        spec = parse_query("ANNOTATE LocusLink WITH Hugo AND GO")
        for __ in range(max(0, args.queries)):
            run_query(genmapper, spec)
    folded = profiler.folded()
    stats = profiler.stats()
    note = (
        f"# {stats['samples']} samples @ {stats['hz']:g} Hz,"
        f" {stats['distinct_stacks']} distinct stacks"
    )
    if args.folded_out:
        Path(args.folded_out).write_text(folded, encoding="utf-8")
        print(f"{note} -> {args.folded_out}", file=sys.stderr)
    else:
        print(note, file=sys.stderr)
        print(folded, end="")
    return 0


def _cmd_batch(genmapper: GenMapper, args: argparse.Namespace) -> int:
    from repro.query.batch import read_batch, render_results, run_batch

    entries = read_batch(args.path)
    results = run_batch(
        genmapper,
        entries,
        output_dir=args.out,
        fmt=args.format,
        stop_on_error=args.stop_on_error,
        workers=args.workers,
    )
    print(render_results(results))
    return 0 if all(result.ok for result in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
