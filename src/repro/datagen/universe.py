"""The synthetic source universe — ground truth behind every flat file.

The paper integrates 60+ live public sources; this repo substitutes a
deterministic generator (see DESIGN.md).  ``generate_universe`` first draws
a coherent world — genes with symbols, positions, GO annotations, enzymes,
diseases, clusters, probes and proteins — and the emitters in
:mod:`repro.datagen.emit` then serialize *views* of that world in each
source's native flat-file format, with realistic coverage gaps (not every
gene has a UniGene cluster, not every probe is mapped to a locus).

Because the world is kept as ground truth, benchmarks can measure the
*correctness* of derived mappings (e.g. Compose precision) and not only
their performance.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.datagen import vocab
from repro.datagen.go_gen import GoTaxonomy, generate_go


@dataclasses.dataclass(frozen=True, slots=True)
class GeneRecord:
    """Ground truth for one gene (a LocusLink locus)."""

    locus: str
    symbol: str
    name: str
    chromosome: str
    location: str
    go_terms: tuple[str, ...]
    ec: str | None = None
    omim: str | None = None
    unigene: str | None = None
    ensembl: str | None = None
    swissprot: str | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class ProbeRecord:
    """Ground truth for one microarray probe set (NetAffx row)."""

    probe_id: str
    locus: str
    #: Accessions actually *published* in the NetAffx file; None models
    #: vendor annotation gaps even though the probe does target the locus.
    published_locus: str | None
    published_unigene: str | None
    published_symbol: str | None


@dataclasses.dataclass(frozen=True, slots=True)
class ProteinRecord:
    """Ground truth for one protein (SwissProt entry)."""

    accession: str
    entry_name: str
    name: str
    gene_symbol: str
    locus: str
    interpro: tuple[str, ...]
    go_terms: tuple[str, ...]
    ec: str | None = None


@dataclasses.dataclass(frozen=True, slots=True)
class InterProRecord:
    """Ground truth for one InterPro family."""

    accession: str
    name: str
    parent: str | None
    go_terms: tuple[str, ...]


@dataclasses.dataclass(frozen=True, slots=True)
class UniverseConfig:
    """Knobs of the synthetic world; defaults give a small test universe."""

    seed: int = 7
    n_genes: int = 200
    n_go_terms: int = 120
    go_depth: int = 5
    #: Mean number of probes targeting each gene (Poisson, min 1 for
    #: covered genes).
    probes_per_gene: float = 1.6
    #: Fraction of genes covered by each optional source.
    unigene_coverage: float = 0.92
    omim_coverage: float = 0.30
    enzyme_coverage: float = 0.25
    swissprot_coverage: float = 0.50
    ensembl_coverage: float = 0.85
    #: Fraction of probes whose NetAffx row publishes each cross-reference.
    probe_locus_coverage: float = 0.85
    probe_unigene_coverage: float = 0.95
    #: GO terms per gene drawn uniformly from [1, max].
    max_go_per_gene: int = 4
    release: str = "2003-10"


@dataclasses.dataclass(frozen=True)
class Universe:
    """The generated world: records plus the GO taxonomy."""

    config: UniverseConfig
    go: GoTaxonomy
    genes: tuple[GeneRecord, ...]
    probes: tuple[ProbeRecord, ...]
    proteins: tuple[ProteinRecord, ...]
    interpro: tuple[InterProRecord, ...]

    # -- ground-truth mappings (for correctness checks) --------------------

    def true_locus_to_go(self) -> set[tuple[str, str]]:
        """(locus, GO term) ground truth, direct annotations only."""
        return {
            (gene.locus, term) for gene in self.genes for term in gene.go_terms
        }

    def true_locus_to_unigene(self) -> set[tuple[str, str]]:
        """(locus, UniGene cluster) ground truth."""
        return {
            (gene.locus, gene.unigene)
            for gene in self.genes
            if gene.unigene is not None
        }

    def true_probe_to_locus(self) -> set[tuple[str, str]]:
        """(probe, locus) ground truth — includes unpublished links."""
        return {(probe.probe_id, probe.locus) for probe in self.probes}

    def true_probe_to_go(self) -> set[tuple[str, str]]:
        """(probe, GO term) ground truth via the probe's true gene."""
        go_of_locus = {gene.locus: gene.go_terms for gene in self.genes}
        return {
            (probe.probe_id, term)
            for probe in self.probes
            for term in go_of_locus.get(probe.locus, ())
        }

    def genes_by_locus(self) -> dict[str, GeneRecord]:
        """Locus -> gene record lookup."""
        return {gene.locus: gene for gene in self.genes}


def generate_universe(config: UniverseConfig = UniverseConfig()) -> Universe:
    """Draw a deterministic world from the config's seed."""
    rng = np.random.default_rng(config.seed)
    go = generate_go(rng, n_terms=config.n_go_terms, max_depth=config.go_depth)
    annotatable = [t for t in go.accessions() if t not in _root_accessions(go)]
    genes = _generate_genes(rng, config, annotatable)
    probes = _generate_probes(rng, config, genes)
    interpro = _generate_interpro(rng, config, annotatable)
    proteins = _generate_proteins(rng, config, genes, interpro)
    return Universe(
        config=config,
        go=go,
        genes=tuple(genes),
        probes=tuple(probes),
        proteins=tuple(proteins),
        interpro=tuple(interpro),
    )


def _root_accessions(go: GoTaxonomy) -> set[str]:
    return {term.accession for term in go.terms if not term.parents}


def _generate_genes(
    rng: np.random.Generator, config: UniverseConfig, go_terms: list[str]
) -> list[GeneRecord]:
    genes = []
    #: Disambiguates duplicate vocabulary names into family members
    #: ("purine kinase", "purine kinase 2", ...), as real nomenclature does.
    name_counts: dict[str, int] = {}
    for i in range(config.n_genes):
        locus = str(100 + i)
        symbol = vocab.gene_symbol(rng, i)
        chrom = vocab.chromosome(rng)
        n_terms = int(rng.integers(1, config.max_go_per_gene + 1))
        term_idx = rng.choice(len(go_terms), size=min(n_terms, len(go_terms)),
                              replace=False)
        ec = None
        if rng.random() < config.enzyme_coverage:
            ec = _ec_number(rng)
        base_name = vocab.gene_name(rng)
        member = name_counts.get(base_name, 0) + 1
        name_counts[base_name] = member
        name = base_name if member == 1 else f"{base_name} {member}"
        genes.append(
            GeneRecord(
                locus=locus,
                symbol=symbol,
                name=name,
                chromosome=chrom,
                location=vocab.cytogenetic_location(rng, chrom),
                go_terms=tuple(sorted(go_terms[j] for j in term_idx)),
                ec=ec,
                omim=(
                    str(100000 + i)
                    if rng.random() < config.omim_coverage
                    else None
                ),
                unigene=(
                    f"Hs.{1000 + i}"
                    if rng.random() < config.unigene_coverage
                    else None
                ),
                ensembl=(
                    f"ENSG{100000000 + i:011d}"
                    if rng.random() < config.ensembl_coverage
                    else None
                ),
                swissprot=(
                    f"P{10000 + i:05d}"
                    if rng.random() < config.swissprot_coverage
                    else None
                ),
            )
        )
    return genes


def _ec_number(rng: np.random.Generator) -> str:
    return (
        f"{int(rng.integers(1, 7))}.{int(rng.integers(1, 10))}"
        f".{int(rng.integers(1, 10))}.{int(rng.integers(1, 40))}"
    )


def _generate_probes(
    rng: np.random.Generator, config: UniverseConfig, genes: list[GeneRecord]
) -> list[ProbeRecord]:
    probes = []
    counter = 1000
    for gene in genes:
        n_probes = max(1, int(rng.poisson(config.probes_per_gene)))
        for __ in range(n_probes):
            probe_id = f"{counter}_at"
            counter += 1
            published_locus = (
                gene.locus if rng.random() < config.probe_locus_coverage else None
            )
            # The vendor derives all cross-references from its locus
            # assignment, so annotation gaps are *nested*: a probe without
            # a published locus publishes no UniGene cluster either.  This
            # is what makes composing through a longer mapping path lose
            # recall at every hop (bench_compose) instead of recovering
            # objects the shorter path misses.  The coverage draw keeps
            # its original position in the rng stream so the rest of the
            # universe is identical across this change.
            unigene_published = gene.unigene is not None and (
                rng.random() < config.probe_unigene_coverage
            )
            probes.append(
                ProbeRecord(
                    probe_id=probe_id,
                    locus=gene.locus,
                    published_locus=published_locus,
                    published_unigene=(
                        gene.unigene
                        if unigene_published and published_locus is not None
                        else None
                    ),
                    published_symbol=gene.symbol,
                )
            )
    return probes


def _generate_interpro(
    rng: np.random.Generator, config: UniverseConfig, go_terms: list[str]
) -> list[InterProRecord]:
    n_families = max(3, config.n_genes // 10)
    records = []
    for i in range(n_families):
        accession = f"IPR{1000 + i:06d}"
        parent = None
        if i > 0 and rng.random() < 0.3:
            parent = f"IPR{1000 + int(rng.integers(0, i)):06d}"
        n_terms = int(rng.integers(0, 3))
        term_idx = rng.choice(
            len(go_terms), size=min(n_terms, len(go_terms)), replace=False
        )
        records.append(
            InterProRecord(
                accession=accession,
                name=vocab.gene_name(rng) + " family",
                parent=parent,
                go_terms=tuple(sorted(go_terms[j] for j in term_idx)),
            )
        )
    return records


def _generate_proteins(
    rng: np.random.Generator,
    config: UniverseConfig,
    genes: list[GeneRecord],
    interpro: list[InterProRecord],
) -> list[ProteinRecord]:
    proteins = []
    for gene in genes:
        if gene.swissprot is None:
            continue
        n_families = int(rng.integers(1, 3))
        family_idx = rng.choice(
            len(interpro), size=min(n_families, len(interpro)), replace=False
        )
        proteins.append(
            ProteinRecord(
                accession=gene.swissprot,
                entry_name=f"{gene.symbol}_HUMAN",
                name=gene.name.capitalize(),
                gene_symbol=gene.symbol,
                locus=gene.locus,
                interpro=tuple(sorted(interpro[j].accession for j in family_idx)),
                go_terms=gene.go_terms,
                ec=gene.ec,
            )
        )
    return proteins
