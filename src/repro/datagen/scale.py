"""Paper-scale synthetic GAM instance (paper Section 8).

The production GenMapper instance manages "more than 60 sources, 2
million objects with 5 million associations in 500 mappings".  The demo
universe (:mod:`repro.datagen.universe`) stays deliberately small so
tests run in milliseconds; this module builds a database of the paper's
*shape* — a hub source holding ~25% of all objects (LocusLink-like), a
taxonomy source with an IS_A forest (GO-like), a long tail of flat
sources, and a mapping graph mixing a backbone chain with random
cross-links — scaled by a single ``--scale`` knob so CI can smoke-test
at 5% while the committed benchmark runs the full shape.

Unlike the demo path (flat files → parsers → importer), the builder
writes straight through the repository's bulk interfaces: accessions are
generated unique up front, so object rows can be inserted without
duplicate-elimination bookkeeping, and association rows reference object
ids directly.  Object ids are assigned contiguously per source (single
writer, one batch insert per source), which lets association sampling
draw ids uniformly from ``[lo, hi]`` ranges instead of materializing
2M-row accession maps.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.gam.enums import RelType
from repro.gam.records import Source
from repro.gam.repository import GamRepository

#: The deployment figures from paper Section 8 (scale = 1.0).
PAPER_OBJECTS = 2_000_000
PAPER_ASSOCIATIONS = 5_000_000
PAPER_MAPPINGS = 500
PAPER_SOURCES = 60

_INSERT_ASSOC = (
    "INSERT OR IGNORE INTO object_rel"
    " (src_rel_id, object1_id, object2_id, evidence) VALUES (?, ?, ?, ?)"
)


@dataclasses.dataclass(frozen=True, slots=True)
class PaperScaleSpec:
    """Shape of a paper-scale instance, derived from one scale factor."""

    scale: float = 1.0
    seed: int = 42
    #: Fraction of all objects held by the hub source ("Gene").
    hub_fraction: float = 0.25
    #: Fraction of all objects in the taxonomy source ("Term").
    taxonomy_fraction: float = 0.025

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def objects(self) -> int:
        return max(int(PAPER_OBJECTS * self.scale), 1_000)

    @property
    def associations(self) -> int:
        return max(int(PAPER_ASSOCIATIONS * self.scale), 2_000)

    @property
    def mappings(self) -> int:
        return max(int(PAPER_MAPPINGS * self.scale), 8)

    @property
    def sources(self) -> int:
        # Enough sources that `mappings` distinct unordered pairs exist
        # (n*(n-1)/2 >= mappings), never more than the paper's 60+ scaled
        # down, never fewer than the backbone needs.
        for_pairs = math.ceil((1 + math.sqrt(1 + 8 * self.mappings)) / 2) + 2
        return max(int(PAPER_SOURCES * self.scale), for_pairs, 6)


@dataclasses.dataclass(frozen=True, slots=True)
class _SourceBlock:
    """One source and its contiguous object-id range."""

    source: Source
    lo: int
    hi: int

    @property
    def count(self) -> int:
        return self.hi - self.lo + 1


@dataclasses.dataclass(frozen=True)
class PaperScaleReport:
    """What :func:`build_paper_database` actually wrote."""

    spec: PaperScaleSpec
    sources: int
    objects: int
    associations: int
    mappings: int
    is_a_edges: int

    def summary(self) -> str:
        return (
            f"paper-scale(scale={self.spec.scale:g}): {self.sources} sources,"
            f" {self.objects} objects, {self.associations} associations"
            f" in {self.mappings} mappings, {self.is_a_edges} IS_A edges"
        )


def _insert_objects(
    repository: GamRepository, source: Source, prefix: str, count: int
) -> _SourceBlock:
    """Batch-insert ``count`` objects and return their contiguous id range.

    Accessions ``{prefix}:{i}`` are unique by construction, so the insert
    needs no duplicate elimination; ids are contiguous because the batch
    runs in one transaction with no sibling writers (enforced by SQLite's
    single-writer lock held for the whole batch).
    """
    db = repository.db
    with db.write_scope(source.name), db.transaction():
        db.executemany_counted(
            "INSERT INTO object (source_id, accession) VALUES (?, ?)",
            ((source.source_id, f"{prefix}:{i}") for i in range(count)),
        )
        row = db.execute(
            "SELECT min(object_id), max(object_id) FROM object"
            " WHERE source_id = ?",
            (source.source_id,),
        ).fetchone()
    return _SourceBlock(source=source, lo=int(row[0]), hi=int(row[1]))


def _insert_mapping(
    repository: GamRepository,
    rng: np.random.Generator,
    block1: _SourceBlock,
    block2: _SourceBlock,
    rows: int,
) -> int:
    """One FACT mapping with ``rows`` sampled associations."""
    rel = repository.ensure_source_rel(
        block1.source, block2.source, RelType.FACT
    )
    ids1 = rng.integers(block1.lo, block1.hi + 1, size=rows)
    ids2 = rng.integers(block2.lo, block2.hi + 1, size=rows)
    evidence = np.round(rng.uniform(0.5, 1.0, size=rows), 3)
    db = repository.db
    with db.write_scope(block1.source.name, block2.source.name), db.transaction():
        inserted = db.executemany_counted(
            _INSERT_ASSOC,
            (
                (rel.src_rel_id, int(a), int(b), float(e))
                for a, b, e in zip(ids1, ids2, evidence)
            ),
        )
    return inserted


def _insert_taxonomy(
    repository: GamRepository, rng: np.random.Generator, block: _SourceBlock
) -> int:
    """A random-parent forest over the taxonomy block (child → parent).

    Every node i > 0 gets one parent drawn from [0, i) — parents always
    precede children in id order, so the forest is acyclic by
    construction (the property the Subsumed closure relies on).
    """
    rel = repository.ensure_source_rel(
        block.source, block.source, RelType.IS_A
    )
    count = block.count
    parents = (rng.random(count - 1) * np.arange(count - 1)).astype(np.int64)
    db = repository.db
    with db.write_scope(block.source.name), db.transaction():
        inserted = db.executemany_counted(
            _INSERT_ASSOC,
            (
                (rel.src_rel_id, block.lo + child, block.lo + int(parent), 1.0)
                for child, parent in enumerate(parents, start=1)
            ),
        )
    return inserted


def build_paper_database(
    repository: GamRepository, spec: PaperScaleSpec = PaperScaleSpec()
) -> PaperScaleReport:
    """Populate a GAM database with the paper's deployment shape."""
    rng = np.random.default_rng(spec.seed)
    n_sources = spec.sources
    tail_count = n_sources - 2

    hub_objects = int(spec.objects * spec.hub_fraction)
    term_objects = max(int(spec.objects * spec.taxonomy_fraction), 50)
    tail_objects = spec.objects - hub_objects - term_objects
    per_tail = max(tail_objects // tail_count, 10)

    hub = repository.add_source("Gene", "Gene", "flat", release="paper-scale")
    term = repository.add_source("Term", "Other", "network", release="paper-scale")
    blocks = [
        _insert_objects(repository, hub, "G", hub_objects),
        _insert_objects(repository, term, "T", term_objects),
    ]
    for i in range(tail_count):
        src = repository.add_source(
            f"S{i:02d}", "Other", "flat", release="paper-scale"
        )
        blocks.append(_insert_objects(repository, src, f"s{i}", per_tail))

    is_a_edges = _insert_taxonomy(repository, rng, blocks[1])

    # Mapping graph: a backbone chain visiting every source keeps the
    # instance connected (Compose paths exist between any two sources);
    # random extra pairs bring the count up to the paper's 500.
    pairs: list[tuple[int, int]] = [
        (i, i + 1) for i in range(len(blocks) - 1)
    ]
    seen = {tuple(sorted(p)) for p in pairs}
    while len(pairs) < spec.mappings:
        a, b = (int(x) for x in rng.integers(0, len(blocks), size=2))
        if a == b or tuple(sorted((a, b))) in seen:
            continue
        seen.add(tuple(sorted((a, b))))
        pairs.append((a, b))

    per_mapping = max(spec.associations // len(pairs), 100)
    associations = 0
    for a, b in pairs:
        associations += _insert_mapping(
            repository, rng, blocks[a], blocks[b], per_mapping
        )

    return PaperScaleReport(
        spec=spec,
        sources=len(blocks),
        objects=sum(block.count for block in blocks),
        associations=associations,
        mappings=len(pairs),
        is_a_edges=is_a_edges,
    )


def append_delta(
    repository: GamRepository,
    source1: str,
    source2: str,
    rows: int,
    seed: int = 7,
) -> int:
    """Append new association rows to one existing mapping (an import
    delta), for incremental-refresh benchmarks."""
    rng = np.random.default_rng(seed)
    src1 = repository.get_source(source1)
    src2 = repository.get_source(source2)

    def _block(source: Source) -> _SourceBlock:
        row = repository.db.execute(
            "SELECT min(object_id), max(object_id) FROM object"
            " WHERE source_id = ?",
            (source.source_id,),
        ).fetchone()
        return _SourceBlock(source=source, lo=int(row[0]), hi=int(row[1]))

    return _insert_mapping(repository, rng, _block(src1), _block(src2), rows)


def append_taxonomy_delta(
    repository: GamRepository,
    source: str,
    rows: int,
    seed: int = 11,
) -> int:
    """Append new leaf terms (with IS_A edges to existing terms) to a
    taxonomy source — an ontology-release delta for refresh benchmarks.

    New nodes only ever point *at* existing nodes, so the forest stays
    acyclic no matter what the base looks like.
    """
    rng = np.random.default_rng(seed)
    src = repository.get_source(source)
    db = repository.db
    row = db.execute(
        "SELECT min(object_id), max(object_id), count(*) FROM object"
        " WHERE source_id = ?",
        (src.source_id,),
    ).fetchone()
    lo, hi, existing = int(row[0]), int(row[1]), int(row[2])
    rel = repository.ensure_source_rel(src, src, RelType.IS_A)
    with db.write_scope(src.name), db.transaction():
        db.executemany_counted(
            "INSERT INTO object (source_id, accession) VALUES (?, ?)",
            (
                (src.source_id, f"{src.name}:delta{existing + i}")
                for i in range(rows)
            ),
        )
        new_lo = int(
            db.execute(
                "SELECT max(object_id) FROM object WHERE source_id = ?",
                (src.source_id,),
            ).fetchone()[0]
        ) - rows + 1
        parents = rng.integers(lo, hi + 1, size=rows)
        inserted = db.executemany_counted(
            _INSERT_ASSOC,
            (
                (rel.src_rel_id, new_lo + i, int(parent), 1.0)
                for i, parent in enumerate(parents)
            ),
        )
    return inserted
