"""Noise injection: corrupting cross-references for robustness studies.

Paper Section 4.2: "Compose may lead to wrong associations when the
transitivity assumption does not hold ... The use of mappings containing
associations of reduced evidence is a promising subject for future
research."  To study that quantitatively, this module corrupts a mapping's
associations in controlled ways:

* :func:`rewire` — replace a fraction of associations' targets with a
  random other target (transitivity now genuinely fails for those);
* :func:`degrade_evidence` — keep associations but lower their evidence,
  modelling computed (Similarity) mappings;
* :func:`drop` — remove a fraction of associations (coverage loss).

Corrupted pairs are returned alongside the mapping so experiments can
score precision against the planted truth.  Everything is driven by an
explicit ``numpy`` generator for reproducibility.
"""

from __future__ import annotations

import numpy as np

from repro.operators.mapping import Mapping


def rewire(
    mapping: Mapping,
    rate: float,
    rng: np.random.Generator,
    evidence: float = 0.5,
) -> tuple[Mapping, set[tuple[str, str]]]:
    """Rewire a fraction of associations to wrong targets.

    Each selected association's target is replaced by a random *different*
    target drawn from the mapping's range, and its evidence dropped to
    ``evidence`` — a wrong link a computed matcher might plausibly
    produce.  Returns the corrupted mapping and the set of wrong pairs.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    targets = sorted(mapping.range())
    if len(targets) < 2 or rate == 0.0:
        return mapping, set()
    corrupted_pairs: set[tuple[str, str]] = set()
    rows = []
    for assoc in mapping:
        if rng.random() < rate:
            wrong = assoc.target_accession
            while wrong == assoc.target_accession:
                wrong = targets[rng.integers(0, len(targets))]
            rows.append((assoc.source_accession, wrong, evidence))
            corrupted_pairs.add((assoc.source_accession, wrong))
        else:
            rows.append(
                (assoc.source_accession, assoc.target_accession, assoc.evidence)
            )
    noisy = Mapping.build(
        mapping.source, mapping.target, rows, rel_type=mapping.rel_type
    )
    # Rewiring may collide with a true pair for the same source object;
    # those are not wrong, remove them from the corruption record.
    corrupted_pairs -= mapping.pair_set()
    return noisy, corrupted_pairs


def degrade_evidence(
    mapping: Mapping,
    rate: float,
    rng: np.random.Generator,
    low: float = 0.2,
    high: float = 0.7,
) -> Mapping:
    """Lower the evidence of a fraction of associations into [low, high]."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rows = []
    for assoc in mapping:
        if rng.random() < rate:
            evidence = float(rng.uniform(low, high))
        else:
            evidence = assoc.evidence
        rows.append((assoc.source_accession, assoc.target_accession, evidence))
    return Mapping.build(
        mapping.source, mapping.target, rows, rel_type=mapping.rel_type
    )


def drop(
    mapping: Mapping, rate: float, rng: np.random.Generator
) -> Mapping:
    """Remove a fraction of associations (coverage loss)."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must be in [0, 1], got {rate}")
    rows = [
        (assoc.source_accession, assoc.target_accession, assoc.evidence)
        for assoc in mapping
        if rng.random() >= rate
    ]
    return Mapping.build(
        mapping.source, mapping.target, rows, rel_type=mapping.rel_type
    )
