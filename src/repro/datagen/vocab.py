"""Vocabulary for synthetic biological names.

The generators build deterministic, plausible-looking names (gene symbols,
GO term names, enzyme names) from small word lists, so that rendered views
and exports read like the paper's screenshots rather than like opaque ids.
"""

from __future__ import annotations

import numpy as np

PROCESS_NOUNS = (
    "metabolism", "biosynthesis", "catabolism", "transport", "signaling",
    "adhesion", "proliferation", "differentiation", "apoptosis", "repair",
    "replication", "transcription", "translation", "folding", "secretion",
    "phosphorylation", "glycosylation", "oxidation", "reduction", "binding",
)

SUBSTRATE_NOUNS = (
    "nucleoside", "nucleotide", "purine", "pyrimidine", "amino acid",
    "glucose", "lipid", "sterol", "fatty acid", "glycogen", "heme",
    "protein", "RNA", "DNA", "peptide", "ion", "calcium", "potassium",
    "electron", "proton",
)

FUNCTION_NOUNS = (
    "kinase", "phosphatase", "transferase", "hydrolase", "oxidoreductase",
    "ligase", "isomerase", "lyase", "receptor", "channel", "transporter",
    "regulator", "inhibitor", "activator", "chaperone", "protease",
    "polymerase", "helicase", "synthase", "reductase",
)

COMPONENT_NOUNS = (
    "membrane", "nucleus", "cytoplasm", "mitochondrion", "ribosome",
    "lysosome", "peroxisome", "cytoskeleton", "chromatin", "vesicle",
    "endosome", "matrix", "envelope", "complex", "granule", "junction",
    "lamellum", "centriole", "spindle", "pore",
)

DISEASE_NOUNS = (
    "deficiency", "syndrome", "dystrophy", "anemia", "carcinoma",
    "neuropathy", "myopathy", "dysplasia", "atrophy", "intolerance",
)

TISSUES = (
    "brain", "liver", "kidney", "heart", "lung", "muscle", "spleen",
    "testis", "placenta", "retina", "skin", "pancreas",
)

_SYMBOL_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def gene_symbol(rng: np.random.Generator, index: int) -> str:
    """A HUGO-style gene symbol, unique per index (e.g. ``ABcD1`` style)."""
    letters = "".join(
        _SYMBOL_ALPHABET[rng.integers(0, len(_SYMBOL_ALPHABET))]
        for __ in range(int(rng.integers(3, 5)))
    )
    return f"{letters}{index}"


def gene_name(rng: np.random.Generator) -> str:
    """A descriptive gene name, e.g. "nucleoside kinase"."""
    substrate = SUBSTRATE_NOUNS[rng.integers(0, len(SUBSTRATE_NOUNS))]
    function = FUNCTION_NOUNS[rng.integers(0, len(FUNCTION_NOUNS))]
    return f"{substrate} {function}"


def process_name(rng: np.random.Generator) -> str:
    """A biological-process term name, e.g. "purine metabolism"."""
    substrate = SUBSTRATE_NOUNS[rng.integers(0, len(SUBSTRATE_NOUNS))]
    process = PROCESS_NOUNS[rng.integers(0, len(PROCESS_NOUNS))]
    return f"{substrate} {process}"


def function_name(rng: np.random.Generator) -> str:
    """A molecular-function term name, e.g. "ion channel activity"."""
    substrate = SUBSTRATE_NOUNS[rng.integers(0, len(SUBSTRATE_NOUNS))]
    function = FUNCTION_NOUNS[rng.integers(0, len(FUNCTION_NOUNS))]
    return f"{substrate} {function} activity"


def component_name(rng: np.random.Generator) -> str:
    """A cellular-component term name, e.g. "mitochondrion membrane"."""
    first = COMPONENT_NOUNS[rng.integers(0, len(COMPONENT_NOUNS))]
    second = COMPONENT_NOUNS[rng.integers(0, len(COMPONENT_NOUNS))]
    if first == second:
        return first
    return f"{first} {second}"


def disease_name(rng: np.random.Generator, symbol: str) -> str:
    """An OMIM-style disease title derived from a gene symbol."""
    noun = DISEASE_NOUNS[rng.integers(0, len(DISEASE_NOUNS))]
    return f"{symbol} {noun}".upper()


def cytogenetic_location(rng: np.random.Generator, chromosome: str) -> str:
    """A cytogenetic band such as ``16q24`` on the given chromosome."""
    arm = "pq"[rng.integers(0, 2)]
    band = int(rng.integers(11, 29))
    return f"{chromosome}{arm}{band}"


def chromosome(rng: np.random.Generator) -> str:
    """A human chromosome label (1-22, X, Y)."""
    labels = [str(i) for i in range(1, 23)] + ["X", "Y"]
    return labels[rng.integers(0, len(labels))]
