"""Synthetic two-species expression study (substitute for Section 5.2 data).

The paper's application measured ~40,000 genes with Affymetrix microarrays
in humans and chimpanzees; ~20,000 were detected as expressed and ~2,500
showed significantly different expression between the species.  This module
generates an expression matrix over the universe's probes with exactly that
planted structure:

* a configurable fraction of genes is *expressed* (high signal),
* among the expressed genes, a configurable fraction is *differentially
  expressed* between the species — biased toward genes annotated with a
  few chosen GO terms, so the downstream enrichment analysis has a planted
  signal to recover.

Keeping the planted sets as ground truth lets the Section 5.2 benchmark
check that the full GenMapper pipeline (probe → UniGene → LocusLink → GO →
rollup → hypergeometric test) finds the planted functions.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.datagen.universe import Universe
from repro.taxonomy.dag import Taxonomy


@dataclasses.dataclass(frozen=True)
class ExpressionStudy:
    """A generated two-species microarray study with ground truth."""

    probe_ids: tuple[str, ...]
    #: Per-sample species label, e.g. 6x "human" then 6x "chimp".
    species: tuple[str, ...]
    #: log2 expression values, shape (n_probes, n_samples).
    values: np.ndarray
    #: Ground truth: probes of expressed genes.
    expressed_probes: frozenset[str]
    #: Ground truth: probes of differentially expressed genes.
    differential_probes: frozenset[str]
    #: Ground truth: differentially expressed loci.
    differential_loci: frozenset[str]
    #: GO terms around which the differential signal was planted.
    planted_terms: frozenset[str]

    @property
    def n_samples(self) -> int:
        """Number of arrays (columns)."""
        return len(self.species)

    def sample_indices(self, species: str) -> np.ndarray:
        """Column indices of one species' samples."""
        return np.array(
            [i for i, label in enumerate(self.species) if label == species]
        )

    def probe_index(self) -> dict[str, int]:
        """probe id -> row index."""
        return {probe: i for i, probe in enumerate(self.probe_ids)}


def generate_expression(
    universe: Universe,
    n_human: int = 6,
    n_chimp: int = 6,
    expressed_fraction: float = 0.5,
    differential_fraction: float = 0.125,
    n_planted_terms: int = 3,
    effect_size: float = 2.0,
    planted_odds: float = 10.0,
    seed: int | None = None,
) -> ExpressionStudy:
    """Generate the study; defaults mirror the paper's proportions.

    ``expressed_fraction`` of genes are detected (paper: 20k of 40k);
    ``differential_fraction`` of *expressed* genes differ between species
    (paper: 2.5k of 20k = 12.5%).  Differential genes are drawn with
    ``planted_odds``-times higher odds from genes annotated (directly or
    via descendants) with the planted GO terms, so enrichment analysis has
    a recoverable signal.
    """
    rng = np.random.default_rng(universe.config.seed + 101 if seed is None else seed)
    genes = list(universe.genes)
    n_expressed = max(1, int(round(len(genes) * expressed_fraction)))
    expressed_idx = rng.choice(len(genes), size=n_expressed, replace=False)
    expressed_loci = {genes[i].locus for i in expressed_idx}

    planted_terms = _pick_planted_terms(rng, universe, n_planted_terms)
    planted_closure = _closure(universe, planted_terms)
    weights = np.array(
        [
            planted_odds if set(genes[i].go_terms) & planted_closure else 1.0
            for i in expressed_idx
        ]
    )
    n_differential = max(1, int(round(n_expressed * differential_fraction)))
    differential_pos = rng.choice(
        len(expressed_idx),
        size=min(n_differential, len(expressed_idx)),
        replace=False,
        p=weights / weights.sum(),
    )
    differential_loci = {genes[expressed_idx[p]].locus for p in differential_pos}

    probe_ids = tuple(probe.probe_id for probe in universe.probes)
    species = tuple(["human"] * n_human + ["chimp"] * n_chimp)
    values = _draw_values(
        rng,
        universe,
        probe_ids,
        species,
        expressed_loci,
        differential_loci,
        effect_size,
    )
    expressed_probes = frozenset(
        probe.probe_id
        for probe in universe.probes
        if probe.locus in expressed_loci
    )
    differential_probes = frozenset(
        probe.probe_id
        for probe in universe.probes
        if probe.locus in differential_loci
    )
    return ExpressionStudy(
        probe_ids=probe_ids,
        species=species,
        values=values,
        expressed_probes=expressed_probes,
        differential_probes=differential_probes,
        differential_loci=frozenset(differential_loci),
        planted_terms=frozenset(planted_terms),
    )


def _pick_planted_terms(
    rng: np.random.Generator, universe: Universe, count: int
) -> set[str]:
    """Mid-depth terms with enough annotated genes to carry a signal."""
    annotated: dict[str, int] = {}
    for gene in universe.genes:
        for term in gene.go_terms:
            annotated[term] = annotated.get(term, 0) + 1
    candidates = [term for term, n in sorted(annotated.items()) if n >= 4]
    if not candidates:
        candidates = sorted(annotated)
    picked = rng.choice(
        len(candidates), size=min(count, len(candidates)), replace=False
    )
    return {candidates[i] for i in picked}


def _closure(universe: Universe, terms: set[str]) -> set[str]:
    """The planted terms plus everything they subsume."""
    taxonomy = Taxonomy(universe.go.is_a_pairs())
    closure = set(terms)
    for term in terms:
        if term in taxonomy:
            closure.update(taxonomy.descendants(term))
    return closure


def _draw_values(
    rng: np.random.Generator,
    universe: Universe,
    probe_ids: tuple[str, ...],
    species: tuple[str, ...],
    expressed_loci: set[str],
    differential_loci: set[str],
    effect_size: float,
) -> np.ndarray:
    n_probes = len(probe_ids)
    n_samples = len(species)
    chimp_columns = np.array([label == "chimp" for label in species])
    values = np.empty((n_probes, n_samples))
    for row, probe in enumerate(universe.probes):
        if probe.locus in expressed_loci:
            base = rng.normal(8.0, 1.0)
            noise = rng.normal(0.0, 0.4, size=n_samples)
            values[row] = base + noise
            if probe.locus in differential_loci:
                direction = 1.0 if rng.random() < 0.5 else -1.0
                values[row, chimp_columns] += direction * effect_size
        else:
            values[row] = rng.normal(4.0, 0.8, size=n_samples)
    return values
