"""Synthetic source universe — the substitute for live public downloads."""

from repro.datagen.emit import SOURCE_FILES, write_universe
from repro.datagen.expression import ExpressionStudy, generate_expression
from repro.datagen.go_gen import GoTaxonomy, GoTerm, generate_go
from repro.datagen.noise import degrade_evidence, drop, rewire
from repro.datagen.universe import (
    GeneRecord,
    InterProRecord,
    ProbeRecord,
    ProteinRecord,
    Universe,
    UniverseConfig,
    generate_universe,
)

__all__ = [
    "ExpressionStudy",
    "GeneRecord",
    "GoTaxonomy",
    "GoTerm",
    "InterProRecord",
    "ProbeRecord",
    "ProteinRecord",
    "SOURCE_FILES",
    "Universe",
    "UniverseConfig",
    "degrade_evidence",
    "drop",
    "generate_expression",
    "rewire",
    "generate_go",
    "generate_universe",
    "write_universe",
]
