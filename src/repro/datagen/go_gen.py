"""Synthetic GeneOntology-like taxonomy generator.

Builds a rooted DAG per namespace (biological process, molecular function,
cellular component) with configurable size, depth and multi-parent
probability — the structural properties that matter to Subsumed derivation
and to the Section 5.2 rollup statistics.  Terms get GO-style accessions
(``GO:0000123``) and vocabulary-based names.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.datagen import vocab


@dataclasses.dataclass(frozen=True, slots=True)
class GoTerm:
    """One synthetic GO term."""

    accession: str
    name: str
    namespace: str
    parents: tuple[str, ...]
    depth: int


@dataclasses.dataclass(frozen=True)
class GoTaxonomy:
    """A synthetic GO taxonomy: terms across the three namespaces."""

    terms: tuple[GoTerm, ...]

    def __len__(self) -> int:
        return len(self.terms)

    def accessions(self) -> list[str]:
        """All term accessions, in generation order."""
        return [term.accession for term in self.terms]

    def leaf_accessions(self) -> list[str]:
        """Accessions of terms that are nobody's parent."""
        parents = {p for term in self.terms for p in term.parents}
        return [t.accession for t in self.terms if t.accession not in parents]

    def is_a_pairs(self) -> list[tuple[str, str]]:
        """All (child, parent) pairs."""
        return [
            (term.accession, parent)
            for term in self.terms
            for parent in term.parents
        ]

    def by_accession(self) -> dict[str, GoTerm]:
        """Accession -> term lookup."""
        return {term.accession: term for term in self.terms}


_NAMESPACES = (
    ("biological_process", vocab.process_name),
    ("molecular_function", vocab.function_name),
    ("cellular_component", vocab.component_name),
)


def generate_go(
    rng: np.random.Generator,
    n_terms: int = 120,
    max_depth: int = 5,
    multi_parent_prob: float = 0.15,
) -> GoTaxonomy:
    """Generate a three-namespace GO-like taxonomy of ``n_terms`` terms.

    Terms are distributed over the namespaces roughly 3:2:1 (mirroring real
    GO's skew toward biological process).  Each non-root term gets one
    parent from a shallower level, plus with probability
    ``multi_parent_prob`` a second parent, making the result a DAG rather
    than a tree.
    """
    if n_terms < 6:
        raise ValueError("need at least 6 terms (one root + one child per namespace)")
    weights = np.array([3.0, 2.0, 1.0])
    counts = np.maximum(
        (weights / weights.sum() * n_terms).astype(int), 2
    )
    # Adjust rounding drift onto the largest namespace.
    counts[0] += n_terms - int(counts.sum())
    terms: list[GoTerm] = []
    next_id = 1
    for (namespace, namer), count in zip(_NAMESPACES, counts):
        terms.extend(
            _generate_namespace(
                rng, namespace, namer, int(count), next_id, max_depth,
                multi_parent_prob,
            )
        )
        next_id += int(count)
    return GoTaxonomy(tuple(terms))


def _generate_namespace(
    rng: np.random.Generator,
    namespace: str,
    namer,
    count: int,
    first_id: int,
    max_depth: int,
    multi_parent_prob: float,
) -> list[GoTerm]:
    accession_of = lambda i: f"GO:{first_id + i:07d}"  # noqa: E731
    root = GoTerm(
        accession=accession_of(0),
        name=namespace.replace("_", " "),
        namespace=namespace,
        parents=(),
        depth=0,
    )
    terms = [root]
    #: depth -> accessions at that depth (candidates for parenthood).
    by_depth: dict[int, list[str]] = {0: [root.accession]}
    for i in range(1, count):
        # Bias new terms toward deeper levels as the namespace grows,
        # capped at max_depth.
        candidate_depths = [d for d in by_depth if d < max_depth]
        depth_weights = np.array([len(by_depth[d]) for d in candidate_depths], float)
        parent_depth = int(
            rng.choice(candidate_depths, p=depth_weights / depth_weights.sum())
        )
        parent_pool = by_depth[parent_depth]
        parents = [parent_pool[rng.integers(0, len(parent_pool))]]
        if rng.random() < multi_parent_prob and len(parent_pool) > 1:
            second = parent_pool[rng.integers(0, len(parent_pool))]
            if second not in parents:
                parents.append(second)
        term = GoTerm(
            accession=accession_of(i),
            name=namer(rng),
            namespace=namespace,
            parents=tuple(parents),
            depth=parent_depth + 1,
        )
        terms.append(term)
        by_depth.setdefault(term.depth, []).append(term.accession)
    return terms
