"""Emitters: serialize the synthetic universe as native source files.

Each ``emit_*`` function writes one source's flat file in the (simplified)
native format its parser accepts, applying the universe's coverage gaps.
:func:`write_universe` writes all of them plus the import manifest, giving
a directory that :meth:`repro.GenMapper.integrate_directory` can consume —
the moral equivalent of the paper's "download" step.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datagen.universe import Universe
from repro.datagen.vocab import disease_name
from repro.importer.pipeline import ManifestEntry, write_manifest

#: File name, source name and emitter for every source in the universe.
SOURCE_FILES = (
    ("locuslink.txt", "LocusLink"),
    ("go.obo", "GO"),
    ("unigene.data", "Unigene"),
    ("enzyme.dat", "Enzyme"),
    ("omim.txt", "OMIM"),
    ("hugo.tsv", "Hugo"),
    ("netaffx.csv", "NetAffx"),
    ("swissprot.dat", "SwissProt"),
    ("interpro.tsv", "InterPro"),
    ("ensembl.tsv", "Ensembl"),
    ("gene_association.goa", "GOA"),
)


def write_universe(universe: Universe, directory: str | Path) -> Path:
    """Write every source file plus ``manifest.tsv``; returns the dir."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    emitters = {
        "LocusLink": emit_locuslink,
        "GO": emit_go_obo,
        "Unigene": emit_unigene,
        "Enzyme": emit_enzyme,
        "OMIM": emit_omim,
        "Hugo": emit_hugo,
        "NetAffx": emit_netaffx,
        "SwissProt": emit_swissprot,
        "InterPro": emit_interpro,
        "Ensembl": emit_ensembl,
        "GOA": emit_goa,
    }
    entries = []
    for file_name, source_name in SOURCE_FILES:
        content = emitters[source_name](universe)
        (directory / file_name).write_text(content, encoding="utf-8")
        entries.append(
            ManifestEntry(file_name, source_name, universe.config.release)
        )
    write_manifest(directory / "manifest.tsv", entries)
    return directory


def emit_locuslink(universe: Universe) -> str:
    """LocusLink ``LL_tmpl``-style dump (the Figure 1 shape per locus)."""
    go_names = {t.accession: t.name for t in universe.go.terms}
    lines = []
    for gene in universe.genes:
        lines.append(f">>{gene.locus}")
        lines.append(f"OFFICIAL_SYMBOL: {gene.symbol}")
        lines.append(f"NAME: {gene.name}")
        lines.append(f"CHR: {gene.chromosome}")
        lines.append(f"MAP: {gene.location}")
        if gene.ec:
            lines.append(f"ECNUM: {gene.ec}")
        for term in gene.go_terms:
            lines.append(f"GO: {term}|{go_names.get(term, '')}")
        if gene.omim:
            lines.append(f"OMIM: {gene.omim}")
        if gene.unigene:
            lines.append(f"UNIGENE: {gene.unigene}")
        if gene.ensembl:
            lines.append(f"ENSEMBL: {gene.ensembl}")
        if gene.swissprot:
            lines.append(f"SWISSPROT: {gene.swissprot}")
    return "\n".join(lines) + "\n"


def emit_go_obo(universe: Universe) -> str:
    """GeneOntology OBO 1.2 dump."""
    lines = ["format-version: 1.2", f"data-version: {universe.config.release}", ""]
    for term in universe.go.terms:
        lines.append("[Term]")
        lines.append(f"id: {term.accession}")
        lines.append(f"name: {term.name}")
        lines.append(f"namespace: {term.namespace}")
        for parent in term.parents:
            lines.append(f"is_a: {parent} ! parent term")
        lines.append("")
    return "\n".join(lines)


def emit_unigene(universe: Universe) -> str:
    """UniGene ``Hs.data``-style cluster dump (with EXPRESS tissues)."""
    from repro.datagen.vocab import TISSUES

    rng = np.random.default_rng(universe.config.seed + 23)
    lines = []
    for gene in universe.genes:
        if gene.unigene is None:
            continue
        lines.append(f"ID          {gene.unigene}")
        lines.append(f"TITLE       {gene.name}")
        lines.append(f"GENE        {gene.symbol}")
        lines.append(f"LOCUSLINK   {gene.locus}")
        lines.append(f"CHROMOSOME  {gene.chromosome}")
        n_tissues = int(rng.integers(1, 4))
        picks = rng.choice(len(TISSUES), size=n_tissues, replace=False)
        tissues = "; ".join(TISSUES[i] for i in sorted(picks))
        lines.append(f"EXPRESS     {tissues}")
        lines.append("//")
    return "\n".join(lines) + "\n"


def emit_enzyme(universe: Universe) -> str:
    """ExPASy ENZYME ``.dat``-style dump of the EC numbers in use."""
    seen: set[str] = set()
    lines = []
    for gene in universe.genes:
        if gene.ec is None or gene.ec in seen:
            continue
        seen.add(gene.ec)
        lines.append(f"ID   {gene.ec}")
        lines.append(f"DE   {gene.name.capitalize()}.")
        lines.append("//")
    return "\n".join(lines) + "\n"


def emit_omim(universe: Universe) -> str:
    """OMIM ``omim.txt``-style field dump."""
    rng = np.random.default_rng(universe.config.seed + 17)
    lines = []
    for gene in universe.genes:
        if gene.omim is None:
            continue
        lines.append("*RECORD*")
        lines.append("*FIELD* NO")
        lines.append(gene.omim)
        lines.append("*FIELD* TI")
        lines.append(f"#{gene.omim} {disease_name(rng, gene.symbol)}")
    return "\n".join(lines) + "\n"


def emit_hugo(universe: Universe) -> str:
    """HUGO nomenclature TSV."""
    lines = ["symbol\tname\tlocuslink\tomim"]
    for gene in universe.genes:
        lines.append(
            f"{gene.symbol}\t{gene.name}\t{gene.locus}\t{gene.omim or ''}"
        )
    return "\n".join(lines) + "\n"


def emit_netaffx(universe: Universe) -> str:
    """NetAffx quoted-CSV probe-set annotation file."""
    go_names = {t.accession: t.name for t in universe.go.terms}
    genes = universe.genes_by_locus()
    header = (
        '"Probe Set ID","Gene Symbol","UniGene ID","LocusLink",'
        '"Gene Ontology Biological Process"'
    )
    lines = [header]
    for probe in universe.probes:
        gene = genes[probe.locus]
        go_cell = " /// ".join(
            f"{term} // {go_names.get(term, '')}" for term in gene.go_terms
        )
        cells = (
            probe.probe_id,
            probe.published_symbol or "---",
            probe.published_unigene or "---",
            probe.published_locus or "---",
            go_cell or "---",
        )
        lines.append(",".join(f'"{cell}"' for cell in cells))
    return "\n".join(lines) + "\n"


def emit_swissprot(universe: Universe) -> str:
    """SwissProt flat-file dump."""
    go_names = {t.accession: t.name for t in universe.go.terms}
    lines = []
    for protein in universe.proteins:
        lines.append(f"ID   {protein.entry_name}")
        lines.append(f"AC   {protein.accession};")
        lines.append(f"DE   {protein.name}.")
        lines.append(f"GN   {protein.gene_symbol}")
        for family in protein.interpro:
            lines.append(f"DR   InterPro; {family}; -.")
        for term in protein.go_terms:
            lines.append(f"DR   GO; {term}; {go_names.get(term, '-')}.")
        if protein.ec:
            lines.append(f"DR   Enzyme; {protein.ec}; -.")
        lines.append("//")
    return "\n".join(lines) + "\n"


def emit_interpro(universe: Universe) -> str:
    """InterPro entry list TSV."""
    lines = ["accession\tname\tparent\tgo"]
    for record in universe.interpro:
        go_cell = "|".join(record.go_terms)
        lines.append(
            f"{record.accession}\t{record.name}\t{record.parent or ''}\t{go_cell}"
        )
    return "\n".join(lines) + "\n"


def emit_goa(universe: Universe) -> str:
    """GO annotation (GAF 1.0) file over the universe's proteins.

    Curated (IDA) and electronic (IEA) evidence codes are mixed ~60/40, so
    the import produces reduced-evidence associations and classifies the
    GOA ↔ GO mapping as Similarity — the Fact/Similarity split of paper
    Section 3 exercised end to end.
    """
    rng = np.random.default_rng(universe.config.seed + 31)
    lines = ["!gaf-version: 1.0"]
    for protein in universe.proteins:
        for term in protein.go_terms:
            evidence = "IDA" if rng.random() < 0.6 else "IEA"
            columns = [
                "UniProtKB", protein.accession, protein.gene_symbol, "",
                term, "GO_REF:0000002", evidence, "", "P", protein.name,
                protein.entry_name, "protein", "taxon:9606",
                universe.config.release.replace("-", "") + "01", "UniProtKB",
            ]
            lines.append("\t".join(columns))
    return "\n".join(lines) + "\n"


def emit_ensembl(universe: Universe) -> str:
    """Ensembl/BioMart gene export TSV."""
    lines = ["gene_id\tname\tchromosome\tband\tlocuslink"]
    for gene in universe.genes:
        if gene.ensembl is None:
            continue
        band = gene.location[len(gene.chromosome):]
        lines.append(
            f"{gene.ensembl}\t{gene.symbol}\t{gene.chromosome}\t{band}\t{gene.locus}"
        )
    return "\n".join(lines) + "\n"
