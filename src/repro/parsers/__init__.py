"""Source-specific parsers — the Parse step of data import (Section 4.1).

Importing this package registers every built-in parser with the registry in
:mod:`repro.parsers.base`.
"""

from repro.parsers.base import (
    SourceParser,
    get_parser,
    has_parser,
    register_parser,
    registered_parsers,
)
from repro.parsers.ensembl import EnsemblParser
from repro.parsers.gaf import EVIDENCE_VALUES, GafParser
from repro.parsers.enzyme import EnzymeParser
from repro.parsers.generic_tsv import GenericTsvParser
from repro.parsers.go_obo import GoOboParser
from repro.parsers.hugo import HugoParser
from repro.parsers.interpro import InterProParser
from repro.parsers.locuslink import LocusLinkParser
from repro.parsers.netaffx import NetAffxParser
from repro.parsers.omim import OmimParser
from repro.parsers.swissprot import SwissProtParser
from repro.parsers.targets import TargetInfo, known_targets, register_target, target_info
from repro.parsers.unigene import UnigeneParser

__all__ = [
    "EVIDENCE_VALUES",
    "EnsemblParser",
    "GafParser",
    "EnzymeParser",
    "GenericTsvParser",
    "GoOboParser",
    "HugoParser",
    "InterProParser",
    "LocusLinkParser",
    "NetAffxParser",
    "OmimParser",
    "SourceParser",
    "SwissProtParser",
    "TargetInfo",
    "UnigeneParser",
    "get_parser",
    "has_parser",
    "known_targets",
    "register_parser",
    "register_target",
    "registered_parsers",
    "target_info",
]
