"""Parser for NetAffx probe-set annotation files (Affymetrix CSV format).

NetAffx is the vendor source of annotations for microarray probe sets
(paper Section 1 and 5.2).  The accepted format is the quoted CSV that
Affymetrix ships::

    "Probe Set ID","Gene Symbol","UniGene ID","LocusLink","Gene Ontology Biological Process"
    "1000_at","APRT","Hs.28914","353","GO:0009116 // nucleoside metabolism"

GO cells may list several terms separated by ``///``; each term may carry a
`` // ``-separated description.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Iterator

from repro.eav.model import EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser

_COLUMN_TO_TARGET = {
    "gene symbol": "Hugo",
    "unigene id": "Unigene",
    "locuslink": "LocusLink",
    "gene ontology biological process": "GO",
    "gene ontology molecular function": "GO",
    "gene ontology cellular component": "GO",
    "chromosomal location": "Location",
    "swissprot": "SwissProt",
    "ensembl": "Ensembl",
}


@register_parser
class NetAffxParser(SourceParser):
    """Parse NetAffx CSV annotation files into EAV rows."""

    source_name = "NetAffx"
    content = SourceContent.GENE
    structure = SourceStructure.FLAT
    format_description = "Affymetrix quoted CSV with 'Probe Set ID' column"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        reader = csv.reader(lines)
        header: list[str] | None = None
        for line_number, cells in enumerate(reader, start=1):
            if not cells or all(not cell.strip() for cell in cells):
                continue
            if header is None:
                header = [cell.strip().lower() for cell in cells]
                self.require(
                    "probe set id" in header,
                    "NetAffx file must have a 'Probe Set ID' column",
                    line_number,
                )
                continue
            record = dict(zip(header, cells))
            probe = record.get("probe set id", "").strip()
            self.require(bool(probe), "row without a probe set id", line_number)
            for column, target in _COLUMN_TO_TARGET.items():
                value = record.get(column, "").strip()
                if not value or value == "---":
                    continue
                for part in value.split("///"):
                    accession, __, text = part.strip().partition("//")
                    accession = accession.strip()
                    if accession:
                        yield EavRow(
                            probe, target, accession, text=text.strip() or None
                        )
