"""Generic TSV parser — the fallback for sources without a dedicated parser.

The paper's claim is that integrating a new source mainly consists of
writing a parser.  This module lowers that cost to zero for any source that
can export a simple table: the first column identifies the entity; every
other column is an annotation target named by its header.

Format::

    #source: MyArrayVendor
    id	Name	GO	LocusLink
    probe_1	my probe	GO:0009116|GO:0016757	353

* multi-valued cells use ``|`` separators,
* a value ``acc^some text`` carries the accession and its text component,
* the reserved headers ``Name``, ``Number``, ``IS_A`` and ``CONTAINS`` have
  their usual Import-step meaning.

Because :class:`GenericTsvParser` is configured with a source name instead
of registering one globally, instantiate it directly rather than going
through :func:`repro.parsers.base.get_parser`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, NUMBER_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser


class GenericTsvParser(SourceParser):
    """Parse any entity-per-row TSV into EAV rows."""

    source_name = "GenericTSV"
    content = SourceContent.OTHER
    structure = SourceStructure.FLAT
    format_description = "TSV: first column = entity id, other columns = targets"

    def __init__(
        self,
        source_name: str | None = None,
        content: SourceContent | str | None = None,
        structure: SourceStructure | str | None = None,
    ) -> None:
        if source_name is not None:
            self.source_name = source_name
        if content is not None:
            self.content = SourceContent.parse(content)
        if structure is not None:
            self.structure = SourceStructure.parse(structure)

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        header: list[str] | None = None
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("#"):
                self._consume_directive(stripped)
                continue
            cells = line.split("\t")
            if header is None:
                header = [cell.strip() for cell in cells]
                self.require(
                    len(header) >= 2,
                    "generic TSV needs an id column and at least one target",
                    line_number,
                )
                continue
            entity = cells[0].strip()
            self.require(bool(entity), "row without an entity id", line_number)
            for target, cell in zip(header[1:], cells[1:]):
                for value in self.split_multi(cell):
                    yield self._row(entity, target, value, line_number)

    def _consume_directive(self, line: str) -> None:
        """Apply ``#source:``/``#content:``/``#structure:`` file directives."""
        key, sep, value = line[1:].partition(":")
        if not sep:
            return
        key = key.strip().lower()
        value = value.strip()
        if key == "source" and value:
            self.source_name = value
        elif key == "content" and value:
            self.content = SourceContent.parse(value)
        elif key == "structure" and value:
            self.structure = SourceStructure.parse(value)

    def _row(self, entity: str, target: str, value: str, line_number: int) -> EavRow:
        accession, sep, text = value.partition("^")
        accession = accession.strip()
        text = text.strip() if sep else ""
        self.require(bool(accession), f"empty value in column {target!r}", line_number)
        if target == NAME_TARGET:
            return EavRow(entity, NAME_TARGET, accession, text=text or accession)
        if target == NUMBER_TARGET:
            try:
                number = float(accession)
            except ValueError as exc:
                raise_number = f"Number column holds non-numeric {accession!r}"
                self.require(False, raise_number, line_number)
                raise AssertionError from exc  # unreachable
            return EavRow(entity, NUMBER_TARGET, accession, number=number)
        return EavRow(entity, target, accession, text=text or None)
