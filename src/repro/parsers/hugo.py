"""Parser for HUGO gene nomenclature dumps (tab-separated).

Accepted format (header required)::

    symbol	name	locuslink	omim
    APRT	adenine phosphoribosyltransferase	353	102600

Empty cells are allowed; multi-valued cells use ``|`` separators.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser

_COLUMN_TO_TARGET = {
    "locuslink": "LocusLink",
    "omim": "OMIM",
    "ensembl": "Ensembl",
    "location": "Location",
}


@register_parser
class HugoParser(SourceParser):
    """Parse HUGO nomenclature TSV dumps into EAV rows."""

    source_name = "Hugo"
    content = SourceContent.GENE
    structure = SourceStructure.FLAT
    format_description = "TSV with header: symbol, name, locuslink, omim, ..."

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        header: list[str] | None = None
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            cells = line.split("\t")
            if header is None:
                header = [cell.strip().lower() for cell in cells]
                self.require(
                    "symbol" in header,
                    "HUGO dump header must contain a 'symbol' column",
                    line_number,
                )
                continue
            record = dict(zip(header, cells))
            symbol = record.get("symbol", "").strip()
            self.require(bool(symbol), "row without a gene symbol", line_number)
            name = record.get("name", "").strip()
            if name:
                yield EavRow(symbol, NAME_TARGET, name, text=name)
            for column, target in _COLUMN_TO_TARGET.items():
                value = record.get(column, "").strip()
                for accession in self.split_multi(value):
                    yield EavRow(symbol, target, accession)
