"""Parser for GeneOntology in (simplified) OBO format.

Accepted format::

    format-version: 1.2

    [Term]
    id: GO:0009116
    name: nucleoside metabolism
    namespace: biological_process
    is_a: GO:0009117 ! nucleotide metabolism

Emitted EAV rows:

* ``Name`` rows carrying each term's name,
* ``IS_A`` rows linking a term to its parent terms (the taxonomy
  structure, imported as an intra-source Is-a relationship),
* ``CONTAINS`` rows linking each namespace partition (e.g.
  ``GO.BiologicalProcess``) to its member terms, imported as a Contains
  relationship between GO and the partition source (paper Section 3,
  structural relationships).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import CONTAINS_TARGET, IS_A_TARGET, NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser

#: OBO namespace label -> partition source name.
_NAMESPACE_PARTITIONS = {
    "biological_process": "GO.BiologicalProcess",
    "molecular_function": "GO.MolecularFunction",
    "cellular_component": "GO.CellularComponent",
}


@register_parser
class GoOboParser(SourceParser):
    """Parse GO terms from OBO stanzas into EAV rows."""

    source_name = "GO"
    content = SourceContent.OTHER
    structure = SourceStructure.NETWORK
    format_description = "OBO 1.2 [Term] stanzas with id/name/namespace/is_a"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        term_id: str | None = None
        in_term = False
        pending: list[EavRow] = []
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.strip()
            if line.startswith("["):
                yield from self._flush(pending)
                in_term = line == "[Term]"
                term_id = None
                continue
            if not in_term or not line or line.startswith("!"):
                continue
            key, sep, value = line.partition(":")
            if not sep:
                continue
            key = key.strip()
            value = value.strip()
            if key == "id":
                self.require(bool(value), "empty term id", line_number)
                term_id = value
            elif key == "is_obsolete" and value.lower() == "true":
                pending.clear()
                in_term = False
                term_id = None
            elif term_id is not None:
                pending.extend(self._term_rows(term_id, key, value))
        yield from self._flush(pending)

    @staticmethod
    def _flush(pending: list[EavRow]) -> Iterator[EavRow]:
        yield from pending
        pending.clear()

    def _term_rows(self, term_id: str, key: str, value: str) -> Iterator[EavRow]:
        if key == "name":
            yield EavRow(term_id, NAME_TARGET, value, text=value)
        elif key == "namespace":
            partition = _NAMESPACE_PARTITIONS.get(value.lower())
            if partition is not None:
                yield EavRow(partition, CONTAINS_TARGET, term_id)
        elif key == "is_a":
            parent = value.split("!", 1)[0].strip()
            self.require(bool(parent), f"empty is_a parent for {term_id}")
            yield EavRow(term_id, IS_A_TARGET, parent)
        elif key == "xref":
            # Cross-references like "xref: Enzyme:2.4.2.7".
            target, sep, accession = value.partition(":")
            if sep and accession.strip():
                yield EavRow(term_id, target.strip(), accession.strip())
