"""Parser for UniGene cluster records (simplified ``Hs.data`` format).

Accepted format::

    ID          Hs.28914
    TITLE       adenine phosphoribosyltransferase
    GENE        APRT
    LOCUSLINK   353
    CHROMOSOME  16
    EXPRESS     brain; liver
    //

Each ``//`` terminates a cluster record.  ``EXPRESS`` tissues become
``Tissue`` annotations; the remaining keys map to Hugo/LocusLink/Chromosome.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser

_KEY_TO_TARGET = {
    "GENE": "Hugo",
    "LOCUSLINK": "LocusLink",
    "CHROMOSOME": "Chromosome",
    "CYTOBAND": "Location",
}


@register_parser
class UnigeneParser(SourceParser):
    """Parse UniGene ``Hs.data``-style cluster records into EAV rows."""

    source_name = "Unigene"
    content = SourceContent.GENE
    structure = SourceStructure.FLAT
    format_description = "KEY value lines per cluster, '//' record terminator"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        cluster: str | None = None
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            if line.strip() == "//":
                cluster = None
                continue
            parts = line.split(None, 1)
            self.require(
                len(parts) == 2, f"expected 'KEY value', got {line!r}", line_number
            )
            key, value = parts[0].upper(), parts[1].strip()
            if key == "ID":
                cluster = value
                continue
            self.require(
                cluster is not None,
                f"field {key!r} before any ID line",
                line_number,
            )
            if key == "TITLE":
                yield EavRow(cluster, NAME_TARGET, value, text=value)
            elif key == "EXPRESS":
                for tissue in self.split_multi(value, separator=";"):
                    yield EavRow(cluster, "Tissue", tissue)
            elif key in _KEY_TO_TARGET:
                yield EavRow(cluster, _KEY_TO_TARGET[key], value)
            # Unknown keys (SCOUNT, SEQUENCE, ...) are intentionally skipped:
            # they describe cluster internals, not annotations.
