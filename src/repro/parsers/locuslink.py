"""Parser for LocusLink records (simplified ``LL_tmpl`` flat-file format).

The accepted format mirrors NCBI's historical ``LL_tmpl`` dump: records
start with ``>>`` followed by the locus id, and carry ``KEY: value`` lines::

    >>353
    OFFICIAL_SYMBOL: APRT
    NAME: adenine phosphoribosyltransferase
    CHR: 16
    MAP: 16q24
    ECNUM: 2.4.2.7
    GO: GO:0009116|nucleoside metabolism
    OMIM: 102600
    UNIGENE: Hs.28914
    ALIAS_SYMBOL: AMP

Parsing a record yields exactly the EAV rows of paper Table 1 — one row per
annotation with the annotating source as target.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser

#: LL_tmpl key -> EAV target name.
_KEY_TO_TARGET = {
    "OFFICIAL_SYMBOL": "Hugo",
    "CHR": "Chromosome",
    "MAP": "Location",
    "ECNUM": "Enzyme",
    "GO": "GO",
    "OMIM": "OMIM",
    "UNIGENE": "Unigene",
    "ALIAS_SYMBOL": "Alias",
    "ENSEMBL": "Ensembl",
    "SWISSPROT": "SwissProt",
}


@register_parser
class LocusLinkParser(SourceParser):
    """Parse LocusLink ``LL_tmpl``-style records into EAV rows."""

    source_name = "LocusLink"
    content = SourceContent.GENE
    structure = SourceStructure.FLAT
    format_description = ">>locus records with KEY: value annotation lines"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        locus: str | None = None
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            if line.startswith(">>"):
                locus = line[2:].strip()
                self.require(bool(locus), "empty locus id after '>>'", line_number)
                continue
            self.require(
                locus is not None,
                f"annotation line before any '>>' record: {line!r}",
                line_number,
            )
            key, sep, value = line.partition(":")
            self.require(bool(sep), f"expected 'KEY: value', got {line!r}", line_number)
            key = key.strip().upper()
            value = value.strip()
            if not value:
                continue
            yield from self._rows_for(locus, key, value)

    def _rows_for(self, locus: str, key: str, value: str) -> Iterator[EavRow]:
        if key == "NAME":
            yield EavRow(locus, NAME_TARGET, value, text=value)
            return
        target = _KEY_TO_TARGET.get(key)
        if target is None:
            # Unknown keys become targets of their own; the generic import
            # step will register them as flat Other sources.  This is what
            # makes adding new LocusLink annotation fields a no-op.
            target = key.title()
        accession, __, text = value.partition("|")
        accession = accession.strip()
        text = text.strip() or None
        if text and "|" in text:
            # GO lines may carry "term name|evidence_code"; keep the name.
            text = text.split("|", 1)[0].strip()
        yield EavRow(locus, target, accession, text=text)
