"""Parser for SwissProt entries (simplified UniProtKB flat-file format).

Accepted format::

    ID   APRT_HUMAN
    AC   P07741;
    DE   Adenine phosphoribosyltransferase.
    GN   APRT
    DR   InterPro; IPR000312; Phosphoribosyltransferase.
    DR   GO; GO:0009116; nucleoside metabolism.
    DR   Enzyme; 2.4.2.7; -.
    //

The primary accession (first ``AC`` value) identifies the entry; ``DR``
lines become cross-source annotations; ``GN`` becomes a Hugo annotation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser

#: DR database label -> EAV target (labels not listed pass through as-is).
_DR_TARGETS = {
    "interpro": "InterPro",
    "go": "GO",
    "enzyme": "Enzyme",
    "omim": "OMIM",
    "ensembl": "Ensembl",
}


@register_parser
class SwissProtParser(SourceParser):
    """Parse SwissProt flat-file entries into EAV rows."""

    source_name = "SwissProt"
    content = SourceContent.PROTEIN
    structure = SourceStructure.FLAT
    format_description = "UniProtKB-style ID/AC/DE/GN/DR lines, '//' terminator"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        accession: str | None = None
        pending: list[tuple[str, str, str | None]] = []
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip():
                continue
            if line.strip() == "//":
                accession = None
                pending.clear()
                continue
            code = line[:2].upper()
            value = line[5:].strip() if len(line) > 5 else ""
            if code == "AC" and accession is None:
                accession = value.split(";", 1)[0].strip()
                self.require(bool(accession), "empty AC accession", line_number)
                for target, acc, text in pending:
                    yield EavRow(accession, target, acc, text=text)
                pending.clear()
            elif code in ("DE", "GN", "DR"):
                for row in self._entry_rows(code, value, line_number):
                    if accession is None:
                        pending.append(row)
                    else:
                        target, acc, text = row
                        yield EavRow(accession, target, acc, text=text)

    def _entry_rows(
        self, code: str, value: str, line_number: int
    ) -> Iterator[tuple[str, str, str | None]]:
        if code == "DE":
            name = value.rstrip(".")
            if name:
                yield (NAME_TARGET, name, name)
        elif code == "GN":
            symbol = value.rstrip(".").strip()
            if symbol:
                yield ("Hugo", symbol, None)
        elif code == "DR":
            parts = [part.strip().rstrip(".") for part in value.split(";")]
            self.require(
                len(parts) >= 2, f"DR line needs 'DB; accession', got {value!r}",
                line_number,
            )
            database = parts[0].lower()
            target = _DR_TARGETS.get(database, parts[0])
            text = parts[2] if len(parts) > 2 and parts[2] not in ("-", "") else None
            if parts[1]:
                yield (target, parts[1], text)
