"""Parser for GO annotation files (GAF format, ``gene_association.*``).

The GO consortium distributes curated gene-product → GO-term annotations
as 15-column tab-separated GAF files::

    !gaf-version: 1.0
    SGD	S000000001	APRT	 	GO:0009116	PMID:1	IDA	 	P	adenine phosphoribosyltransferase	APRT1	gene	taxon:9606	20031001	SGD

Relevant columns: 2 (object id), 3 (symbol), 4 (qualifier — ``NOT``
annotations are skipped), 5 (GO id), 7 (evidence code), 10 (name).

Evidence codes map onto GAM evidence values: experimental codes (IDA, IMP,
IGI, IPI, IEP, TAS, IC) count as facts (1.0); computational/electronic
codes carry reduced plausibility, so a GAF import with IEA annotations
produces a Similarity mapping — exactly the Fact/Similarity split of paper
Section 3.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser

#: GO evidence code -> plausibility stored on the association.
EVIDENCE_VALUES = {
    # Experimental / author statements: facts.
    "IDA": 1.0, "IMP": 1.0, "IGI": 1.0, "IPI": 1.0, "IEP": 1.0,
    "TAS": 1.0, "IC": 1.0,
    # Computational analysis: strong but indirect.
    "ISS": 0.9, "ISO": 0.9, "ISA": 0.9, "ISM": 0.9, "IGC": 0.85,
    "RCA": 0.8,
    # Electronic, no curator: weakest.
    "IEA": 0.7,
    # No biological data available.
    "ND": 0.5,
}

#: Columns of a GAF 1.0/2.x row (0-based indices used below).
_MIN_COLUMNS = 15


@register_parser
class GafParser(SourceParser):
    """Parse GO annotation (GAF) files into EAV rows."""

    source_name = "GOA"
    content = SourceContent.GENE
    structure = SourceStructure.FLAT
    format_description = "15-column GAF rows; '!' comment lines"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        seen_names: set[str] = set()
        seen_symbols: set[tuple[str, str]] = set()
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("!"):
                continue
            columns = line.split("\t")
            self.require(
                len(columns) >= _MIN_COLUMNS,
                f"GAF row needs {_MIN_COLUMNS} columns, got {len(columns)}",
                line_number,
            )
            object_id = columns[1].strip()
            self.require(bool(object_id), "row without an object id", line_number)
            qualifier = columns[3].strip().upper()
            if "NOT" in qualifier.split("|"):
                # Negative annotations assert absence; GAM models presence.
                continue
            go_id = columns[4].strip()
            self.require(
                go_id.startswith("GO:"),
                f"column 5 must be a GO id, got {go_id!r}",
                line_number,
            )
            evidence_code = columns[6].strip().upper()
            evidence = EVIDENCE_VALUES.get(evidence_code, 0.7)
            yield EavRow(object_id, "GO", go_id, evidence=evidence)
            symbol = columns[2].strip()
            if symbol and (object_id, symbol) not in seen_symbols:
                seen_symbols.add((object_id, symbol))
                yield EavRow(object_id, "Hugo", symbol)
            name = columns[9].strip()
            if name and object_id not in seen_names:
                seen_names.add(object_id)
                yield EavRow(object_id, NAME_TARGET, name, text=name)
