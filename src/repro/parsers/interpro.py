"""Parser for InterPro protein-family entries (simplified list format).

Accepted format (tab-separated, header required)::

    accession	name	parent	go
    IPR000312	Phosphoribosyltransferase	IPR999000	GO:0009116|GO:0016757

``parent`` expresses the InterPro family/subfamily hierarchy and imports as
an intra-source Is-a relationship; ``go`` lists cross-references to GO.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import IS_A_TARGET, NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser


@register_parser
class InterProParser(SourceParser):
    """Parse InterPro entry lists into EAV rows."""

    source_name = "InterPro"
    content = SourceContent.PROTEIN
    structure = SourceStructure.NETWORK
    format_description = "TSV with header: accession, name, parent, go"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        header: list[str] | None = None
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            cells = line.split("\t")
            if header is None:
                header = [cell.strip().lower() for cell in cells]
                self.require(
                    "accession" in header,
                    "InterPro list must have an 'accession' column",
                    line_number,
                )
                continue
            record = dict(zip(header, cells))
            accession = record.get("accession", "").strip()
            self.require(bool(accession), "row without an accession", line_number)
            name = record.get("name", "").strip()
            if name:
                yield EavRow(accession, NAME_TARGET, name, text=name)
            parent = record.get("parent", "").strip()
            if parent:
                yield EavRow(accession, IS_A_TARGET, parent)
            for go_term in self.split_multi(record.get("go", "").strip()):
                yield EavRow(accession, "GO", go_term)
