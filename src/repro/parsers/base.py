"""Parser protocol and registry.

Per the paper (Section 4.1), Parse is the only source-specific code needed
to integrate a new source: a parser reads a source's native flat file and
emits the uniform EAV format.  Everything downstream (Import) is generic.

A parser declares the GAM metadata of the source it produces (content and
structure classification) so the Import step can register the source
correctly.  Parsers register themselves under the source name via
:func:`register_parser`, and the import pipeline looks them up with
:func:`get_parser`.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.eav.model import EavRow
from repro.eav.store import EavDataset
from repro.gam.enums import SourceContent, SourceStructure
from repro.gam.errors import ParseError


class SourceParser(abc.ABC):
    """Base class for source-specific parsers.

    Subclasses set the class attributes and implement :meth:`parse_lines`.
    """

    #: Name of the source this parser produces (e.g. ``"LocusLink"``).
    source_name: str = ""
    #: GAM content classification of the source.
    content: SourceContent = SourceContent.OTHER
    #: GAM structure classification of the source.
    structure: SourceStructure = SourceStructure.FLAT
    #: Human-readable description of the accepted native format.
    format_description: str = ""

    def parse(self, path: str | Path, release: str | None = None) -> EavDataset:
        """Parse a native flat file into an EAV dataset."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            return self.parse_stream(handle, release=release)

    def parse_stream(
        self, lines: Iterable[str], release: str | None = None
    ) -> EavDataset:
        """Parse an iterable of native-format lines into an EAV dataset."""
        # Consume the rows before naming the dataset: parsers may adjust
        # their source metadata from in-file directives while parsing
        # (e.g. GenericTsvParser's ``#source:`` line).
        rows = list(self.parse_lines(lines))
        dataset = EavDataset(self.source_name, release=release)
        dataset.extend(rows)
        return dataset

    def parse_text(self, text: str, release: str | None = None) -> EavDataset:
        """Parse a native-format string into an EAV dataset."""
        return self.parse_stream(text.splitlines(keepends=True), release=release)

    @abc.abstractmethod
    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        """Yield EAV rows from native-format lines."""

    # -- shared helpers ----------------------------------------------------

    @staticmethod
    def split_multi(value: str, separator: str = "|") -> list[str]:
        """Split a multi-valued field, dropping empty parts."""
        return [part.strip() for part in value.split(separator) if part.strip()]

    @staticmethod
    def require(condition: bool, message: str, line_number: int | None = None) -> None:
        """Raise :class:`ParseError` unless ``condition`` holds."""
        if not condition:
            raise ParseError(message, line_number=line_number)


_REGISTRY: dict[str, type[SourceParser]] = {}


def register_parser(parser_class: type[SourceParser]) -> type[SourceParser]:
    """Class decorator: register a parser under its source name."""
    if not parser_class.source_name:
        raise ValueError(f"{parser_class.__name__} does not set source_name")
    _REGISTRY[parser_class.source_name.lower()] = parser_class
    return parser_class


def get_parser(source_name: str) -> SourceParser:
    """Instantiate the registered parser for a source name."""
    parser_class = _REGISTRY.get(source_name.lower())
    if parser_class is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ParseError(f"no parser registered for {source_name!r} (known: {known})")
    return parser_class()

def has_parser(source_name: str) -> bool:
    """Return True when a parser is registered for the source name."""
    return source_name.lower() in _REGISTRY


def registered_parsers() -> list[str]:
    """Source names with a registered parser, sorted alphabetically."""
    return sorted(parser.source_name for parser in _REGISTRY.values())
