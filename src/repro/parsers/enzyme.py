"""Parser for the ENZYME nomenclature database (ExPASy ``enzyme.dat`` style).

Accepted format::

    ID   2.4.2.7
    DE   Adenine phosphoribosyltransferase.
    //

The EC hierarchy is implicit in the numbering: ``2.4.2.7`` is-a ``2.4.2``
is-a ``2.4`` is-a ``2``.  The parser synthesizes the ``IS_A`` rows (and the
intermediate class entities) so Enzyme imports as a four-level taxonomy —
the paper names Enzyme alongside GO as a taxonomy that Subsumed derivation
and statistical rollups apply to (Sections 3 and 5.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import IS_A_TARGET, NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser


@register_parser
class EnzymeParser(SourceParser):
    """Parse ENZYME ``.dat`` records, synthesizing the EC-number hierarchy."""

    source_name = "Enzyme"
    content = SourceContent.OTHER
    structure = SourceStructure.NETWORK
    format_description = "ID/DE line pairs per enzyme, '//' record terminator"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        ec: str | None = None
        emitted_classes: set[str] = set()
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("CC"):
                continue
            if line.strip() == "//":
                ec = None
                continue
            code = line[:2].strip().upper()
            value = line[2:].strip()
            if code == "ID":
                self.require(bool(value), "empty EC number", line_number)
                ec = value
                yield from self._hierarchy_rows(ec, emitted_classes)
            elif code == "DE" and ec is not None:
                name = value.rstrip(".")
                yield EavRow(ec, NAME_TARGET, name, text=name)

    @staticmethod
    def _hierarchy_rows(ec: str, emitted_classes: set[str]) -> Iterator[EavRow]:
        """Yield IS_A rows up the EC-number chain, each class only once."""
        parts = ec.split(".")
        child = ec
        for depth in range(len(parts) - 1, 0, -1):
            parent = ".".join(parts[:depth])
            yield EavRow(child, IS_A_TARGET, parent)
            if parent in emitted_classes:
                return
            emitted_classes.add(parent)
            child = parent
