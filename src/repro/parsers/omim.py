"""Parser for OMIM records (simplified ``omim.txt`` field format).

Accepted format::

    *RECORD*
    *FIELD* NO
    102600
    *FIELD* TI
    APRT DEFICIENCY
    *FIELD* CS
    ...ignored clinical text...

Only the number (``NO``) and title (``TI``) fields are used; they produce
the OMIM entry and its ``Name`` annotation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser


@register_parser
class OmimParser(SourceParser):
    """Parse OMIM ``*RECORD*``/``*FIELD*`` dumps into EAV rows."""

    source_name = "OMIM"
    content = SourceContent.OTHER
    structure = SourceStructure.FLAT
    format_description = "*RECORD* blocks with *FIELD* NO / *FIELD* TI"

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        field: str | None = None
        entry: str | None = None
        for raw_line in lines:
            line = raw_line.rstrip("\n")
            stripped = line.strip()
            if stripped == "*RECORD*":
                field = None
                entry = None
                continue
            if stripped.startswith("*FIELD*"):
                field = stripped.split(None, 1)[1].strip() if " " in stripped else ""
                continue
            if not stripped:
                continue
            if field == "NO":
                entry = stripped
            elif field == "TI" and entry is not None:
                # Titles may span lines; only the first line is the name.
                title = stripped.lstrip("*#%+^ ").strip()
                if title:
                    yield EavRow(entry, NAME_TARGET, title, text=title)
                    field = None
