"""Catalog of annotation targets and their GAM classification.

When the Import step encounters an annotation target (e.g. ``GO`` or
``Location`` in a parsed LocusLink record) it must register the target as a
source with the right content and structure classification, and decide
whether the resulting mapping is a *Fact* or a *Similarity* relationship.
This catalog centralizes that knowledge; targets not listed default to a
flat ``Other`` source with Fact mappings.
"""

from __future__ import annotations

import dataclasses

from repro.gam.enums import RelType, SourceContent, SourceStructure


@dataclasses.dataclass(frozen=True, slots=True)
class TargetInfo:
    """GAM classification of one annotation target."""

    name: str
    content: SourceContent = SourceContent.OTHER
    structure: SourceStructure = SourceStructure.FLAT
    #: Default relationship type of mappings onto this target.
    rel_type: RelType = RelType.FACT


_CATALOG: dict[str, TargetInfo] = {}


def register_target(info: TargetInfo) -> None:
    """Add or replace a catalog entry."""
    _CATALOG[info.name.lower()] = info


def target_info(name: str) -> TargetInfo:
    """Catalog entry for a target name, with a flat/Other/Fact default."""
    info = _CATALOG.get(name.lower())
    if info is not None:
        return info
    return TargetInfo(name=name)


def known_targets() -> list[str]:
    """All cataloged target names, sorted."""
    return sorted(info.name for info in _CATALOG.values())


def _populate_defaults() -> None:
    gene = SourceContent.GENE
    protein = SourceContent.PROTEIN
    other = SourceContent.OTHER
    flat = SourceStructure.FLAT
    network = SourceStructure.NETWORK
    defaults = [
        # Gene-oriented sources.
        TargetInfo("LocusLink", gene, flat),
        TargetInfo("Unigene", gene, flat),
        TargetInfo("Hugo", gene, flat),
        TargetInfo("Ensembl", gene, flat),
        TargetInfo("NetAffx", gene, flat),
        TargetInfo("Alias", gene, flat),
        # Protein-oriented sources.
        TargetInfo("SwissProt", protein, flat),
        TargetInfo("InterPro", protein, network),
        # Ontologies / taxonomies (Network structure).
        TargetInfo("GO", other, network),
        TargetInfo("Enzyme", other, network),
        # Positional / descriptive attributes modeled as flat sources.
        TargetInfo("Location", other, flat),
        TargetInfo("Chromosome", other, flat),
        TargetInfo("OMIM", other, flat),
        TargetInfo("Species", other, flat),
        TargetInfo("Tissue", other, flat),
        # Computed relationships carry reduced evidence.
        TargetInfo("Homology", gene, flat, RelType.SIMILARITY),
        TargetInfo("BlastHit", protein, flat, RelType.SIMILARITY),
    ]
    for info in defaults:
        register_target(info)


_populate_defaults()
