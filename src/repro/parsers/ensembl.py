"""Parser for Ensembl gene exports (BioMart-style TSV).

Accepted format (header required)::

    gene_id	name	chromosome	band	locuslink
    ENSG00000198931	APRT	16	q24.3	353

Positions map to the ``Chromosome`` and ``Location`` targets; the
cytogenetic location is normalized to ``<chromosome><band>`` (e.g.
``16q24.3``) so Ensembl-derived locations join with LocusLink's ``MAP``
values in annotation views.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.eav.model import NAME_TARGET, EavRow
from repro.gam.enums import SourceContent, SourceStructure
from repro.parsers.base import SourceParser, register_parser


@register_parser
class EnsemblParser(SourceParser):
    """Parse Ensembl/BioMart gene TSV exports into EAV rows."""

    source_name = "Ensembl"
    content = SourceContent.GENE
    structure = SourceStructure.FLAT
    format_description = "TSV with header: gene_id, name, chromosome, band, ..."

    def parse_lines(self, lines: Iterable[str]) -> Iterator[EavRow]:
        header: list[str] | None = None
        for line_number, raw_line in enumerate(lines, start=1):
            line = raw_line.rstrip("\n")
            if not line.strip() or line.startswith("#"):
                continue
            cells = line.split("\t")
            if header is None:
                header = [cell.strip().lower() for cell in cells]
                self.require(
                    "gene_id" in header,
                    "Ensembl export must have a 'gene_id' column",
                    line_number,
                )
                continue
            record = dict(zip(header, cells))
            gene_id = record.get("gene_id", "").strip()
            self.require(bool(gene_id), "row without a gene_id", line_number)
            name = record.get("name", "").strip()
            if name:
                yield EavRow(gene_id, NAME_TARGET, name, text=name)
                yield EavRow(gene_id, "Hugo", name)
            chromosome = record.get("chromosome", "").strip()
            if chromosome:
                yield EavRow(gene_id, "Chromosome", chromosome)
            band = record.get("band", "").strip()
            if chromosome and band:
                yield EavRow(gene_id, "Location", f"{chromosome}{band}")
            for locus in self.split_multi(record.get("locuslink", "").strip()):
                yield EavRow(gene_id, "LocusLink", locus)
