"""repro — a reproduction of GenMapper (Do & Rahm, EDBT 2004).

Flexible integration of molecular-biological annotation data: a generic
annotation model (GAM), a Parse/Import pipeline for heterogeneous sources,
high-level operators (Map, Compose, GenerateView), derived relationships
(Composed, Subsumed), a source-graph path finder and a functional-profiling
analysis layer.

The main entry point is :class:`repro.GenMapper`; see README.md for a
quickstart and DESIGN.md for the system inventory.
"""

from repro.core.genmapper import GenMapper
from repro.gam import (
    Association,
    CombineMethod,
    GamDatabase,
    GamRepository,
    GenMapperError,
    RelType,
    Source,
    SourceContent,
    SourceStructure,
)
from repro.operators import AnnotationView, Mapping, TargetSpec

__version__ = "1.0.0"

__all__ = [
    "AnnotationView",
    "Association",
    "CombineMethod",
    "GamDatabase",
    "GamRepository",
    "GenMapper",
    "GenMapperError",
    "Mapping",
    "RelType",
    "Source",
    "SourceContent",
    "SourceStructure",
    "TargetSpec",
    "__version__",
]
