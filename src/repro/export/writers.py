"""Exporters: save views and mappings "in different formats for further
analysis in external tools" (paper Section 5.1).

Supported formats: ``tsv``, ``csv``, ``json`` and ``html`` for annotation
views; ``tsv`` and ``json`` for mappings.
"""

from __future__ import annotations

import csv
import html
import io
import json
from pathlib import Path

from repro.gam.errors import ExportError
from repro.operators.mapping import Mapping
from repro.operators.views import AnnotationView

VIEW_FORMATS = ("tsv", "csv", "json", "html")
MAPPING_FORMATS = ("tsv", "json")


def render_view(view: AnnotationView, fmt: str = "tsv") -> str:
    """Serialize a view to a string in the requested format."""
    fmt = fmt.lower()
    if fmt == "tsv":
        return view.to_tsv()
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(view.columns)
        for row in view.rows:
            writer.writerow(["" if value is None else value for value in row])
        return buffer.getvalue()
    if fmt == "json":
        return view.to_json()
    if fmt == "html":
        return _view_to_html(view)
    raise ExportError(f"unknown view format {fmt!r} (known: {VIEW_FORMATS})")


def write_view(view: AnnotationView, path: str | Path, fmt: str = "tsv") -> Path:
    """Write a view to a file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_view(view, fmt), encoding="utf-8")
    return path


def _view_to_html(view: AnnotationView) -> str:
    lines = [
        "<table>",
        "  <thead><tr>"
        + "".join(f"<th>{html.escape(col)}</th>" for col in view.columns)
        + "</tr></thead>",
        "  <tbody>",
    ]
    for row in view.rows:
        cells = "".join(
            f"<td>{'' if value is None else html.escape(str(value))}</td>"
            for value in row
        )
        lines.append(f"    <tr>{cells}</tr>")
    lines.append("  </tbody>")
    lines.append("</table>")
    return "\n".join(lines) + "\n"


def render_mapping(mapping: Mapping, fmt: str = "tsv") -> str:
    """Serialize a mapping to a string in the requested format."""
    fmt = fmt.lower()
    if fmt == "tsv":
        lines = [f"{mapping.source}\t{mapping.target}\tevidence"]
        for assoc in mapping:
            lines.append(
                f"{assoc.source_accession}\t{assoc.target_accession}"
                f"\t{assoc.evidence:g}"
            )
        return "\n".join(lines) + "\n"
    if fmt == "json":
        return json.dumps(
            {
                "source": mapping.source,
                "target": mapping.target,
                "rel_type": mapping.rel_type.value if mapping.rel_type else None,
                "associations": [
                    {
                        "source": assoc.source_accession,
                        "target": assoc.target_accession,
                        "evidence": assoc.evidence,
                    }
                    for assoc in mapping
                ],
            },
            indent=2,
        )
    raise ExportError(f"unknown mapping format {fmt!r} (known: {MAPPING_FORMATS})")


def write_mapping(mapping: Mapping, path: str | Path, fmt: str = "tsv") -> Path:
    """Write a mapping to a file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_mapping(mapping, fmt), encoding="utf-8")
    return path
