"""Export of views and mappings for external analysis tools."""

from repro.export.writers import (
    MAPPING_FORMATS,
    VIEW_FORMATS,
    render_mapping,
    render_view,
    write_mapping,
    write_view,
)

__all__ = [
    "MAPPING_FORMATS",
    "VIEW_FORMATS",
    "render_mapping",
    "render_view",
    "write_mapping",
    "write_view",
]
