"""Web-link navigation baseline (paper Section 1).

"The use of web-links ... represents a first integration approach, which
is very useful for interactive navigation.  However, they do not support
automated large-scale analysis tasks."

This baseline models that world: every object is a web page; its
cross-references are links; obtaining an annotation profile means fetching
pages one at a time.  A per-fetch latency (default 50 ms, an optimistic
round trip to an early-2000s public database) is *accounted* rather than
slept, so benchmarks can report the wall-clock a real link-chasing client
would pay without actually waiting.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict, deque

from repro.eav.model import RESERVED_TARGETS
from repro.eav.store import EavDataset


@dataclasses.dataclass(frozen=True, slots=True)
class NavigationCost:
    """The accounted cost of a navigation task."""

    page_fetches: int
    simulated_seconds: float


class WebLinkNavigator:
    """Object-at-a-time navigation over cross-reference links."""

    def __init__(self, fetch_latency: float = 0.05) -> None:
        self.fetch_latency = fetch_latency
        #: (source, accession) -> list of (target source, accession).
        self._links: dict[tuple[str, str], list[tuple[str, str]]] = defaultdict(list)
        self.page_fetches = 0

    def load(self, dataset: EavDataset) -> None:
        """Register the links found on one source's pages."""
        for row in dataset:
            if row.target in RESERVED_TARGETS:
                continue
            key = (dataset.source_name, row.entity)
            self._links[key].append((row.target, row.accession))
            # Links are bidirectional on the web of annotation pages: the
            # target page lists the referencing object too.
            self._links[(row.target, row.accession)].append(
                (dataset.source_name, row.entity)
            )

    def fetch(self, source: str, accession: str) -> list[tuple[str, str]]:
        """Fetch one page: returns its outgoing links, accounts latency."""
        self.page_fetches += 1
        return list(self._links.get((source, accession), ()))

    def reset_counters(self) -> None:
        """Zero the fetch counter."""
        self.page_fetches = 0

    @property
    def simulated_seconds(self) -> float:
        """Accounted wall-clock of all fetches so far."""
        return self.page_fetches * self.fetch_latency

    def annotation_profile(
        self,
        source: str,
        accession: str,
        target: str,
        max_hops: int = 3,
    ) -> set[str]:
        """Find a target-source annotation by breadth-first link chasing.

        This is what an interactive user does: start at the object's page,
        click through cross-references until pages of the target source
        are reached.  Each visited page is one fetch.
        """
        start = (source, accession)
        visited = {start}
        queue = deque([(start, 0)])
        found: set[str] = set()
        while queue:
            (page_source, page_accession), hops = queue.popleft()
            if hops >= max_hops:
                continue
            for link_source, link_accession in self.fetch(
                page_source, page_accession
            ):
                page = (link_source, link_accession)
                if page in visited:
                    continue
                visited.add(page)
                if link_source == target:
                    found.add(link_accession)
                    continue  # target pages need no further expansion
                queue.append((page, hops + 1))
        return found

    def profile_cost(
        self,
        source: str,
        accessions: list[str],
        target: str,
        max_hops: int = 3,
    ) -> tuple[dict[str, set[str]], NavigationCost]:
        """Annotation profiles for many objects, with the accounted cost."""
        before = self.page_fetches
        profiles = {
            accession: self.annotation_profile(source, accession, target, max_hops)
            for accession in accessions
        }
        fetches = self.page_fetches - before
        return profiles, NavigationCost(fetches, fetches * self.fetch_latency)
