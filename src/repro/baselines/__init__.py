"""Baseline systems the paper positions GenMapper against (Section 1)."""

from repro.baselines.srs import SrsEntry, SrsSystem
from repro.baselines.warehouse import (
    EvolutionEvent,
    SchemaEvolutionRequired,
    StarWarehouse,
)
from repro.baselines.weblink import NavigationCost, WebLinkNavigator

__all__ = [
    "EvolutionEvent",
    "NavigationCost",
    "SchemaEvolutionRequired",
    "SrsEntry",
    "SrsSystem",
    "StarWarehouse",
    "WebLinkNavigator",
]
