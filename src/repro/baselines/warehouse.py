"""Application-specific warehouse baseline (global-schema approach).

The paper's criticism of classic warehouse integration (IGD, GIMS,
DataFoundry): "these systems are typically built on the notion of an
application-specific global schema ... construction and maintenance of the
global schema (schema integration, schema evolution) are highly difficult
and do not scale well to many sources."

This baseline is such a warehouse: a *fixed* relational schema designed
around an anticipated set of annotation attributes.  Integrating a source
whose attributes fit the schema works; any new attribute requires explicit
schema evolution (an ``ALTER TABLE``-equivalent), which the class counts.
The integration-effort benchmark compares these counts against GenMapper's
GAM, where new sources and attributes never change the schema.
"""

from __future__ import annotations

import dataclasses
import sqlite3

from repro.eav.model import RESERVED_TARGETS
from repro.eav.store import EavDataset


class SchemaEvolutionRequired(Exception):
    """The fixed schema cannot hold an attribute without being altered."""

    def __init__(self, source: str, attribute: str) -> None:
        super().__init__(
            f"warehouse schema has no column for {source!r}.{attribute!r};"
            " run evolve_schema() first"
        )
        self.source = source
        self.attribute = attribute


@dataclasses.dataclass(frozen=True, slots=True)
class EvolutionEvent:
    """One schema change the warehouse needed."""

    source: str
    attribute: str
    ddl: str


def _identifier(name: str) -> str:
    """A safe SQL identifier from a source/attribute name."""
    cleaned = "".join(ch if ch.isalnum() else "_" for ch in name.lower())
    return cleaned.strip("_") or "x"


class StarWarehouse:
    """A gene-centric star schema with per-attribute dimension tables."""

    #: The attributes the schema was designed for, per entity table.
    DESIGNED_ATTRIBUTES = ("Hugo", "GO", "Location", "OMIM")

    def __init__(self) -> None:
        self._connection = sqlite3.connect(":memory:")
        self._connection.row_factory = sqlite3.Row
        #: (entity_table, attribute) pairs with an existing bridge table.
        self._columns: set[tuple[str, str]] = set()
        self.evolution_log: list[EvolutionEvent] = []
        self._ddl_statements = 0

    @property
    def schema_changes(self) -> int:
        """Number of DDL statements run after initial design."""
        return len(self.evolution_log)

    def design(self, source: str) -> None:
        """Create the entity and bridge tables the designers anticipated."""
        entity = _identifier(source)
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS {entity}"
            " (accession TEXT PRIMARY KEY, name TEXT)"
        )
        for attribute in self.DESIGNED_ATTRIBUTES:
            self._create_bridge(entity, attribute)

    def _create_bridge(self, entity: str, attribute: str) -> str:
        bridge = f"{entity}_{_identifier(attribute)}"
        self._connection.execute(
            f"CREATE TABLE IF NOT EXISTS {bridge}"
            " (accession TEXT NOT NULL, value TEXT NOT NULL,"
            "  UNIQUE (accession, value))"
        )
        self._columns.add((entity, attribute))
        return bridge

    def evolve_schema(self, source: str, attribute: str) -> EvolutionEvent:
        """Extend the schema for an unanticipated attribute (logged)."""
        entity = _identifier(source)
        bridge = self._create_bridge(entity, attribute)
        event = EvolutionEvent(
            source=source,
            attribute=attribute,
            ddl=f"CREATE TABLE {bridge} (accession, value)",
        )
        self.evolution_log.append(event)
        return event

    def integrate(self, dataset: EavDataset, auto_evolve: bool = False) -> int:
        """Load one source; fails on unanticipated attributes.

        With ``auto_evolve=True`` the needed schema changes are applied
        (and counted) instead of raising — this is how the integration-
        effort benchmark quantifies the maintenance burden.
        """
        entity = _identifier(dataset.source_name)
        tables = {
            row[0]
            for row in self._connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if entity not in tables:
            if not auto_evolve:
                raise SchemaEvolutionRequired(dataset.source_name, "<entity table>")
            self._connection.execute(
                f"CREATE TABLE {entity} (accession TEXT PRIMARY KEY, name TEXT)"
            )
            self.evolution_log.append(
                EvolutionEvent(
                    dataset.source_name,
                    "<entity table>",
                    f"CREATE TABLE {entity} (accession, name)",
                )
            )
        loaded = 0
        for row in dataset:
            if row.target == "Name":
                self._connection.execute(
                    f"INSERT INTO {entity} (accession, name) VALUES (?, ?)"
                    " ON CONFLICT (accession) DO UPDATE SET name = excluded.name",
                    (row.entity, row.text or row.accession),
                )
                continue
            if row.target in RESERVED_TARGETS:
                continue
            if (entity, row.target) not in self._columns:
                if not auto_evolve:
                    raise SchemaEvolutionRequired(dataset.source_name, row.target)
                self.evolve_schema(dataset.source_name, row.target)
            bridge = f"{entity}_{_identifier(row.target)}"
            self._connection.execute(
                f"INSERT OR IGNORE INTO {bridge} (accession, value) VALUES (?, ?)",
                (row.entity, row.accession),
            )
            self._connection.execute(
                f"INSERT OR IGNORE INTO {entity} (accession, name) VALUES (?, NULL)",
                (row.entity,),
            )
            loaded += 1
        self._connection.commit()
        return loaded

    def annotations(self, source: str, attribute: str) -> set[tuple[str, str]]:
        """All (accession, value) pairs of one bridge table."""
        entity = _identifier(source)
        if (entity, attribute) not in self._columns:
            raise SchemaEvolutionRequired(source, attribute)
        bridge = f"{entity}_{_identifier(attribute)}"
        rows = self._connection.execute(
            f"SELECT accession, value FROM {bridge}"
        ).fetchall()
        return {(row["accession"], row["value"]) for row in rows}
