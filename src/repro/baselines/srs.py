"""SRS-style baseline: per-source replication, parsing and indexing.

The paper's related work (Section 1): "SRS and DBGET/LinkDB do not follow a
global schema approach.  Each source is replicated locally as is, parsed
and indexed, resulting in a set of queryable attributes for the
corresponding source.  While a uniform query interface is provided ...
join queries over multiple sources are not possible.  Cross-references can
be utilized for interactive navigation, but not for the generation and
analysis of annotation profiles."

This baseline reproduces exactly those capabilities and limits:

* every source is loaded from the same parsed EAV data GenMapper uses,
* each source gets an inverted index per attribute (queryable attributes),
* :meth:`SrsSystem.query` answers single-source attribute queries,
* there is deliberately **no** join operation — building a multi-source
  annotation profile requires the client to chase cross-references one
  object at a time, which :meth:`SrsSystem.navigate` exposes (and counts)
  so benchmarks can compare the client-side cost against ``GenerateView``.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.eav.store import EavDataset
from repro.gam.errors import UnknownSourceError


@dataclasses.dataclass
class SrsEntry:
    """One indexed entry of one source."""

    accession: str
    #: attribute -> values (cross-reference accessions or literals).
    attributes: dict[str, list[str]]


class SrsSystem:
    """A set of independently indexed sources with a uniform interface."""

    def __init__(self) -> None:
        #: source -> accession -> entry.
        self._entries: dict[str, dict[str, SrsEntry]] = {}
        #: source -> attribute -> value -> accessions (inverted index).
        self._indexes: dict[str, dict[str, dict[str, set[str]]]] = {}
        #: Operation counters for benchmarking client-side costs.
        self.lookups = 0
        self.queries = 0

    # -- loading -----------------------------------------------------------

    def load(self, dataset: EavDataset) -> int:
        """Replicate one source locally: parse and index its attributes."""
        entries = self._entries.setdefault(dataset.source_name, {})
        index = self._indexes.setdefault(dataset.source_name, defaultdict(dict))
        for row in dataset:
            entry = entries.get(row.entity)
            if entry is None:
                entry = SrsEntry(accession=row.entity, attributes={})
                entries[row.entity] = entry
            entry.attributes.setdefault(row.target, []).append(row.accession)
            index[row.target].setdefault(row.accession, set()).add(row.entity)
        return len(entries)

    def sources(self) -> list[str]:
        """Loaded source names."""
        return sorted(self._entries)

    def attributes(self, source: str) -> list[str]:
        """The queryable attributes of one source."""
        self._require(source)
        return sorted(self._indexes[source])

    def _require(self, source: str) -> None:
        if source not in self._entries:
            raise UnknownSourceError(source)

    # -- the uniform query interface -------------------------------------------

    def lookup(self, source: str, accession: str) -> SrsEntry | None:
        """Fetch one entry of one source (one 'page view')."""
        self._require(source)
        self.lookups += 1
        return self._entries[source].get(accession)

    def query(self, source: str, attribute: str, value: str) -> set[str]:
        """Accessions of one source whose attribute carries the value."""
        self._require(source)
        self.queries += 1
        return set(self._indexes[source].get(attribute, {}).get(value, set()))

    def reset_counters(self) -> None:
        """Zero the benchmarking counters."""
        self.lookups = 0
        self.queries = 0

    # -- what SRS users must do by hand -------------------------------------------

    def navigate(
        self, source: str, accessions: list[str], attribute_path: list[str]
    ) -> dict[str, set[str]]:
        """Chase cross-references object by object along an attribute path.

        Emulates the only way to obtain multi-source annotations in an
        SRS-style system: look up every object, read its cross-reference
        attribute, then look up every referenced object in the next source,
        and so on.  ``attribute_path`` alternates attribute names with the
        source each reference points into, flattened as
        ``[attr1, source2, attr2, source3, ...]``.

        Returns start accession -> final annotation accessions.  Every
        intermediate fetch increments :attr:`lookups`, making the O(objects
        x path length) client cost measurable.
        """
        if len(attribute_path) % 2 != 1:
            raise ValueError(
                "attribute_path must be [attr, source, attr, ..., attr]"
            )
        results: dict[str, set[str]] = {}
        for start in accessions:
            frontier = {start}
            current_source = source
            remaining = list(attribute_path)
            while remaining and frontier:
                attribute = remaining.pop(0)
                next_frontier: set[str] = set()
                for accession in frontier:
                    entry = self.lookup(current_source, accession)
                    if entry is None:
                        continue
                    next_frontier.update(entry.attributes.get(attribute, ()))
                frontier = next_frontier
                if remaining:
                    current_source = remaining.pop(0)
            results[start] = frontier
        return results
