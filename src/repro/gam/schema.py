"""DDL for the GAM relational schema (paper Figure 4).

The schema is deliberately generic: four tables hold every source, object,
mapping and association regardless of where the data came from.  This is the
property that lets GenMapper integrate a new source without any schema
change — only a parser has to be written.

Index choice follows the access paths of the operators:

* ``Map(S, T)`` scans OBJECT_REL by ``src_rel_id`` → index on src_rel_id.
* Duplicate elimination compares accessions per source → unique index on
  ``(source_id, accession)``.
* Mapping lookup between two sources → unique index on
  ``(source1_id, source2_id, type)``.
* ``Compose`` and the Subsumed closure join associations on shared
  object ids in both directions → the unique index serves
  ``(src_rel_id, object1_id)`` probes and ``idx_object_rel_obj2``
  serves ``(src_rel_id, object2_id)``.  The latter *covers*
  ``object1_id`` on purpose: the recursive-CTE closure reads it per
  matched edge, and SQLite's cost model only picks the two-column probe
  when it needs no table lookup.
"""

from __future__ import annotations

import sqlite3

from repro.gam.errors import GamSchemaError

#: Schema version recorded in the database; bumped on incompatible change.
SCHEMA_VERSION = 1

GAM_TABLES = ("source", "object", "source_rel", "object_rel")

#: Tables partitioned by source under the sharded layout
#: (``repro.gam.shards``).  ``source`` and ``meta`` always stay in the
#: coordinator database: they are tiny, touched by every shard, and the
#: shard catalog itself lives beside them.
SHARD_TABLES = ("object", "source_rel", "object_rel")

#: Id stride separating each shard slot's AUTOINCREMENT range.  Slot ``k``
#: allocates ids starting at ``(k + 1) * ID_STRIDE``, so ids stay globally
#: unique across shards *and* disjoint from any pre-migration monolithic
#: id (which is always far below one stride).  Eight slots of 2^40 ids
#: each sit comfortably inside SQLite's 63-bit rowid space.
ID_STRIDE = 1 << 40

_DDL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS source (
    source_id   INTEGER PRIMARY KEY,
    name        TEXT NOT NULL,
    content     TEXT NOT NULL CHECK (content IN ('Gene', 'Protein', 'Other')),
    structure   TEXT NOT NULL CHECK (structure IN ('Flat', 'Network')),
    release     TEXT,
    imported_at TEXT
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_source_name
    ON source (name);

CREATE TABLE IF NOT EXISTS object (
    object_id INTEGER PRIMARY KEY,
    source_id INTEGER NOT NULL REFERENCES source (source_id),
    accession TEXT NOT NULL,
    text      TEXT,
    number    REAL
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_object_source_accession
    ON object (source_id, accession);

CREATE TABLE IF NOT EXISTS source_rel (
    src_rel_id INTEGER PRIMARY KEY,
    source1_id INTEGER NOT NULL REFERENCES source (source_id),
    source2_id INTEGER NOT NULL REFERENCES source (source_id),
    type       TEXT NOT NULL CHECK (type IN
        ('Fact', 'Similarity', 'Contains', 'Is-a', 'Composed', 'Subsumed'))
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_source_rel_endpoints
    ON source_rel (source1_id, source2_id, type);
CREATE INDEX IF NOT EXISTS idx_source_rel_source2
    ON source_rel (source2_id);

CREATE TABLE IF NOT EXISTS object_rel (
    obj_rel_id INTEGER PRIMARY KEY,
    src_rel_id INTEGER NOT NULL REFERENCES source_rel (src_rel_id),
    object1_id INTEGER NOT NULL REFERENCES object (object_id),
    object2_id INTEGER NOT NULL REFERENCES object (object_id),
    evidence   REAL NOT NULL DEFAULT 1.0
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_object_rel_unique
    ON object_rel (src_rel_id, object1_id, object2_id);
CREATE INDEX IF NOT EXISTS idx_object_rel_obj2
    ON object_rel (src_rel_id, object2_id, object1_id);
"""


#: DDL for one shard file (sharded layout).  Differences from the
#: coordinator schema are deliberate:
#:
#: * ``INTEGER PRIMARY KEY AUTOINCREMENT`` + a seeded ``sqlite_sequence``
#:   row give each slot its own disjoint id range (see :data:`ID_STRIDE`),
#:   so ids drawn concurrently by parallel shard writers never collide;
#: * no ``REFERENCES`` clauses: SQLite cannot enforce a foreign key into
#:   a different attached database (``object.source_id`` points at the
#:   coordinator's ``source`` table), so referential integrity moves to
#:   the application level (``repro.gam.integrity``).
_SHARD_DDL = """
CREATE TABLE IF NOT EXISTS object (
    object_id INTEGER PRIMARY KEY AUTOINCREMENT,
    source_id INTEGER NOT NULL,
    accession TEXT NOT NULL,
    text      TEXT,
    number    REAL
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_object_source_accession
    ON object (source_id, accession);

CREATE TABLE IF NOT EXISTS source_rel (
    src_rel_id INTEGER PRIMARY KEY AUTOINCREMENT,
    source1_id INTEGER NOT NULL,
    source2_id INTEGER NOT NULL,
    type       TEXT NOT NULL CHECK (type IN
        ('Fact', 'Similarity', 'Contains', 'Is-a', 'Composed', 'Subsumed'))
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_source_rel_endpoints
    ON source_rel (source1_id, source2_id, type);
CREATE INDEX IF NOT EXISTS idx_source_rel_source2
    ON source_rel (source2_id);

CREATE TABLE IF NOT EXISTS object_rel (
    obj_rel_id INTEGER PRIMARY KEY AUTOINCREMENT,
    src_rel_id INTEGER NOT NULL,
    object1_id INTEGER NOT NULL,
    object2_id INTEGER NOT NULL,
    evidence   REAL NOT NULL DEFAULT 1.0
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_object_rel_unique
    ON object_rel (src_rel_id, object1_id, object2_id);
CREATE INDEX IF NOT EXISTS idx_object_rel_obj2
    ON object_rel (src_rel_id, object2_id, object1_id);
"""

#: Catalog tables recorded in the coordinator database (sharded layout).
_CATALOG_DDL = """
CREATE TABLE IF NOT EXISTS shard_catalog (
    slot  INTEGER PRIMARY KEY,
    file  TEXT NOT NULL,
    image INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS shard_source (
    name TEXT PRIMARY KEY,
    slot INTEGER NOT NULL
);
"""

#: Values of the ``layout`` meta key.
LAYOUT_MONOLITHIC = "monolithic"
LAYOUT_SHARDED = "sharded"


def create_shard_schema(connection: sqlite3.Connection, slot: int) -> None:
    """Create the partitioned tables in one shard file.

    Seeds ``sqlite_sequence`` so slot ``k`` allocates ids from
    ``(k + 1) * ID_STRIDE`` upward; explicit-id inserts below the seed
    (rows copied by ``migrate-shards``) never move the sequence backward,
    so migrated and freshly-allocated ids stay disjoint.
    """
    connection.executescript(_SHARD_DDL)
    base = (int(slot) + 1) * ID_STRIDE
    for table in SHARD_TABLES:
        row = connection.execute(
            "SELECT seq FROM sqlite_sequence WHERE name = ?", (table,)
        ).fetchone()
        if row is None:
            connection.execute(
                "INSERT INTO sqlite_sequence (name, seq) VALUES (?, ?)",
                (table, base),
            )
        elif int(row[0]) < base:
            connection.execute(
                "UPDATE sqlite_sequence SET seq = ? WHERE name = ?",
                (base, table),
            )
    connection.commit()


def create_catalog_schema(connection: sqlite3.Connection) -> None:
    """Create the shard-catalog tables in the coordinator database."""
    connection.executescript(_CATALOG_DDL)
    connection.commit()


def read_layout(connection: sqlite3.Connection) -> str:
    """The storage layout recorded in ``meta`` (monolithic when absent)."""
    row = connection.execute(
        "SELECT value FROM meta WHERE key = 'layout'"
    ).fetchone()
    return str(row[0]) if row is not None else LAYOUT_MONOLITHIC


def write_layout(connection: sqlite3.Connection, layout: str) -> None:
    """Record the storage layout in ``meta`` (no implicit commit)."""
    connection.execute(
        "INSERT INTO meta (key, value) VALUES ('layout', ?)"
        " ON CONFLICT (key) DO UPDATE SET value = excluded.value",
        (layout,),
    )


def _upgrade_indices(connection: sqlite3.Connection) -> None:
    """Rebuild indices whose definition changed since the database was
    created (``CREATE INDEX IF NOT EXISTS`` keeps the old shape).

    ``idx_object_rel_obj2`` must *cover* ``object1_id``: without it the
    planner refuses the index for the recursive-CTE closure join (the
    non-covering two-column probe loses to a covering one-column scan in
    its cost model) and every recursion step scans all edges of the
    relationship — quadratic on paper-scale taxonomies.
    """
    row = connection.execute(
        "SELECT sql FROM sqlite_master"
        " WHERE type = 'index' AND name = 'idx_object_rel_obj2'"
    ).fetchone()
    if row is not None and "object1_id" not in (row[0] or ""):
        connection.execute("DROP INDEX idx_object_rel_obj2")


def create_schema(connection: sqlite3.Connection) -> None:
    """Create the GAM tables and indices if they do not exist yet."""
    _upgrade_indices(connection)
    connection.executescript(_DDL)
    connection.execute(
        "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema_version', ?)",
        (str(SCHEMA_VERSION),),
    )
    connection.commit()


def schema_exists(connection: sqlite3.Connection) -> bool:
    """Return True when all four GAM tables are present."""
    rows = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table'"
    ).fetchall()
    existing = {row[0] for row in rows}
    return all(table in existing for table in GAM_TABLES)


def validate_schema(connection: sqlite3.Connection) -> None:
    """Raise :class:`GamSchemaError` unless the database holds a GAM schema
    of a compatible version."""
    if not schema_exists(connection):
        raise GamSchemaError("database does not contain the GAM tables")
    row = connection.execute(
        "SELECT value FROM meta WHERE key = 'schema_version'"
    ).fetchone()
    if row is None:
        raise GamSchemaError("GAM schema is missing its version record")
    version = int(row[0])
    if version != SCHEMA_VERSION:
        raise GamSchemaError(
            f"GAM schema version {version} is not supported "
            f"(expected {SCHEMA_VERSION})"
        )
