"""Repository: typed CRUD over the four GAM tables.

This is the only layer that writes SQL against the GAM schema.  Everything
above it (importer, operators, analysis) talks in terms of
:class:`~repro.gam.records.Source`, :class:`~repro.gam.records.GamObject`,
mappings and associations.

Duplicate elimination (paper Section 4.1) lives here:

* at the *source* level, ``add_source`` compares name and release audit
  information and returns the existing row instead of inserting again;
* at the *object* level, ``add_objects`` compares accessions per source and
  only inserts unseen ones;
* at the *association* level, a unique index makes re-imported associations
  idempotent.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
from collections.abc import Iterable, Iterator, Sequence

from repro.cache.deps import record_dependency
from repro.gam.database import GamDatabase
from repro.gam.enums import MAPPING_TYPES, RelType, SourceContent, SourceStructure
from repro.gam.errors import (
    GamIntegrityError,
    UnknownMappingError,
    UnknownObjectError,
    UnknownSourceError,
)
from repro.gam.records import Association, GamObject, ObjectRel, Source, SourceRel

#: Rows accepted by ``add_objects``: (accession,), (accession, text) or
#: (accession, text, number).
ObjectRow = Sequence[object]

#: Rows accepted by ``add_associations``: (accession1, accession2) or
#: (accession1, accession2, evidence).
AssociationRow = Sequence[object]

#: Accessions per ``WHERE accession IN (...)`` chunk when fetching ids of
#: freshly inserted objects back into the bulk cache (well under SQLite's
#: bound-parameter limit).
_ID_FETCH_CHUNK = 500


class GamRepository:
    """Typed access to one GAM database."""

    def __init__(self, db: GamDatabase) -> None:
        self.db = db
        self._bulk = threading.local()

    # -- bulk-import scope -------------------------------------------------

    @contextlib.contextmanager
    def bulk_import(self) -> Iterator[None]:
        """Scope in which accession→id maps are cached per source.

        Inside the scope, :meth:`add_objects` and :meth:`add_associations`
        share one accession→id map per source, loaded once and updated
        incrementally as objects are inserted — instead of re-reading the
        whole object table per annotation target, which dominated import
        time on wide sources.  The cache is thread-local, so concurrent
        imports on pool siblings never observe each other's partial state;
        reentrant scopes share the outermost cache.
        """
        depth = getattr(self._bulk, "depth", 0)
        if depth == 0:
            self._bulk.ids = {}
        self._bulk.depth = depth + 1
        try:
            yield
        finally:
            self._bulk.depth = depth
            if depth == 0:
                del self._bulk.ids

    def _bulk_ids(self) -> "dict[int, dict[str, int]] | None":
        """This thread's bulk cache, or None outside a bulk scope."""
        if getattr(self._bulk, "depth", 0) > 0:
            return self._bulk.ids
        return None

    def _accession_ids(self, source_id: int) -> dict[str, int]:
        """Accession→object_id map for a source, cached in bulk scope.

        Callers must treat the result as read-only: inside a bulk scope it
        is the live cache that :meth:`add_objects` appends to.
        """
        cache = self._bulk_ids()
        if cache is None:
            return self._load_accession_ids(source_id)
        ids = cache.get(source_id)
        if ids is None:
            ids = cache[source_id] = self._load_accession_ids(source_id)
        return ids

    def _load_accession_ids(self, source_id: int) -> dict[str, int]:
        rows = self.db.execute_read(
            "SELECT accession, object_id FROM object WHERE source_id = ?",
            (source_id,),
        ).fetchall()
        return {row[0]: row[1] for row in rows}

    # -- sources ---------------------------------------------------------

    def add_source(
        self,
        name: str,
        content: SourceContent | str = SourceContent.OTHER,
        structure: SourceStructure | str = SourceStructure.FLAT,
        release: str | None = None,
        imported_at: str | None = None,
    ) -> Source:
        """Register a source, or return the existing one.

        Duplicate elimination at the source level compares the source name
        and the release audit information (paper Section 4.1).  The name is
        the source's identity: re-importing a source with a newer release
        reuses the same source row — only its audit columns move forward —
        so object-level duplicate elimination can relate the new snapshot's
        objects with the existing ones.  A source auto-registered as an
        annotation target (no release) is upgraded in place when the source
        itself is imported later.  Importing the same (name, release) pair
        twice is a no-op.
        """
        content = SourceContent.parse(content)
        structure = SourceStructure.parse(structure)
        existing = self.find_source(name)
        if existing is not None:
            return self._refresh_source(existing, structure, release, imported_at)
        with self.db.write_scope(name):
            cursor = self.db.execute(
                "INSERT INTO source (name, content, structure, release, imported_at)"
                " VALUES (?, ?, ?, ?, ?)",
                (name, content.value, structure.value, release, imported_at),
            )
        return Source(
            source_id=int(cursor.lastrowid),
            name=name,
            content=content,
            structure=structure,
            release=release,
            imported_at=imported_at,
        )

    def _refresh_source(
        self,
        existing: Source,
        structure: SourceStructure,
        release: str | None,
        imported_at: str | None,
    ) -> Source:
        """Move an existing source's audit/structure columns forward."""
        updates: dict[str, object] = {}
        if release is not None and release != existing.release:
            updates["release"] = release
        if (
            imported_at is not None
            and imported_at != existing.imported_at
            and (release is None or release != existing.release)
        ):
            updates["imported_at"] = imported_at
        # A target-registered Flat source becomes Network when its own
        # import reveals structure; never downgrade Network to Flat.
        if (
            structure == SourceStructure.NETWORK
            and existing.structure == SourceStructure.FLAT
        ):
            updates["structure"] = structure.value
        if not updates:
            return existing
        assignments = ", ".join(f"{column} = ?" for column in updates)
        with self.db.write_scope(existing.name):
            self.db.execute(
                f"UPDATE source SET {assignments} WHERE source_id = ?",
                (*updates.values(), existing.source_id),
            )
        replacements = {
            key: (SourceStructure.parse(value) if key == "structure" else value)
            for key, value in updates.items()
        }
        return dataclasses.replace(existing, **replacements)

    def find_source(self, name: str, release: str | None = None) -> Source | None:
        """Return the source with this name (and release), or None."""
        if release is None:
            row = self.db.execute(
                "SELECT * FROM source WHERE name = ? ORDER BY source_id DESC LIMIT 1",
                (name,),
            ).fetchone()
        else:
            row = self.db.execute(
                "SELECT * FROM source WHERE name = ? AND release = ?",
                (name, release),
            ).fetchone()
        return self._source_from_row(row) if row is not None else None

    def get_source(self, ref: "int | str | Source") -> Source:
        """Resolve a source by id, name or identity; raise if unknown."""
        if isinstance(ref, Source):
            return ref
        if isinstance(ref, int):
            row = self.db.execute(
                "SELECT * FROM source WHERE source_id = ?", (ref,)
            ).fetchone()
        else:
            row = self.db.execute(
                "SELECT * FROM source WHERE name = ? ORDER BY source_id DESC LIMIT 1",
                (ref,),
            ).fetchone()
        if row is None:
            raise UnknownSourceError(ref)
        return self._source_from_row(row)

    def list_sources(self) -> list[Source]:
        """All registered sources, ordered by id."""
        rows = self.db.execute("SELECT * FROM source ORDER BY source_id").fetchall()
        return [self._source_from_row(row) for row in rows]

    def placement_report(self) -> dict[str, object]:
        """Storage layout plus each source's shard placement.

        On the monolithic engine ``placement`` is None; on the sharded
        engine it maps every registered source name to its shard slot
        (used by ``repro shard status`` and the web ``explain`` payload).
        """
        info = self.db.storage_info()
        names = [source.name for source in self.list_sources()]
        return {**info, "placement": self.db.shard_placement(names)}

    @staticmethod
    def _source_from_row(row: object) -> Source:
        return Source(
            source_id=row["source_id"],
            name=row["name"],
            content=SourceContent.parse(row["content"]),
            structure=SourceStructure.parse(row["structure"]),
            release=row["release"],
            imported_at=row["imported_at"],
        )

    # -- objects ---------------------------------------------------------

    def add_objects(
        self, source: "int | str | Source", rows: Iterable[ObjectRow]
    ) -> int:
        """Insert objects for a source, skipping existing accessions.

        Each row is ``(accession,)``, ``(accession, text)`` or
        ``(accession, text, number)``.  Returns the number of objects that
        were actually inserted (duplicates are eliminated by accession).
        """
        src = self.get_source(source)
        cache = self._bulk_ids()
        known = self._accession_ids(src.source_id)
        # Split offered rows into genuinely new accessions (insert pass,
        # counted from the write cursor) and enrichment of existing ones
        # (coalesce-update pass).  Together the two passes reproduce the
        # seed's upsert exactly — new non-null text/number overwrites, null
        # keeps the stored value, later in-batch rows win — while the
        # insert count comes from ``rowcount`` instead of before/after
        # ``COUNT(*)`` scans a pool-sibling writer could skew.
        inserts: list[tuple] = []
        updates: list[tuple] = []
        fresh: set[str] = set()
        for row in rows:
            accession = str(row[0])
            text = row[1] if len(row) > 1 else None
            number = row[2] if len(row) > 2 else None
            if accession in known or accession in fresh:
                if text is not None or number is not None:
                    updates.append((text, number, src.source_id, accession))
            else:
                fresh.add(accession)
                inserts.append((src.source_id, accession, text, number))
        with self.db.write_scope(src.name), self.db.transaction():
            inserted = self.db.executemany_counted(
                "INSERT OR IGNORE INTO object (source_id, accession, text, number)"
                " VALUES (?, ?, ?, ?)",
                inserts,
            )
            if updates:
                self.db.executemany(
                    "UPDATE object SET text = coalesce(?, text),"
                    " number = coalesce(?, number)"
                    " WHERE source_id = ? AND accession = ?",
                    updates,
                )
            if cache is not None and fresh:
                self._fetch_new_ids(known, src.source_id, fresh)
        return inserted

    def _fetch_new_ids(
        self, ids: dict[str, int], source_id: int, accessions: Iterable[str]
    ) -> None:
        """Pull ids of freshly inserted accessions into the bulk cache."""
        pending = list(accessions)
        for start in range(0, len(pending), _ID_FETCH_CHUNK):
            chunk = pending[start : start + _ID_FETCH_CHUNK]
            placeholders = ", ".join("?" for _ in chunk)
            rows = self.db.execute_read(
                "SELECT accession, object_id FROM object"
                f" WHERE source_id = ? AND accession IN ({placeholders})",
                (source_id, *chunk),
            ).fetchall()
            for row in rows:
                ids[row[0]] = row[1]

    def _object_count(self, source_id: int) -> int:
        row = self.db.execute(
            "SELECT count(*) FROM object WHERE source_id = ?", (source_id,)
        ).fetchone()
        return int(row[0])

    def count_objects(self, source: "int | str | Source | None" = None) -> int:
        """Number of objects, optionally restricted to one source."""
        if source is None:
            row = self.db.execute("SELECT count(*) FROM object").fetchone()
            return int(row[0])
        return self._object_count(self.get_source(source).source_id)

    def get_object(self, source: "int | str | Source", accession: str) -> GamObject:
        """Resolve one object by source and accession; raise if unknown."""
        src = self.get_source(source)
        row = self.db.execute(
            "SELECT * FROM object WHERE source_id = ? AND accession = ?",
            (src.source_id, accession),
        ).fetchone()
        if row is None:
            raise UnknownObjectError((src.name, accession))
        return self._object_from_row(row)

    def find_object(
        self, source: "int | str | Source", accession: str
    ) -> GamObject | None:
        """Like :meth:`get_object` but returns None instead of raising."""
        try:
            return self.get_object(source, accession)
        except (UnknownObjectError, UnknownSourceError):
            return None

    def objects_of(
        self, source: "int | str | Source", limit: int | None = None
    ) -> list[GamObject]:
        """All objects of a source, ordered by accession."""
        src = self.get_source(source)
        sql = "SELECT * FROM object WHERE source_id = ? ORDER BY accession"
        params: tuple = (src.source_id,)
        if limit is not None:
            sql += " LIMIT ?"
            params = (src.source_id, limit)
        rows = self.db.execute(sql, params).fetchall()
        return [self._object_from_row(row) for row in rows]

    def objects_page(
        self,
        source: "int | str | Source",
        limit: int,
        after: str | None = None,
        offset: int = 0,
    ) -> list[GamObject]:
        """One accession-ordered page of a source's objects.

        The HTTP edge's pagination query, pushed down to the unique
        ``(source_id, accession)`` index instead of slicing a fully
        loaded object list: ``after`` seeks past an accession (keyset
        pagination — O(page) regardless of position), while ``offset``
        is the legacy skip-scan (O(offset + page), kept for clients that
        jump to arbitrary pages).  ``after`` wins when both are given.
        """
        src = self.get_source(source)
        if after is not None:
            rows = self.db.execute_read(
                "SELECT * FROM object WHERE source_id = ? AND accession > ?"
                " ORDER BY accession LIMIT ?",
                (src.source_id, after, limit),
            ).fetchall()
        else:
            rows = self.db.execute_read(
                "SELECT * FROM object WHERE source_id = ?"
                " ORDER BY accession LIMIT ? OFFSET ?",
                (src.source_id, limit, offset),
            ).fetchall()
        return [self._object_from_row(row) for row in rows]

    def iter_objects_of(
        self, source: "int | str | Source", after: str | None = None
    ) -> Iterator[GamObject]:
        """Stream a source's objects in accession order, bounded memory.

        Backs the edge's unbounded listings (``limit=0``): rows come off
        the index via :meth:`GamDatabase.execute_read_iter` in batches,
        never materializing the whole source.
        """
        src = self.get_source(source)
        if after is not None:
            rows = self.db.execute_read_iter(
                "SELECT * FROM object WHERE source_id = ? AND accession > ?"
                " ORDER BY accession",
                (src.source_id, after),
            )
        else:
            rows = self.db.execute_read_iter(
                "SELECT * FROM object WHERE source_id = ? ORDER BY accession",
                (src.source_id,),
            )
        for row in rows:
            yield self._object_from_row(row)

    def accessions_of(self, source: "int | str | Source") -> set[str]:
        """The accession set of a source."""
        src = self.get_source(source)
        if self._bulk_ids() is not None:
            return set(self._accession_ids(src.source_id))
        rows = self.db.execute(
            "SELECT accession FROM object WHERE source_id = ?", (src.source_id,)
        ).fetchall()
        return {row[0] for row in rows}

    def accession_to_id(self, source: "int | str | Source") -> dict[str, int]:
        """Mapping accession -> object_id for one source (bulk lookups)."""
        src = self.get_source(source)
        rows = self.db.execute(
            "SELECT accession, object_id FROM object WHERE source_id = ?",
            (src.source_id,),
        ).fetchall()
        return {row[0]: row[1] for row in rows}

    @staticmethod
    def _object_from_row(row: object) -> GamObject:
        return GamObject(
            object_id=row["object_id"],
            source_id=row["source_id"],
            accession=row["accession"],
            text=row["text"],
            number=row["number"],
        )

    # -- source relationships (mappings) ---------------------------------

    def ensure_source_rel(
        self,
        source1: "int | str | Source",
        source2: "int | str | Source",
        rel_type: RelType | str,
    ) -> SourceRel:
        """Get or create the source relationship of this type."""
        rel_type = RelType.parse(rel_type)
        src1 = self.get_source(source1)
        src2 = self.get_source(source2)
        row = self.db.execute(
            "SELECT * FROM source_rel"
            " WHERE source1_id = ? AND source2_id = ? AND type = ?",
            (src1.source_id, src2.source_id, rel_type.value),
        ).fetchone()
        if row is not None:
            return self._source_rel_from_row(row)
        with self.db.write_scope(src1.name, src2.name):
            cursor = self.db.execute(
                "INSERT INTO source_rel (source1_id, source2_id, type)"
                " VALUES (?, ?, ?)",
                (src1.source_id, src2.source_id, rel_type.value),
            )
        return SourceRel(
            src_rel_id=int(cursor.lastrowid),
            source1_id=src1.source_id,
            source2_id=src2.source_id,
            type=rel_type,
        )

    def find_source_rels(
        self,
        source1: "int | str | Source | None" = None,
        source2: "int | str | Source | None" = None,
        rel_type: RelType | str | None = None,
    ) -> list[SourceRel]:
        """Source relationships filtered by endpoints and/or type."""
        clauses = []
        params: list[object] = []
        if source1 is not None:
            clauses.append("source1_id = ?")
            params.append(self.get_source(source1).source_id)
        if source2 is not None:
            clauses.append("source2_id = ?")
            params.append(self.get_source(source2).source_id)
        if rel_type is not None:
            clauses.append("type = ?")
            params.append(RelType.parse(rel_type).value)
        sql = "SELECT * FROM source_rel"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY src_rel_id"
        rows = self.db.execute(sql, tuple(params)).fetchall()
        return [self._source_rel_from_row(row) for row in rows]

    def mappings_between(
        self,
        source1: "int | str | Source",
        source2: "int | str | Source",
        directed: bool = False,
    ) -> list[SourceRel]:
        """Mapping-type relationships between two sources.

        With ``directed=False`` (default) relationships stored in either
        direction are returned, since associations are navigable both ways.
        """
        src1 = self.get_source(source1)
        src2 = self.get_source(source2)
        types = tuple(sorted(t.value for t in MAPPING_TYPES))
        placeholders = ", ".join("?" for _ in types)
        sql = (
            f"SELECT * FROM source_rel WHERE type IN ({placeholders})"
            " AND ((source1_id = ? AND source2_id = ?)"
        )
        params: list[object] = [*types, src1.source_id, src2.source_id]
        if directed:
            sql += ")"
        else:
            sql += " OR (source1_id = ? AND source2_id = ?))"
            params.extend([src2.source_id, src1.source_id])
        sql += " ORDER BY src_rel_id"
        rows = self.db.execute(sql, tuple(params)).fetchall()
        return [self._source_rel_from_row(row) for row in rows]

    def all_mappings(self) -> list[SourceRel]:
        """Every mapping-type source relationship in the database."""
        types = tuple(sorted(t.value for t in MAPPING_TYPES))
        placeholders = ", ".join("?" for _ in types)
        rows = self.db.execute(
            f"SELECT * FROM source_rel WHERE type IN ({placeholders})"
            " ORDER BY src_rel_id",
            types,
        ).fetchall()
        return [self._source_rel_from_row(row) for row in rows]

    @staticmethod
    def _source_rel_from_row(row: object) -> SourceRel:
        return SourceRel(
            src_rel_id=row["src_rel_id"],
            source1_id=row["source1_id"],
            source2_id=row["source2_id"],
            type=RelType.parse(row["type"]),
        )

    # -- object associations ---------------------------------------------

    def add_associations(
        self,
        rel: SourceRel,
        rows: Iterable[AssociationRow],
        strict: bool = True,
    ) -> int:
        """Insert object associations for a source relationship.

        Rows reference objects by accession: ``(acc1, acc2)`` or
        ``(acc1, acc2, evidence)``.  Accessions are resolved against the
        relationship's two endpoint sources.  With ``strict=True`` an
        unknown accession raises :class:`GamIntegrityError`; otherwise the
        row is skipped.  Returns the number of associations inserted
        (existing pairs are left untouched; the count comes from the write
        cursor, so concurrent writers cannot skew it).

        ``rows`` may be a generator: resolution streams into chunked
        ``executemany`` batches without materializing the resolved list.
        """
        ids1 = self._accession_ids(rel.source1_id)
        ids2 = (
            ids1
            if rel.source2_id == rel.source1_id
            else self._accession_ids(rel.source2_id)
        )

        def _resolved() -> Iterator[tuple]:
            for row in rows:
                acc1, acc2 = str(row[0]), str(row[1])
                evidence = float(row[2]) if len(row) > 2 else 1.0
                id1 = ids1.get(acc1)
                id2 = ids2.get(acc2)
                if id1 is None or id2 is None:
                    if strict:
                        missing = acc1 if id1 is None else acc2
                        raise GamIntegrityError(
                            f"association references unknown accession {missing!r}"
                            f" (source_rel {rel.src_rel_id})"
                        )
                    continue
                yield (rel.src_rel_id, id1, id2, evidence)

        # The transaction (a savepoint when nested) keeps the seed's
        # all-or-nothing contract: a strict resolution error mid-stream
        # rolls back any chunks already written.  The write is scoped to
        # the relationship's endpoint sources so only cache entries
        # depending on them are invalidated.
        name1 = self.get_source(rel.source1_id).name
        name2 = (
            name1
            if rel.source2_id == rel.source1_id
            else self.get_source(rel.source2_id).name
        )
        with self.db.write_scope(name1, name2), self.db.transaction():
            return self.db.executemany_counted(
                "INSERT OR IGNORE INTO object_rel"
                " (src_rel_id, object1_id, object2_id, evidence)"
                " VALUES (?, ?, ?, ?)",
                _resolved(),
            )

    def count_associations(self, rel: SourceRel | None = None) -> int:
        """Number of object associations, optionally for one relationship."""
        if rel is None:
            row = self.db.execute("SELECT count(*) FROM object_rel").fetchone()
        else:
            row = self.db.execute(
                "SELECT count(*) FROM object_rel WHERE src_rel_id = ?",
                (rel.src_rel_id,),
            ).fetchone()
        return int(row[0])

    def associations_of(self, rel: SourceRel) -> list[Association]:
        """All associations of a relationship, materialized with accessions."""
        rows = self.db.execute(
            "SELECT o1.accession AS acc1, o2.accession AS acc2, r.evidence"
            " FROM object_rel r"
            " JOIN object o1 ON o1.object_id = r.object1_id"
            " JOIN object o2 ON o2.object_id = r.object2_id"
            " WHERE r.src_rel_id = ?"
            " ORDER BY acc1, acc2",
            (rel.src_rel_id,),
        ).fetchall()
        return [Association(row["acc1"], row["acc2"], row["evidence"]) for row in rows]

    def object_rels_of(self, rel: SourceRel) -> list[ObjectRel]:
        """Raw object-relationship rows of one source relationship."""
        rows = self.db.execute(
            "SELECT * FROM object_rel WHERE src_rel_id = ? ORDER BY obj_rel_id",
            (rel.src_rel_id,),
        ).fetchall()
        return [
            ObjectRel(
                obj_rel_id=row["obj_rel_id"],
                src_rel_id=row["src_rel_id"],
                object1_id=row["object1_id"],
                object2_id=row["object2_id"],
                evidence=row["evidence"],
            )
            for row in rows
        ]

    def annotations_of_object(
        self, source: "int | str | Source", accession: str
    ) -> list[tuple[str, RelType, Association]]:
        """Every association touching one object, with the partner source.

        Returns ``(partner_source_name, rel_type, association)`` triples
        where the association is oriented from the queried object to its
        partner.  This backs the Figure 1 / Figure 6c "object information"
        display.
        """
        obj = self.get_object(source, accession)
        results: list[tuple[str, RelType, Association]] = []
        rows = self.db.execute(
            "SELECT s.name AS partner, sr.type AS rel_type,"
            "       o2.accession AS other, r.evidence AS evidence"
            " FROM object_rel r"
            " JOIN source_rel sr ON sr.src_rel_id = r.src_rel_id"
            " JOIN object o2 ON o2.object_id = r.object2_id"
            " JOIN source s ON s.source_id = sr.source2_id"
            " WHERE r.object1_id = ?",
            (obj.object_id,),
        ).fetchall()
        for row in rows:
            results.append(
                (
                    row["partner"],
                    RelType.parse(row["rel_type"]),
                    Association(accession, row["other"], row["evidence"]),
                )
            )
        rows = self.db.execute(
            "SELECT s.name AS partner, sr.type AS rel_type,"
            "       o1.accession AS other, r.evidence AS evidence"
            " FROM object_rel r"
            " JOIN source_rel sr ON sr.src_rel_id = r.src_rel_id"
            " JOIN object o1 ON o1.object_id = r.object1_id"
            " JOIN source s ON s.source_id = sr.source1_id"
            " WHERE r.object2_id = ?",
            (obj.object_id,),
        ).fetchall()
        for row in rows:
            results.append(
                (
                    row["partner"],
                    RelType.parse(row["rel_type"]),
                    Association(accession, row["other"], row["evidence"]),
                )
            )
        results.sort(key=lambda item: (item[0], item[2].target_accession))
        return results

    # -- mapping retrieval for operators ----------------------------------

    def fetch_mapping_associations(
        self, source: "int | str | Source", target: "int | str | Source"
    ) -> tuple[SourceRel, list[Association]]:
        """Find a stored mapping between two sources and load it.

        Associations are oriented source→target even when the relationship
        row is stored in the opposite direction.  Raises
        :class:`UnknownMappingError` when no mapping exists.
        """
        src = self.get_source(source)
        tgt = self.get_source(target)
        # Scoped cache invalidation: any cached value built from this
        # mapping depends on both endpoint sources.
        record_dependency(src.name, tgt.name)
        rels = self.mappings_between(src, tgt)
        if not rels:
            raise UnknownMappingError(src.name, tgt.name)
        # Prefer imported annotation mappings over derived ones.
        rels.sort(key=lambda r: (r.type.is_derived, r.src_rel_id))
        rel = rels[0]
        associations = self.associations_of(rel)
        if rel.source1_id != src.source_id:
            associations = [assoc.reversed() for assoc in associations]
        return rel, associations
