"""Maintenance operations on a GAM database.

The paper's deployment is long-lived: sources are re-imported, derived
mappings are rebuilt, obsolete sources retired.  These operations keep the
central database healthy through that lifecycle:

* :func:`delete_source` — cascade-remove a source, its objects, every
  relationship touching it and all their associations;
* :func:`drop_derived` — remove materialized Composed/Subsumed mappings
  (so they can be re-derived after new imports);
* :func:`prune_orphan_objects` — delete objects no association or
  structural relationship references (e.g. left behind by target removal);
* :func:`vacuum` — reclaim file space after large deletes.

All mutating operations run in one transaction and return counts of the
rows they removed.
"""

from __future__ import annotations

import dataclasses

from repro.gam.database import GamDatabase
from repro.gam.enums import RelType
from repro.gam.records import Source
from repro.gam.repository import GamRepository


@dataclasses.dataclass(frozen=True, slots=True)
class DeletionReport:
    """What a cascade deletion removed."""

    source: str
    objects: int
    source_rels: int
    associations: int

    def summary(self) -> str:
        return (
            f"deleted {self.source}: {self.objects} objects,"
            f" {self.source_rels} relationships,"
            f" {self.associations} associations"
        )


def delete_source(
    repository: GamRepository, source: "str | Source"
) -> DeletionReport:
    """Cascade-remove one source from the database.

    Relationships in either direction and their associations go first,
    then the source's objects, then the source row itself.
    """
    src = repository.get_source(source)
    db = repository.db
    # Scoped to the deleted source: cache entries that read any mapping
    # touching it recorded it as a dependency and invalidate; entries for
    # unrelated source pairs stay warm.  all_shards: relationships that
    # merely *point at* this source live in other sources' shards, so the
    # sweep cannot be attributed to this source's shard alone.
    with db.write_scope(src.name), db.transaction(all_shards=True):
        rel_rows = db.execute(
            "SELECT src_rel_id FROM source_rel"
            " WHERE source1_id = ? OR source2_id = ?",
            (src.source_id, src.source_id),
        ).fetchall()
        rel_ids = [row[0] for row in rel_rows]
        associations = 0
        for rel_id in rel_ids:
            cursor = db.execute(
                "DELETE FROM object_rel WHERE src_rel_id = ?", (rel_id,)
            )
            associations += cursor.rowcount
        db.execute(
            "DELETE FROM source_rel WHERE source1_id = ? OR source2_id = ?",
            (src.source_id, src.source_id),
        )
        cursor = db.execute(
            "DELETE FROM object WHERE source_id = ?", (src.source_id,)
        )
        objects = cursor.rowcount
        db.execute("DELETE FROM source WHERE source_id = ?", (src.source_id,))
    return DeletionReport(
        source=src.name,
        objects=objects,
        source_rels=len(rel_ids),
        associations=associations,
    )


def drop_derived(repository: GamRepository) -> int:
    """Remove every materialized Composed and Subsumed relationship.

    Returns the number of relationships dropped.  Imported (Fact,
    Similarity) and structural (Contains, Is-a) relationships are never
    touched — derived knowledge can always be recomputed from them.
    """
    db = repository.db
    derived_types = (RelType.COMPOSED.value, RelType.SUBSUMED.value)
    with db.transaction():
        rel_rows = db.execute(
            "SELECT src_rel_id FROM source_rel WHERE type IN (?, ?)",
            derived_types,
        ).fetchall()
        for row in rel_rows:
            db.execute(
                "DELETE FROM object_rel WHERE src_rel_id = ?", (row[0],)
            )
        db.execute(
            "DELETE FROM source_rel WHERE type IN (?, ?)", derived_types
        )
    return len(rel_rows)


def prune_orphan_objects(
    repository: GamRepository, source: "str | Source | None" = None
) -> int:
    """Delete objects referenced by no association.

    Useful after :func:`delete_source`: objects of *other* sources that
    existed only as annotation values of the deleted source become
    unreachable knowledge.

    Without ``source``, a conservative database-wide rule applies: only
    objects whose source still participates in at least one relationship
    are pruned — a source with zero relationships (freshly imported, not
    yet linked) keeps its objects, since being unlinked is its normal
    state.  With an explicit ``source``, *its* unreferenced objects are
    pruned unconditionally.
    """
    db = repository.db
    unreferenced = (
        "NOT EXISTS ("
        " SELECT 1 FROM object_rel r"
        " WHERE r.object1_id = o.object_id OR r.object2_id = o.object_id)"
    )
    with db.transaction():
        if source is not None:
            src = repository.get_source(source)
            cursor = db.execute(
                "DELETE FROM object WHERE object_id IN ("
                " SELECT o.object_id FROM object o"
                f" WHERE o.source_id = ? AND {unreferenced})",
                (src.source_id,),
            )
        else:
            cursor = db.execute(
                "DELETE FROM object WHERE object_id IN ("
                " SELECT o.object_id FROM object o"
                " WHERE EXISTS ("
                "  SELECT 1 FROM source_rel sr"
                "  WHERE sr.source1_id = o.source_id"
                "     OR sr.source2_id = o.source_id)"
                f" AND {unreferenced})"
            )
        return cursor.rowcount


def vacuum(db: GamDatabase) -> None:
    """Reclaim space after large deletions (no-op for in-memory DBs)."""
    db.commit()
    db.execute("VACUUM")
